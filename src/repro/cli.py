"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — create an iBench-style scenario and write it as JSON;
* ``select``   — load a scenario JSON, run a selection method, report quality;
* ``sweep``    — quality-vs-noise sweep printed as a table;
* ``weight-sweep`` — objective-weight sweep on a fixed scenario (the
  ground-once/reweight-many path: one grounding per lane, every further
  cell reweights and re-solves);
* ``chain``    — replay a tuple-edit mutation chain with incremental
  (delta) grounding (docs/incremental.md): each revision patches the
  previous one's compiled structure instead of re-grounding;
* ``demo``     — the paper's running example with its appendix objective table;
* ``store``    — inspect/maintain an on-disk grounding store
  (docs/grounding-store.md): ``ls`` the entries, ``gc`` stale ones,
  ``verify`` payload integrity and structure hashes;
* ``lint``     — the repro-lint static-analysis pass (docs/lint.md): exits
  0 when clean against the baseline, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.evaluation.engine import (
    DEFAULT_GRID_METHODS,
    METHOD_REGISTRY,
    EvaluationEngine,
    run_scenario,
)
from repro.evaluation.reporting import format_table
from repro.ibench.config import ALL_PRIMITIVES, ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.io.serialize import load_scenario, save_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Collective, probabilistic schema-mapping selection (ICDE 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a scenario and write JSON")
    generate.add_argument("output", help="path of the scenario JSON to write")
    generate.add_argument("--primitives", type=int, default=4)
    generate.add_argument(
        "--kinds", nargs="+", default=list(ALL_PRIMITIVES), choices=ALL_PRIMITIVES
    )
    generate.add_argument("--rows", type=int, default=12)
    generate.add_argument("--pi-corresp", type=float, default=0.0)
    generate.add_argument("--pi-errors", type=float, default=0.0)
    generate.add_argument("--pi-unexplained", type=float, default=0.0)
    generate.add_argument("--seed", type=int, default=0)

    select = sub.add_parser("select", help="run selection methods on a scenario JSON")
    select.add_argument("scenario", help="path of a scenario JSON")
    select.add_argument(
        "--method",
        choices=[*METHOD_REGISTRY, "all"],
        default="all",
    )
    select.add_argument(
        "--executor",
        default="serial",
        help="where the selection problem is built: serial, thread[:N] or process[:N]",
    )
    select.add_argument(
        "--ground-executor",
        default=None,
        help="where the collective HL-MRF grounding shards run: serial, thread[:N] or process[:N]",
    )
    select.add_argument(
        "--ground-shard-size",
        type=int,
        default=None,
        help="entries per grounding shard (default: sharding module default)",
    )
    select.add_argument(
        "--solve-executor",
        default=None,
        help="where the partitioned ADMM block updates run: serial, thread[:N] "
        "or process[:N] (persistent pool + shared-memory blocks)",
    )
    select.add_argument(
        "--solve-block-size",
        type=int,
        default=None,
        help="terms per ADMM partition block (default: inherit the grounding "
        "shard structure)",
    )
    select.add_argument(
        "--grounding-store",
        default=None,
        help="disk grounding-store directory: attach a previously spilled "
        "grounding of the same structure (mmap + reweight) instead of "
        "re-grounding, and spill fresh grounds for future runs",
    )
    select.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable incremental (delta) grounding: always ground from "
        "scratch instead of patching a cached parent revision's structure",
    )

    sweep = sub.add_parser("sweep", help="quality-vs-noise sweep")
    sweep.add_argument(
        "--noise",
        choices=["pi_corresp", "pi_errors", "pi_unexplained"],
        default="pi_corresp",
    )
    sweep.add_argument("--primitives", type=int, default=4)
    sweep.add_argument("--rows", type=int, default=12)
    sweep.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    sweep.add_argument("--levels", type=float, nargs="+", default=[0, 25, 50, 75, 100])
    sweep.add_argument(
        "--executor",
        default="serial",
        help="where grid cells run: serial, thread[:N] or process[:N]",
    )
    sweep.add_argument(
        "--ground-executor",
        default=None,
        help="where the collective HL-MRF grounding shards run: serial, thread[:N] or process[:N]",
    )
    sweep.add_argument(
        "--ground-shard-size",
        type=int,
        default=None,
        help="entries per grounding shard (default: sharding module default)",
    )
    sweep.add_argument(
        "--solve-executor",
        default=None,
        help="where the partitioned ADMM block updates run: serial, thread[:N] "
        "or process[:N] (persistent pool + shared-memory blocks)",
    )
    sweep.add_argument(
        "--solve-block-size",
        type=int,
        default=None,
        help="terms per ADMM partition block (default: inherit the grounding "
        "shard structure)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="persist generated scenarios/problems here (keyed by config hash) "
        "so repeated sessions skip generation (also enables a sibling "
        "groundings/ store unless --grounding-store overrides it)",
    )
    sweep.add_argument(
        "--grounding-store",
        default=None,
        help="disk grounding-store directory shared across lanes, workers and "
        "sessions (default: <cache-dir>/groundings when --cache-dir is set)",
    )
    sweep.add_argument(
        "--no-warm-start",
        action="store_true",
        help="solve every sweep cell cold instead of chaining ADMM warm starts "
        "(chaining runs parallel grids as per-seed waves, so with few seeds "
        "and many workers cold grids expose more parallelism)",
    )
    sweep.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable incremental (delta) grounding for collective cells",
    )
    sweep.add_argument(
        "--timing",
        action="store_true",
        help="also print the per-cell timing breakdown",
    )

    weight_sweep = sub.add_parser(
        "weight-sweep",
        help="objective-weight sweep on a fixed scenario (reweight + re-solve, "
        "one grounding per lane)",
    )
    weight_sweep.add_argument("--primitives", type=int, default=4)
    weight_sweep.add_argument("--rows", type=int, default=12)
    weight_sweep.add_argument("--pi-corresp", type=float, default=25.0)
    weight_sweep.add_argument("--pi-errors", type=float, default=25.0)
    weight_sweep.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    weight_sweep.add_argument(
        "--grid",
        nargs="+",
        default=["1,1,1", "2,1,1", "1,2,1", "1,1,2"],
        help="weight settings as explains,errors,size triples "
        "(fractions or decimals, e.g. 1,1/2,0.25)",
    )
    weight_sweep.add_argument(
        "--executor",
        default="serial",
        help="where grid cells run: serial, thread[:N] or process[:N]",
    )
    weight_sweep.add_argument(
        "--no-warm-start",
        action="store_true",
        help="solve every cell cold instead of chaining ADMM warm starts",
    )
    weight_sweep.add_argument(
        "--grounding-store",
        default=None,
        help="disk grounding-store directory: the sweep's single structure is "
        "attached (mmap + reweight) instead of ground when already spilled",
    )
    weight_sweep.add_argument(
        "--timing",
        action="store_true",
        help="also print the per-cell timing breakdown",
    )

    chain = sub.add_parser(
        "chain",
        help="replay a mutation chain with incremental (delta) grounding: "
        "generate a scenario, edit a few tuples per step, solve every "
        "revision, report how much grounding each step reused",
    )
    chain.add_argument("--primitives", type=int, default=4)
    chain.add_argument("--rows", type=int, default=12)
    chain.add_argument("--seed", type=int, default=0)
    chain.add_argument("--steps", type=int, default=6, help="mutations to replay")
    chain.add_argument(
        "--ground-shard-size",
        type=int,
        default=None,
        help="entries per grounding shard (default: sharding module default)",
    )
    chain.add_argument(
        "--no-incremental",
        action="store_true",
        help="replay the same chain with full re-grounds (for comparison)",
    )

    sub.add_parser("demo", help="the paper's running example")

    store = sub.add_parser(
        "store",
        help="inspect/maintain a grounding store (ls, gc, verify)",
    )
    store.add_argument("action", choices=["ls", "gc", "verify"])
    store.add_argument("root", help="grounding store directory")
    store.add_argument(
        "--key", default=None, help="verify only this entry (default: all)"
    )
    store.add_argument(
        "--all",
        action="store_true",
        dest="all_entries",
        help="gc: remove every entry, not just stale/leftover ones",
    )

    lint = sub.add_parser(
        "lint",
        help="run the repro-lint invariant checkers (RPL001-RPL005 "
        "syntactic, RPL010-RPL013 flow)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--flow",
        action="store_true",
        dest="flow",
        default=False,
        help="also run the whole-program flow pass (call graph + "
        "dataflow, rules RPL010-RPL013)",
    )
    lint.add_argument(
        "--no-flow",
        action="store_false",
        dest="flow",
        help="syntactic rules only (the default)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help="stdout report format (github = Actions annotations)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: lint-baseline.json when present)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: report every finding as new",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--output",
        default=None,
        help="also write the JSON report to this file (any --format)",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        num_primitives=args.primitives,
        primitive_kinds=tuple(args.kinds),
        rows_per_relation=args.rows,
        pi_corresp=args.pi_corresp,
        pi_errors=args.pi_errors,
        pi_unexplained=args.pi_unexplained,
        seed=args.seed,
    )
    scenario = generate_scenario(config)
    save_scenario(scenario, args.output)
    print(f"wrote {args.output}: {scenario.summary()}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    import time
    from functools import partial

    from repro.psl.admm import AdmmSettings
    from repro.selection.collective import CollectiveSettings, solve_collective

    scenario = load_scenario(args.scenario)
    names = list(METHOD_REGISTRY) if args.method == "all" else [args.method]
    methods = {name: METHOD_REGISTRY[name] for name in names}
    knobs = (
        args.ground_executor,
        args.ground_shard_size,
        args.solve_executor,
        args.solve_block_size,
        args.grounding_store,
    )
    if "collective" in methods and (
        any(knob is not None for knob in knobs) or args.no_incremental
    ):
        methods["collective"] = partial(
            solve_collective,
            settings=CollectiveSettings(
                admm=AdmmSettings(
                    executor=args.solve_executor, block_size=args.solve_block_size
                ),
                ground_executor=args.ground_executor,
                ground_shard_size=args.ground_shard_size,
                grounding_store=args.grounding_store,
                incremental=not args.no_incremental,
            ),
        )
    start = time.perf_counter()
    problem = scenario.selection_problem(executor=args.executor)
    problem_seconds = time.perf_counter() - start
    cells = run_scenario(
        scenario,
        methods,
        problem=problem,
        problem_seconds=problem_seconds,
    )
    print(scenario.summary())
    print(
        format_table(
            ["method", "data F1", "map F1", "objective", "|M|", "sec"],
            [
                [
                    c.method,
                    c.run.data.f1,
                    c.run.mapping.f1,
                    float(c.run.objective),
                    len(c.run.selected),
                    c.run.seconds,
                ]
                for c in cells
            ],
        )
    )
    return 0


def _cmd_chain(args: argparse.Namespace) -> int:
    import time

    from repro.ibench.mutations import (
        AddTargetTuple,
        RemoveTargetTuple,
        mutation_chain,
    )
    from repro.selection.collective import (
        CollectiveGroundingCache,
        CollectiveSettings,
        solve_collective,
    )

    config = ScenarioConfig(
        num_primitives=args.primitives,
        rows_per_relation=args.rows,
        seed=args.seed,
    )
    scenario = generate_scenario(config)
    # Edit late-sorting target tuples: remove one, re-add it, repeat over
    # a small pool.  Late in j-fact order keeps most shard slices
    # positionally stable, which is where the patch reuse comes from.
    j_facts = sorted(scenario.target, key=repr)
    pool = j_facts[-max(2, min(4, len(j_facts))):]
    mutations = []
    for step in range(args.steps):
        f = pool[(step // 2) % len(pool)]
        mutations.append(
            RemoveTargetTuple(f) if step % 2 == 0 else AddTargetTuple(f)
        )
    settings = CollectiveSettings(
        ground_shard_size=args.ground_shard_size,
        incremental=not args.no_incremental,
    )
    cache = CollectiveGroundingCache()
    rows = []
    for mutation, problem in mutation_chain(
        scenario.source, scenario.target, scenario.candidates, mutations
    ):
        start = time.perf_counter()
        grounded = cache.grounded(problem, settings)
        ground_seconds = time.perf_counter() - start
        result = solve_collective(problem, settings, grounded=grounded)
        stats = grounded.splice_stats
        rows.append(
            [
                "base" if mutation is None else type(mutation).__name__,
                "-" if stats is None else f"{stats.reused_shards}/{stats.num_shards}",
                "-" if stats is None else round(stats.reuse_fraction, 3),
                round(ground_seconds, 4),
                float(result.objective),
            ]
        )
    print(scenario.summary())
    print(
        format_table(
            ["edit", "shards reused", "term reuse", "ground s", "objective"],
            rows,
            title=(
                "mutation chain "
                f"(incremental={'off' if args.no_incremental else 'on'}, "
                f"patched {cache.patch_hits}/{cache.misses} misses)"
            ),
        )
    )
    cache.clear()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = ScenarioConfig(num_primitives=args.primitives, rows_per_relation=args.rows)
    engine = EvaluationEngine(
        methods=DEFAULT_GRID_METHODS,
        executor=args.executor,
        warm_start=not args.no_warm_start,
        cache_dir=args.cache_dir,
        ground_executor=args.ground_executor,
        ground_shard_size=args.ground_shard_size,
        solve_executor=args.solve_executor,
        solve_block_size=args.solve_block_size,
        grounding_store=args.grounding_store,
        incremental=not args.no_incremental,
    )
    sweep = engine.sweep(base, args.noise, args.levels, args.seeds)
    columns = [*DEFAULT_GRID_METHODS, "gold"]
    print(format_table([args.noise, *columns], sweep.mean_f1_rows(columns)))
    if args.timing:
        print()
        print(
            format_table(
                ["level", "seed", "method", "gen s", "build s", "solve s"],
                [
                    [
                        getattr(c.config, args.noise),
                        c.config.seed,
                        c.method,
                        c.timing.generate_seconds,
                        c.timing.problem_seconds,
                        c.timing.solve_seconds,
                    ]
                    for c in sweep.grid.cells
                ],
                title=f"cell timing (total {sweep.grid.total_seconds:.2f}s)",
            )
        )
    return 0


def _parse_weight_triple(spec: str):
    from fractions import Fraction

    from repro.selection.objective import ObjectiveWeights

    parts = spec.split(",")
    if len(parts) != 3:
        raise SystemExit(
            f"bad weight setting {spec!r}: expected explains,errors,size"
        )
    try:
        explains, errors, size = (Fraction(p.strip()) for p in parts)
    except (ValueError, ZeroDivisionError) as exc:
        raise SystemExit(f"bad weight setting {spec!r}: {exc}") from exc
    return ObjectiveWeights(explains=explains, errors=errors, size=size)


def _cmd_weight_sweep(args: argparse.Namespace) -> int:
    weight_grid = [_parse_weight_triple(spec) for spec in args.grid]
    base = ScenarioConfig(
        num_primitives=args.primitives,
        rows_per_relation=args.rows,
        pi_corresp=args.pi_corresp,
        pi_errors=args.pi_errors,
    )
    engine = EvaluationEngine(
        methods=DEFAULT_GRID_METHODS,
        executor=args.executor,
        warm_start=not args.no_warm_start,
        grounding_store=args.grounding_store,
    )
    sweep = engine.weight_sweep(base, weight_grid, args.seeds)
    columns = [*DEFAULT_GRID_METHODS, "gold"]
    print(
        format_table(
            ["explains/errors/size", *columns],
            sweep.mean_f1_rows(columns),
            title="mean data F1 per objective-weight setting",
        )
    )
    if args.timing:
        print()
        rows = []
        for weights, cells in sweep.cells_by_weight():
            from repro.evaluation.engine import weights_label

            for c in cells:
                rows.append(
                    [
                        weights_label(weights),
                        c.config.seed,
                        c.method,
                        c.timing.generate_seconds,
                        c.timing.problem_seconds,
                        c.timing.solve_seconds,
                    ]
                )
        print(
            format_table(
                ["weights", "seed", "method", "gen s", "build s", "solve s"],
                rows,
                title=f"cell timing (total {sweep.grid.total_seconds:.2f}s)",
            )
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.examples_data import paper_example
    from repro.selection.collective import solve_collective
    from repro.selection.metrics import build_selection_problem
    from repro.selection.objective import objective_breakdown

    ex = paper_example()
    problem = build_selection_problem(ex.source, ex.target, ex.candidates)
    rows = []
    for label, selected in [("{}", []), ("{t1}", [0]), ("{t3}", [1]), ("{t1,t3}", [0, 1])]:
        b = objective_breakdown(problem, selected)
        rows.append([label, str(b.unexplained), str(b.errors), str(b.size), str(b.total)])
    print(
        format_table(
            ["M", "sum 1-explains", "sum error", "size", "Eq.(9)"],
            rows,
            title="Appendix Section I objective table",
        )
    )
    result = solve_collective(problem)
    print(f"\ncollective selection: {sorted(result.selected) or '{}'} F={result.objective}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.psl.store import GroundingStore

    store = GroundingStore(args.root)
    if args.action == "ls":
        entries = store.ls()
        print(
            format_table(
                ["key", "vars", "potentials", "constraints", "copies", "bytes", "state"],
                [
                    [
                        e.key[:16],
                        e.num_variables,
                        e.num_potentials,
                        e.num_constraints,
                        e.num_copies,
                        e.bytes,
                        "stale" if e.stale else "ok",
                    ]
                    for e in entries
                ],
                title=f"{len(entries)} entr(y/ies) in {args.root}",
            )
        )
        return 0
    if args.action == "gc":
        removed = store.gc(all_entries=args.all_entries)
        for name in removed:
            print(f"removed {name}")
        print(f"gc: removed {len(removed)} director(y/ies)")
        return 0
    results = store.verify(args.key)
    for key, ok, message in results:
        print(f"{'ok ' if ok else 'BAD'} {key[:16]} {message}")
    bad = sum(1 for _, ok, _ in results if not ok)
    print(f"verify: {len(results) - bad} ok, {bad} bad")
    return 1 if bad else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.baseline import Baseline, baseline_from_findings
    from repro.analysis.reporting import render_github, render_json, render_text
    from repro.analysis.runner import collect_files, lint_paths

    baseline = None
    baseline_path = args.baseline
    if args.no_baseline:
        baseline_path = None
    elif baseline_path is None and Path("lint-baseline.json").is_file():
        baseline_path = "lint-baseline.json"
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: cannot load baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        report = lint_paths(args.paths, baseline=baseline, flow=args.flow)
    except FileNotFoundError as exc:
        print(f"repro lint: no such file or directory: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or "lint-baseline.json"
        # Scope the rewrite to what was scanned: zero-count entries for
        # scanned files are pruned (the ratchet tightens), entries for
        # unscanned files carry over untouched.  The previous file is
        # read even under --no-baseline — that flag skips *applying*
        # the baseline to this run, not the notes/out-of-scope entries
        # the rewrite must preserve.
        previous = baseline
        if previous is None and Path(target).is_file():
            try:
                previous = Baseline.load(target)
            except (OSError, ValueError, KeyError):
                previous = None
        scanned = [str(f) for f in collect_files(args.paths)]
        updated = baseline_from_findings(
            report.new + report.baselined,
            previous=previous,
            scanned_files=scanned,
        )
        updated.save(target)
        print(f"wrote {target}: {len(updated.entries)} entr(y/ies)")
        return 0

    if args.output:
        Path(args.output).write_text(render_json(report), encoding="utf-8")
    if args.format == "json":
        sys.stdout.write(render_json(report))
    elif args.format == "github":
        sys.stdout.write(render_github(report))
    else:
        sys.stdout.write(render_text(report))
    return report.exit_code


_COMMANDS = {
    "generate": _cmd_generate,
    "select": _cmd_select,
    "sweep": _cmd_sweep,
    "weight-sweep": _cmd_weight_sweep,
    "chain": _cmd_chain,
    "demo": _cmd_demo,
    "store": _cmd_store,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # ``repro store ls | head`` and friends: a pipe closed by the
        # downstream reader is normal usage, not a traceback.  Point
        # stdout at devnull so interpreter shutdown does not re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
