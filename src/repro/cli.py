"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — create an iBench-style scenario and write it as JSON;
* ``select``   — load a scenario JSON, run a selection method, report quality;
* ``sweep``    — quality-vs-noise sweep printed as a table;
* ``demo``     — the paper's running example with its appendix objective table.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.evaluation.harness import DEFAULT_METHODS, exact_method, run_methods
from repro.evaluation.reporting import format_table, mean
from repro.ibench.config import ALL_PRIMITIVES, ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.io.serialize import load_scenario, save_scenario
from repro.selection.baselines import solve_independent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Collective, probabilistic schema-mapping selection (ICDE 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a scenario and write JSON")
    generate.add_argument("output", help="path of the scenario JSON to write")
    generate.add_argument("--primitives", type=int, default=4)
    generate.add_argument(
        "--kinds", nargs="+", default=list(ALL_PRIMITIVES), choices=ALL_PRIMITIVES
    )
    generate.add_argument("--rows", type=int, default=12)
    generate.add_argument("--pi-corresp", type=float, default=0.0)
    generate.add_argument("--pi-errors", type=float, default=0.0)
    generate.add_argument("--pi-unexplained", type=float, default=0.0)
    generate.add_argument("--seed", type=int, default=0)

    select = sub.add_parser("select", help="run selection methods on a scenario JSON")
    select.add_argument("scenario", help="path of a scenario JSON")
    select.add_argument(
        "--method",
        choices=[*DEFAULT_METHODS, "exact", "independent", "all"],
        default="all",
    )

    sweep = sub.add_parser("sweep", help="quality-vs-noise sweep")
    sweep.add_argument(
        "--noise",
        choices=["pi_corresp", "pi_errors", "pi_unexplained"],
        default="pi_corresp",
    )
    sweep.add_argument("--primitives", type=int, default=4)
    sweep.add_argument("--rows", type=int, default=12)
    sweep.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    sweep.add_argument("--levels", type=float, nargs="+", default=[0, 25, 50, 75, 100])

    sub.add_parser("demo", help="the paper's running example")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        num_primitives=args.primitives,
        primitive_kinds=tuple(args.kinds),
        rows_per_relation=args.rows,
        pi_corresp=args.pi_corresp,
        pi_errors=args.pi_errors,
        pi_unexplained=args.pi_unexplained,
        seed=args.seed,
    )
    scenario = generate_scenario(config)
    save_scenario(scenario, args.output)
    print(f"wrote {args.output}: {scenario.summary()}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.scenario)
    methods = dict(DEFAULT_METHODS)
    methods["exact"] = exact_method
    methods["independent"] = solve_independent
    if args.method != "all":
        methods = {args.method: methods[args.method]}
    runs = run_methods(scenario, methods=methods)
    print(scenario.summary())
    print(
        format_table(
            ["method", "data F1", "map F1", "objective", "|M|", "sec"],
            [
                [r.method, r.data.f1, r.mapping.f1, float(r.objective), len(r.selected), r.seconds]
                for r in runs
            ],
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = ScenarioConfig(num_primitives=args.primitives, rows_per_relation=args.rows)
    columns = ("collective", "greedy", "all-candidates", "gold")
    rows = []
    for level in args.levels:
        f1: dict[str, list[float]] = {m: [] for m in columns}
        for seed in args.seeds:
            config = replace(base, seed=seed, **{args.noise: float(level)})
            for run in run_methods(generate_scenario(config)):
                f1[run.method].append(run.data.f1)
        rows.append([level] + [mean(f1[m]) for m in columns])
    print(format_table([args.noise, *columns], rows))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.examples_data import paper_example
    from repro.selection.collective import solve_collective
    from repro.selection.metrics import build_selection_problem
    from repro.selection.objective import objective_breakdown

    ex = paper_example()
    problem = build_selection_problem(ex.source, ex.target, ex.candidates)
    rows = []
    for label, selected in [("{}", []), ("{t1}", [0]), ("{t3}", [1]), ("{t1,t3}", [0, 1])]:
        b = objective_breakdown(problem, selected)
        rows.append([label, str(b.unexplained), str(b.errors), str(b.size), str(b.total)])
    print(
        format_table(
            ["M", "sum 1-explains", "sum error", "size", "Eq.(9)"],
            rows,
            title="Appendix Section I objective table",
        )
    )
    result = solve_collective(problem)
    print(f"\ncollective selection: {sorted(result.selected) or '{}'} F={result.objective}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "select": _cmd_select,
    "sweep": _cmd_sweep,
    "demo": _cmd_demo,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
