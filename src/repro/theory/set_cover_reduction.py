"""Executable form of Theorem 1: mapping selection is NP-hard.

The appendix proves NP-hardness of selection with full st tgds (Eq. 4)
by reduction from SET COVER.  This module makes the reduction runnable:

* :func:`reduce_set_cover` builds, from a SET COVER instance
  (universe U, family R, bound n), the mapping-selection instance of the
  proof: source relations R_i/2, target U/2, candidates
  ``R_i(X, Y) -> U(X, Y)``, J = U x D and I = union R_i x D with the
  auxiliary domain D = {1, ..., m+1}, m = 2n.

* :func:`decide_set_cover_via_selection` solves the produced selection
  problem optimally and answers the SET COVER question by checking
  F(M) <= m — exercising both directions of the equivalence the proof
  establishes.

The tests confirm the round-trip against a direct SET COVER solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Sequence

from repro.datamodel.instance import Instance, fact
from repro.mappings.atoms import atom
from repro.mappings.tgd import StTgd
from repro.selection.exact import solve_branch_and_bound
from repro.selection.metrics import SelectionProblem, build_selection_problem
from repro.selection.objective import ObjectiveWeights


@dataclass(frozen=True)
class SetCoverInstance:
    """(U, R, n): does some sub-family of at most n sets cover U?"""

    universe: frozenset
    family: tuple[frozenset, ...]
    bound: int


@dataclass
class ReducedProblem:
    """The mapping-selection instance produced by the reduction."""

    problem: SelectionProblem
    threshold: int  # m = 2n of the proof


def reduce_set_cover(instance: SetCoverInstance) -> ReducedProblem:
    """Construct the proof's mapping-selection instance (polynomial size)."""
    m = 2 * instance.bound
    domain = list(range(1, m + 2))

    source = Instance()
    candidates: list[StTgd] = []
    for i, subset in enumerate(instance.family):
        name = f"R{i}"
        for x in sorted(subset, key=repr):
            for y in domain:
                source.add(fact(name, x, y))
        candidates.append(
            StTgd(
                (atom(name, "X", "Y"),),
                (atom("U", "X", "Y"),),
                name=f"theta{i}",
            )
        )

    target = Instance(
        fact("U", x, y) for x in sorted(instance.universe, key=repr) for y in domain
    )
    problem = build_selection_problem(source, target, candidates)
    return ReducedProblem(problem, m)


def decide_set_cover_via_selection(instance: SetCoverInstance) -> bool:
    """Answer SET COVER by optimally solving the reduced selection problem.

    Uses weights (1, 1, 1); each candidate has size 2 and makes no errors,
    exactly as in the proof, so F(M) <= 2n iff a cover of size <= n exists.
    """
    reduced = reduce_set_cover(instance)
    result = solve_branch_and_bound(reduced.problem, ObjectiveWeights())
    return result.objective <= reduced.threshold


def decide_set_cover_directly(instance: SetCoverInstance) -> bool:
    """Brute-force SET COVER decision, for cross-checking the reduction."""
    sets: Sequence[frozenset] = instance.family
    for k in range(0, instance.bound + 1):
        for combo in combinations(range(len(sets)), k):
            union: set[Hashable] = set()
            for i in combo:
                union |= sets[i]
            if union >= instance.universe:
                return True
    return False
