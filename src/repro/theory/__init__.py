"""Executable complexity results (Theorem 1's SET COVER reduction)."""

from repro.theory.set_cover_reduction import (
    ReducedProblem,
    SetCoverInstance,
    decide_set_cover_directly,
    decide_set_cover_via_selection,
    reduce_set_cover,
)

__all__ = [
    "ReducedProblem",
    "SetCoverInstance",
    "decide_set_cover_directly",
    "decide_set_cover_via_selection",
    "reduce_set_cover",
]
