"""Plain-text reporting of experiment series (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with three decimals, everything else via ``str``.
    """
    rendered_rows = [
        [f"{cell:.3f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], low: float | None = None, high: float | None = None) -> str:
    """A unicode sparkline for a numeric series (e.g. an F1 trend).

    The range defaults to the series' own min/max; pass ``low``/``high``
    (e.g. 0 and 1 for F1 series) to make several sparklines comparable.
    """
    if not values:
        return ""
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    if hi <= lo:
        return _SPARK_LEVELS[-1] * len(values)
    span = hi - lo
    chars = []
    for v in values:
        clamped = min(max(v, lo), hi)
        index = int((clamped - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def series_block(title: str, series: dict[str, Sequence[float]], low: float = 0.0, high: float = 1.0) -> str:
    """Render named series as aligned label + sparkline + last value."""
    width = max((len(name) for name in series), default=0)
    lines = [title]
    for name, values in series.items():
        lines.append(
            f"  {name.ljust(width)}  {sparkline(values, low, high)}  "
            f"{values[-1]:.3f}" if values else f"  {name.ljust(width)}"
        )
    return "\n".join(lines)
