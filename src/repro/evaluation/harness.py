"""Experiment harness: run every selection method on a scenario and score it.

One :class:`MethodRun` row per (scenario, method) pair carries the data-
and mapping-level quality plus the objective value and wall time — the
exact columns the paper's evaluation figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Mapping

from repro.evaluation.metrics import PrecisionRecall, data_quality, mapping_quality
from repro.ibench.scenario import Scenario
from repro.selection.baselines import select_all
from repro.selection.collective import solve_collective
from repro.selection.exact import SelectionResult, solve_branch_and_bound
from repro.selection.greedy import solve_greedy
from repro.selection.metrics import SelectionProblem

Solver = Callable[[SelectionProblem], SelectionResult]

DEFAULT_METHODS: dict[str, Solver] = {
    "collective": solve_collective,
    "greedy": solve_greedy,
    "all-candidates": select_all,
}


@dataclass(frozen=True)
class MethodRun:
    """Outcome of one selection method on one scenario."""

    method: str
    selected: frozenset[int]
    objective: Fraction
    data: PrecisionRecall
    mapping: PrecisionRecall
    seconds: float

    def row(self) -> str:
        return (
            f"{self.method:<16} F1={self.data.f1:.3f} "
            f"(P={self.data.precision:.3f} R={self.data.recall:.3f}) "
            f"mapF1={self.mapping.f1:.3f} F={float(self.objective):.2f} "
            f"|M|={len(self.selected)} t={self.seconds:.2f}s"
        )


def run_methods(
    scenario: Scenario,
    methods: Mapping[str, Solver] | None = None,
    problem: SelectionProblem | None = None,
    include_gold: bool = True,
) -> list[MethodRun]:
    """Score each method on *scenario*; optionally add the gold reference row.

    A thin wrapper over :func:`repro.evaluation.engine.run_scenario` — use
    :class:`repro.evaluation.engine.EvaluationEngine` directly for grids,
    caching, parallel execution, and per-cell timing breakdowns.
    """
    from repro.evaluation.engine import run_scenario

    methods = dict(methods if methods is not None else DEFAULT_METHODS)
    cells = run_scenario(
        scenario, methods, problem=problem, include_gold=include_gold
    )
    return [cell.run for cell in cells]


def exact_method(problem: SelectionProblem) -> SelectionResult:
    """The provably optimal solver, exposed with the harness signature."""
    return solve_branch_and_bound(problem)


def score_selection(
    scenario: Scenario,
    problem: SelectionProblem,
    name: str,
    selected: frozenset[int],
    objective: Fraction,
    seconds: float,
) -> MethodRun:
    """Quality-score one method's selection against the scenario's gold."""
    tgds = [problem.candidates[i] for i in sorted(selected)]
    return MethodRun(
        method=name,
        selected=selected,
        objective=objective,
        data=data_quality(scenario.source, tgds, scenario.reference_target),
        mapping=mapping_quality(selected, scenario.gold_indices),
        seconds=seconds,
    )
