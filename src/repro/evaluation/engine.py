"""The scenario-evaluation engine: (scenario × method × seed) grids.

The paper's evaluation — and every figure/table benchmark in this repo —
is a sweep: generate a scenario per (noise level, seed), build its
selection problem, run each selection method, score the result.  The
engine turns that single-shot loop into a reusable, parallelizable grid
runner:

* **work units** — one :class:`ConfigCells` job per scenario config runs
  every requested method on that scenario.  Jobs are picklable and
  independent, so they execute through any
  :class:`~repro.executors.MapExecutor` (serial or process pool);
* **scenario caching** — scenarios and their
  :class:`~repro.selection.metrics.SelectionProblem` tables are memoized
  per process, so a config appearing in several grids is generated and
  chased once; with a ``cache_dir`` the cache also spills to disk keyed
  by config hash, so repeated benchmark *sessions* skip generation too;
* **sharded grounding** — the collective method's HL-MRF compilation can
  run through executor-mapped shards
  (:func:`~repro.selection.collective.ground_collective`) via the
  engine's ``ground_executor``/``ground_shard_size`` knobs;
* **per-cell timing** — every :class:`GridCell` records scenario
  generation, problem build, and solve time separately;
* **warm starting** — the collective method chains ADMM warm starts
  across the cells of a sweep lane (one lane per seed) via
  :class:`~repro.selection.collective.WarmStartedCollective`; serial
  runs keep one solver per lane, parallel runs execute the lanes as
  waves and ship each cell's chained state
  (:class:`~repro.selection.collective.CollectiveWarmPayload`) to the
  lane's next cell inside the work unit;
* **partitioned solving** — the ADMM solver's block partition and
  executor (``solve_executor``/``solve_block_size``) ride the same
  settings into every cell.

:func:`repro.evaluation.harness.run_methods`, the CLI ``sweep``/``select``
commands, and :mod:`benchmarks.sweeps` all sit on top of this module.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field, replace
from functools import partial
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.executors import MapExecutor, SerialExecutor, resolve_executor
from repro.ibench.config import ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.ibench.scenario import Scenario
from repro.selection.baselines import select_all, solve_independent
from repro.psl.admm import AdmmSettings
from repro.selection.collective import (
    CollectiveSettings,
    CollectiveWarmPayload,
    WarmStartedCollective,
    solve_collective,
)
from repro.selection.exact import SelectionResult, solve_branch_and_bound
from repro.selection.greedy import solve_greedy
from repro.selection.metrics import SelectionProblem, build_selection_problem
from repro.selection.objective import ObjectiveWeights

Solver = Callable[[SelectionProblem], SelectionResult]

#: Every selection method the engine can run by name.  Values are
#: module-level callables, so the registry survives pickling into workers.
METHOD_REGISTRY: dict[str, Solver] = {
    "collective": solve_collective,
    "greedy": solve_greedy,
    "all-candidates": select_all,
    "exact": solve_branch_and_bound,
    "independent": solve_independent,
}

#: The methods the paper's figures sweep over, in column order.
DEFAULT_GRID_METHODS = ("collective", "greedy", "all-candidates")


@dataclass(frozen=True)
class CellTiming:
    """Wall-clock breakdown of one grid cell.

    Generation and problem-build time are attributed to the first cell
    that needed the scenario; cells served from the cache report 0.0.
    """

    generate_seconds: float
    problem_seconds: float
    solve_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.generate_seconds + self.problem_seconds + self.solve_seconds


@dataclass(frozen=True)
class GridCell:
    """One (scenario config, method) evaluation outcome."""

    config: ScenarioConfig
    method: str
    run: "MethodRun"
    timing: CellTiming


#: Bump when the on-disk scenario/problem formats (or the generation /
#: chasing semantics behind them) change: the version is folded into the
#: cache key, so entries from older formats are simply never matched.
#: v2: :class:`~repro.selection.metrics.SelectionProblem` pickles carry
#: the ``lineage`` revision field consumed by incremental grounding.
CACHE_FORMAT_VERSION = 2


def config_hash(config: ScenarioConfig) -> str:
    """A stable hex digest of a scenario config — the disk-cache key.

    Built from the frozen dataclass repr (deterministic field rendering)
    plus :data:`CACHE_FORMAT_VERSION`, so equal configs hash equally
    across processes and sessions but never across incompatible cache
    formats.  The version cannot detect arbitrary code changes — clear
    the cache directory after modifying scenario generation or chasing
    if the constant was not bumped.
    """
    key = f"v{CACHE_FORMAT_VERSION}:{config!r}"
    return hashlib.sha256(key.encode()).hexdigest()[:20]


class ScenarioCache:
    """Memoizes scenarios and their selection problems by config.

    One instance lives in each worker process (module-level singleton) and
    one in the driving process, so repeated grid points never re-chase.

    With *cache_dir* set, the cache is two-level: misses fall through to
    disk (``<hash>.scenario.json`` via the stable JSON format of
    :mod:`repro.io.serialize`; ``<hash>.problem.pkl`` for the chased
    metric tables), and fresh results are written back, so repeated
    benchmark *sessions* skip generation and chasing entirely.  Disk
    failures (corrupt or unreadable files) silently fall back to
    regeneration.  A disk hit reports the load time as the cell's
    generate/build cost; in-memory hits still report 0.0.
    """

    def __init__(
        self,
        problem_executor: MapExecutor | str | None = None,
        cache_dir: str | Path | None = None,
    ):
        self._scenarios: dict[ScenarioConfig, tuple[Scenario, float]] = {}
        self._problems: dict[ScenarioConfig, tuple[SelectionProblem, float]] = {}
        self.problem_executor = problem_executor
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    # -- disk layer --------------------------------------------------------

    def _disk_path(self, config: ScenarioConfig, suffix: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{config_hash(config)}.{suffix}"

    def _load_scenario(self, config: ScenarioConfig) -> Scenario | None:
        path = self._disk_path(config, "scenario.json")
        if path is None or not path.exists():
            return None
        from repro.io.serialize import load_scenario

        try:
            scenario = load_scenario(path)
        except Exception:
            return None
        return scenario if scenario.config == config else None

    def _store_scenario(self, config: ScenarioConfig, scenario: Scenario) -> None:
        path = self._disk_path(config, "scenario.json")
        if path is None:
            return
        from repro.io.serialize import save_scenario

        # Write-then-rename so concurrent sessions sharing a cache_dir
        # never publish a torn file (a corrupt entry would silently
        # defeat the cache for that key forever).
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            save_scenario(scenario, tmp)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    #: Everything unpickling a cached problem can raise on a bad entry.
    #: Corruption shows up as ``UnpicklingError``/``EOFError``/``ValueError``;
    #: *version skew* — an entry written by a code revision whose classes
    #: have since moved or lost attributes — as ``ModuleNotFoundError``
    #: (an ``ImportError``) or ``AttributeError``.  Both kinds are plain
    #: cache misses: regenerate and overwrite, never crash.
    _PROBLEM_LOAD_ERRORS = (
        OSError,
        EOFError,
        ValueError,
        TypeError,
        KeyError,
        IndexError,
        ImportError,
        AttributeError,
        pickle.UnpicklingError,
    )

    def _load_problem(self, config: ScenarioConfig) -> SelectionProblem | None:
        path = self._disk_path(config, "problem.pkl")
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except self._PROBLEM_LOAD_ERRORS:
            return None
        # Entries are version-wrapped dicts; anything else (including a
        # bare problem from an older layout) is stale and regenerated.
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            return None
        problem = payload.get("problem")
        return problem if isinstance(problem, SelectionProblem) else None

    def _store_problem(self, config: ScenarioConfig, problem: SelectionProblem) -> None:
        path = self._disk_path(config, "problem.pkl")
        if path is None:
            return
        payload = {"format": CACHE_FORMAT_VERSION, "problem": problem}
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    # -- lookups -----------------------------------------------------------

    def scenario(self, config: ScenarioConfig) -> tuple[Scenario, float]:
        """The scenario for *config* plus the seconds spent generating it
        (0.0 on an in-memory cache hit)."""
        hit = self._scenarios.get(config)
        if hit is not None:
            return hit[0], 0.0
        start = time.perf_counter()
        scenario = self._load_scenario(config)
        if scenario is None:
            scenario = generate_scenario(config)
            self._store_scenario(config, scenario)
        elapsed = time.perf_counter() - start
        self._scenarios[config] = (scenario, elapsed)
        return scenario, elapsed

    def problem(self, config: ScenarioConfig) -> tuple[SelectionProblem, float]:
        """The selection problem for *config* plus build seconds (0.0 on hit)."""
        hit = self._problems.get(config)
        if hit is not None:
            return hit[0], 0.0
        start = time.perf_counter()
        problem = self._load_problem(config)
        if problem is None:
            scenario, _ = self.scenario(config)
            start = time.perf_counter()
            problem = build_selection_problem(
                scenario.source, scenario.target, scenario.candidates,
                executor=self.problem_executor,
            )
            self._store_problem(config, problem)
        elapsed = time.perf_counter() - start
        self._problems[config] = (problem, elapsed)
        return problem, elapsed

    def grounding_dir(self) -> Path | None:
        """The sibling grounding-store directory of this cache's disk layer.

        Scenario/problem entries and spilled groundings travel together:
        a cache directory implies a ``groundings/`` subdirectory for the
        cross-process :class:`~repro.psl.store.GroundingStore`, so every
        lane/worker sharing the scenario cache also shares one on-disk
        grounding per structure.  ``None`` when the cache is memory-only.
        """
        if self.cache_dir is None:
            return None
        return self.cache_dir / "groundings"

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._scenarios.clear()
        self._problems.clear()


#: Per-process cache used by worker-side jobs.
_PROCESS_CACHE = ScenarioCache()


@dataclass(frozen=True)
class ConfigCells:
    """A picklable work unit: run *methods* on the scenario of *config*.

    ``cache_dir`` (if set) points the executing process's scenario cache
    at the shared on-disk cache; ``collective_settings`` configures the
    collective solver (sharded-grounding executor/shard size, ADMM
    block/executor knobs, weights…) wherever the unit runs.
    ``warm_payload`` carries the previous lane cell's chained collective
    warm-start state (fractional vectors + full ADMM state) into the
    executing process — the engine's wave scheduler sets it so
    process-pool grids warm-start exactly like serial ones.
    """

    config: ScenarioConfig
    methods: tuple[str, ...]
    include_gold: bool = False
    cache_dir: str | None = None
    collective_settings: CollectiveSettings | None = None
    warm_payload: CollectiveWarmPayload | None = None

    def __call__(self) -> list[GridCell]:
        return evaluate_config_cells(self)


def run_scenario(
    scenario: Scenario,
    methods: Mapping[str, Solver],
    problem: SelectionProblem | None = None,
    include_gold: bool = True,
    config: ScenarioConfig | None = None,
    generate_seconds: float = 0.0,
    problem_seconds: float = 0.0,
) -> list[GridCell]:
    """Run each solver in *methods* on one prepared scenario.

    The engine-level primitive under both the config-grid path and
    :func:`repro.evaluation.harness.run_methods` — any name→solver mapping
    works, including stateful solver instances.
    """
    from repro.evaluation.harness import score_selection

    config = config if config is not None else scenario.config
    if problem is None:
        start = time.perf_counter()
        problem = scenario.selection_problem()
        problem_seconds += time.perf_counter() - start

    cells: list[GridCell] = []
    for method, solver in methods.items():
        start = time.perf_counter()
        result = solver(problem)
        solve_seconds = time.perf_counter() - start
        run = score_selection(
            scenario, problem, method, result.selected, result.objective, solve_seconds
        )
        cells.append(
            GridCell(
                config=config,
                method=method,
                run=run,
                timing=CellTiming(generate_seconds, problem_seconds, solve_seconds),
            )
        )
        # Only the first cell of a scenario pays the shared build costs.
        generate_seconds = problem_seconds = 0.0

    if include_gold:
        from repro.selection.objective import objective_value

        gold = frozenset(scenario.gold_indices)
        run = score_selection(
            scenario, problem, "gold", gold, objective_value(problem, gold), 0.0
        )
        cells.append(
            GridCell(
                config=config,
                method="gold",
                run=run,
                timing=CellTiming(generate_seconds, problem_seconds, 0.0),
            )
        )
    return cells


def evaluate_config_cells(
    work: ConfigCells,
    cache: ScenarioCache | None = None,
    solvers: Mapping[str, Solver] | None = None,
) -> list[GridCell]:
    """Evaluate one config's cells (the executor-side entry point).

    *solvers* overrides registry lookups per method name — the hook the
    serial path uses to substitute warm-started solver instances.
    """
    cache = cache if cache is not None else _PROCESS_CACHE
    # Only the per-process singleton inherits the work unit's cache_dir —
    # caller-provided caches keep whatever directory their owner chose —
    # and it is (re)set per job, so a dirless run never silently reuses a
    # directory leaked by an earlier engine in the same process.
    if cache is _PROCESS_CACHE:
        cache.cache_dir = Path(work.cache_dir) if work.cache_dir is not None else None
    unknown = [m for m in work.methods if m not in METHOD_REGISTRY]
    if unknown:
        raise ReproError(f"unknown methods {unknown}; known: {sorted(METHOD_REGISTRY)}")
    scenario, generate_seconds = cache.scenario(work.config)
    problem, problem_seconds = cache.problem(work.config)
    methods: dict[str, Solver] = {}
    for m in work.methods:
        solver = (solvers or {}).get(m)
        if solver is None:
            solver = METHOD_REGISTRY[m]
            if m == "collective" and work.collective_settings is not None:
                solver = partial(solve_collective, settings=work.collective_settings)
        methods[m] = solver
    return run_scenario(
        scenario,
        methods,
        problem=problem,
        include_gold=work.include_gold,
        config=work.config,
        generate_seconds=generate_seconds,
        problem_seconds=problem_seconds,
    )


def _run_work_unit(work: ConfigCells) -> list[GridCell]:
    """Module-level adapter so process pools can pickle the job."""
    return evaluate_config_cells(work)


def _run_warm_work_unit(
    work: ConfigCells,
) -> tuple[list[GridCell], CollectiveWarmPayload | None]:
    """One lane step: run the cells warm-started from the shipped payload.

    Reconstructs a :class:`WarmStartedCollective` from the work unit's
    ``warm_payload``, runs the cells, and returns the solver's new
    payload (None after an unconverged solve — the chain-reset rule) so
    the engine can thread it into the lane's next wave.
    """
    solver = WarmStartedCollective(work.collective_settings, payload=work.warm_payload)
    cells = evaluate_config_cells(work, solvers={"collective": solver})
    return cells, solver.payload


@dataclass
class GridResult:
    """All cells of a grid run, with structured accessors."""

    cells: list[GridCell] = field(default_factory=list)

    def by_method(self, method: str) -> list[GridCell]:
        return [c for c in self.cells if c.method == method]

    def for_config(self, config: ScenarioConfig) -> list[GridCell]:
        return [c for c in self.cells if c.config == config]

    def methods(self) -> list[str]:
        seen: dict[str, None] = {}
        for c in self.cells:
            seen.setdefault(c.method, None)
        return list(seen)

    @property
    def total_seconds(self) -> float:
        return sum(c.timing.total_seconds for c in self.cells)


class EvaluationEngine:
    """Runs (scenario × method × seed) grids through a pluggable executor.

    Args:
        methods: method names to run per scenario (registry keys);
            defaults to the paper's sweep columns.
        executor: where config jobs run — ``None``/``"serial"`` (default),
            ``"process[:N]"``, or a custom
            :class:`~repro.executors.MapExecutor`.
        include_gold: add the gold-reference row per scenario.
        warm_start: chain ADMM warm starts for the collective method
            across a seed's cells.  Serial grids keep one
            :class:`WarmStartedCollective` per lane; parallel grids run
            the lanes as waves, shipping each cell's chained state to
            the next cell inside the work unit, so both paths produce
            the same warm-started solves.  Chaining is inherently
            sequential within a lane, so waves bound concurrency by the
            number of lanes (seeds) and pay one executor dispatch per
            wave — with few seeds and many workers, a cold grid
            (``warm_start=False``) exposes more parallelism at the cost
            of cold solves.
        cache: scenario cache for the serial path; defaults to a fresh
            private cache (with *cache_dir* applied, when given).
        cache_dir: directory for the persistent scenario/problem cache;
            ``None`` keeps caching in-memory only.
        ground_executor: executor spec for the collective method's
            sharded HL-MRF grounding (``"serial"``, ``"thread[:N]"``,
            ``"process[:N]"``); forwarded to every cell, including
            process-pool workers.
        ground_shard_size: entries per grounding shard (``None`` → the
            sharding default).
        solve_executor: executor spec for the partitioned ADMM solver's
            per-block local updates — ``"thread[:N]"`` for in-process
            parallelism, ``"process[:N]"`` for multi-core (a persistent
            worker pool plus shared-memory block arrays keep the
            per-iteration dispatch cheap); forwarded to every cell.
        solve_block_size: terms per ADMM partition block (``None`` →
            inherit the grounding shard structure recorded in the MRF).
        grounding_store: root directory of a cross-process disk
            :class:`~repro.psl.store.GroundingStore` for the collective
            method's compiled groundings — a cold process *attaches*
            (mmap + reweight) a spilled structure instead of
            re-grounding it.  Defaults to the scenario cache's sibling
            ``groundings/`` directory whenever a disk cache is in play
            (``cache_dir`` or a *cache* with one), so grid lanes and
            persistent-pool workers share one on-disk grounding per
            structure; ``None`` with no disk cache → off.
        incremental: incremental (delta) grounding for the collective
            method — on a cache miss for a problem carrying a
            :class:`~repro.selection.metrics.ProblemLineage`, patch the
            cached parent revision's compiled structure (re-ground only
            the shards the edit touched) instead of grounding from
            scratch.  ``True`` by default; ``False`` forces full
            re-grounds.
    """

    def __init__(
        self,
        methods: Sequence[str] | None = None,
        executor: MapExecutor | str | None = None,
        include_gold: bool = True,
        warm_start: bool = True,
        cache: ScenarioCache | None = None,
        cache_dir: str | Path | None = None,
        ground_executor: MapExecutor | str | None = None,
        ground_shard_size: int | None = None,
        solve_executor: MapExecutor | str | None = None,
        solve_block_size: int | None = None,
        grounding_store: str | Path | None = None,
        incremental: bool = True,
    ):
        self.methods = tuple(methods if methods is not None else DEFAULT_GRID_METHODS)
        self.executor = resolve_executor(executor)
        self.include_gold = include_gold
        self.warm_start = warm_start
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.cache = cache if cache is not None else ScenarioCache(cache_dir=cache_dir)
        if grounding_store is None:
            grounding_store = self.cache.grounding_dir()
        self.grounding_store = (
            str(grounding_store) if grounding_store is not None else None
        )
        self.incremental = bool(incremental)
        self.collective_settings: CollectiveSettings | None = None
        knobs = (ground_executor, ground_shard_size, solve_executor, solve_block_size)
        if (
            any(knob is not None for knob in knobs)
            or self.grounding_store is not None
            or not self.incremental
        ):
            self.collective_settings = CollectiveSettings(
                admm=AdmmSettings(executor=solve_executor, block_size=solve_block_size),
                ground_executor=ground_executor,
                ground_shard_size=ground_shard_size,
                grounding_store=self.grounding_store,
                incremental=self.incremental,
            )

    def run_grid(self, configs: Sequence[ScenarioConfig]) -> GridResult:
        """Evaluate every config; cells come back in (config, method) order."""
        jobs = [
            ConfigCells(
                config,
                self.methods,
                include_gold=self.include_gold,
                cache_dir=self.cache_dir,
                collective_settings=self.collective_settings,
            )
            for config in configs
        ]
        return GridResult(self._execute_jobs(jobs))

    def _execute_jobs(self, jobs: Sequence[ConfigCells]) -> list[GridCell]:
        if isinstance(self.executor, SerialExecutor):
            return self._run_serial(jobs)
        if self.warm_start and "collective" in self.methods:
            return self._run_waves(jobs)
        nested = self.executor.map(_run_work_unit, jobs)
        return [cell for group in nested for cell in group]

    def _run_waves(self, jobs: Sequence[ConfigCells]) -> list[GridCell]:
        # Parallel grids with warm starts: cells of one lane (seed) must
        # run in order so each can chain the previous solve's state, but
        # lanes are independent — so run the grid as waves, one cell per
        # lane at a time, shipping each lane's CollectiveWarmPayload into
        # its next work unit.  Per-lane results are identical to the
        # serial path's because the payload *is* the chained state.
        lanes: dict[int, list[int]] = {}
        for position, job in enumerate(jobs):
            lanes.setdefault(job.config.seed, []).append(position)
        payloads: dict[int, CollectiveWarmPayload | None] = {}
        groups: list[list[GridCell] | None] = [None] * len(jobs)
        depth = max((len(positions) for positions in lanes.values()), default=0)
        for step in range(depth):
            wave = [
                (seed, positions[step])
                for seed, positions in lanes.items()
                if len(positions) > step
            ]
            wave_jobs = [
                replace(jobs[position], warm_payload=payloads.get(seed))
                for seed, position in wave
            ]
            results = self.executor.map(_run_warm_work_unit, wave_jobs)
            for (seed, position), (cells, payload) in zip(wave, results):
                groups[position] = cells
                payloads[seed] = payload
        return [cell for group in groups if group is not None for cell in group]

    def _run_serial(self, jobs: Sequence[ConfigCells]) -> list[GridCell]:
        # One warm-start lane per (method, seed): successive levels of a
        # sweep re-solve a near-identical relaxation, so the previous
        # fractional optimum is an excellent ADMM starting point.  Lanes
        # chain CollectiveWarmPayload batons (like the wave path) rather
        # than one long-lived solver instance, so per-job settings — a
        # weight sweep gives every cell its own weights — are honoured
        # cell by cell.
        lanes: dict[tuple[str, int], CollectiveWarmPayload | None] = {}
        cells: list[GridCell] = []
        for job in jobs:
            solvers: dict[str, Solver] = {}
            lane_solver: WarmStartedCollective | None = None
            key = ("collective", job.config.seed)
            if self.warm_start and "collective" in job.methods:
                lane_solver = WarmStartedCollective(
                    job.collective_settings, payload=lanes.get(key)
                )
                solvers["collective"] = lane_solver
            cells.extend(evaluate_config_cells(job, cache=self.cache, solvers=solvers))
            if lane_solver is not None:
                lanes[key] = lane_solver.payload
        return cells

    def sweep(
        self,
        base: ScenarioConfig,
        noise: str,
        levels: Sequence[float],
        seeds: Sequence[int],
    ) -> "SweepResult":
        """Run the paper's quality-vs-noise grid and aggregate per level."""
        if noise not in ("pi_corresp", "pi_errors", "pi_unexplained"):
            raise ReproError(f"unknown noise parameter {noise!r}")
        configs = [
            replace(base, seed=seed, **{noise: float(level)})
            for level in levels
            for seed in seeds
        ]
        result = self.run_grid(configs)
        return SweepResult(
            noise=noise,
            levels=tuple(float(level) for level in levels),
            seeds=tuple(seeds),
            grid=result,
        )

    def weight_sweep(
        self,
        base: ScenarioConfig,
        weight_grid: Sequence["ObjectiveWeights"],
        seeds: Sequence[int],
    ) -> "WeightSweepResult":
        """Sweep the objective weights on a *fixed* scenario structure.

        Every cell of one seed's lane re-solves the **same** selection
        problem under different :class:`~repro.selection.objective.
        ObjectiveWeights`.  The scenario/problem come from the scenario
        cache and the collective method's grounding from the per-process
        :data:`~repro.selection.collective.GROUNDING_CACHE`, so after a
        lane's first cell each further cell only *reweights* the cached
        ground structure and re-solves (warm-started, when enabled) —
        no re-generation, no re-chase, no re-ground.  Results are
        bit-identical to grounding each cell from scratch.

        Note the gold reference row (``include_gold``) is scored at the
        default objective weights, like everywhere else in the engine.
        """
        base_settings = (
            self.collective_settings
            if self.collective_settings is not None
            else CollectiveSettings()
        )
        jobs = [
            ConfigCells(
                replace(base, seed=seed),
                self.methods,
                include_gold=self.include_gold,
                cache_dir=self.cache_dir,
                collective_settings=replace(base_settings, weights=weights),
            )
            for weights in weight_grid
            for seed in seeds
        ]
        cells = self._execute_jobs(jobs)
        return WeightSweepResult(
            weight_grid=tuple(weight_grid),
            seeds=tuple(seeds),
            cells_per_job=len(self.methods) + int(self.include_gold),
            grid=GridResult(cells),
        )


@dataclass
class SweepResult:
    """A noise sweep's cells plus figure-ready aggregation."""

    noise: str
    levels: tuple[float, ...]
    seeds: tuple[int, ...]
    grid: GridResult

    def mean_f1_rows(self, methods: Sequence[str] | None = None) -> list[list[float]]:
        """``[level, mean data-F1 per method...]`` rows, sweep order."""
        from repro.evaluation.reporting import mean

        methods = list(methods if methods is not None else self.grid.methods())
        rows = []
        for level in self.levels:
            per_method: dict[str, list[float]] = {m: [] for m in methods}
            for cell in self.grid.cells:
                if getattr(cell.config, self.noise) == level and cell.method in per_method:
                    per_method[cell.method].append(cell.run.data.f1)
            rows.append([level] + [mean(per_method[m]) for m in methods])
        return rows


def weights_label(weights: ObjectiveWeights) -> str:
    """Compact ``explains/errors/size`` rendering for table rows."""
    return (
        f"{float(weights.explains):g}/{float(weights.errors):g}/"
        f"{float(weights.size):g}"
    )


@dataclass
class WeightSweepResult:
    """A weight sweep's cells plus per-weight-setting aggregation.

    The grid's cells arrive in job order — ``cells_per_job`` consecutive
    cells per (weight setting × seed) job, weight-setting-major — which
    is what :meth:`cells_by_weight` slices on (scenario configs alone
    cannot distinguish weight settings: the whole point of the sweep is
    that the scenario is fixed).
    """

    weight_grid: tuple[ObjectiveWeights, ...]
    seeds: tuple[int, ...]
    cells_per_job: int
    grid: GridResult

    def cells_by_weight(self) -> list[tuple[ObjectiveWeights, list[GridCell]]]:
        """All cells grouped per weight setting, sweep order."""
        per_weight = len(self.seeds) * self.cells_per_job
        groups = []
        for w_idx, weights in enumerate(self.weight_grid):
            lo = w_idx * per_weight
            groups.append((weights, self.grid.cells[lo : lo + per_weight]))
        return groups

    def mean_f1_rows(self, methods: Sequence[str] | None = None) -> list[list]:
        """``[weights label, mean data-F1 per method...]`` rows."""
        from repro.evaluation.reporting import mean

        methods = list(methods if methods is not None else self.grid.methods())
        rows = []
        for weights, cells in self.cells_by_weight():
            per_method: dict[str, list[float]] = {m: [] for m in methods}
            for cell in cells:
                if cell.method in per_method:
                    per_method[cell.method].append(cell.run.data.f1)
            rows.append(
                [weights_label(weights)] + [mean(per_method[m]) for m in methods]
            )
        return rows
