"""Evaluation: quality metrics, experiment harness, reporting."""

from repro.evaluation.harness import DEFAULT_METHODS, MethodRun, exact_method, run_methods
from repro.evaluation.metrics import (
    PrecisionRecall,
    data_quality,
    instance_precision_recall,
    mapping_quality,
)
from repro.evaluation.reporting import format_table, mean

__all__ = [
    "DEFAULT_METHODS",
    "MethodRun",
    "PrecisionRecall",
    "data_quality",
    "exact_method",
    "format_table",
    "instance_precision_recall",
    "mapping_quality",
    "mean",
    "run_methods",
]
