"""Evaluation: quality metrics, experiment harness, grid engine, reporting."""

from repro.evaluation.engine import (
    DEFAULT_GRID_METHODS,
    METHOD_REGISTRY,
    CellTiming,
    EvaluationEngine,
    GridCell,
    GridResult,
    ScenarioCache,
    SweepResult,
    WeightSweepResult,
    run_scenario,
)
from repro.evaluation.harness import DEFAULT_METHODS, MethodRun, exact_method, run_methods
from repro.evaluation.metrics import (
    PrecisionRecall,
    data_quality,
    instance_precision_recall,
    mapping_quality,
)
from repro.evaluation.reporting import format_table, mean

__all__ = [
    "DEFAULT_GRID_METHODS",
    "DEFAULT_METHODS",
    "METHOD_REGISTRY",
    "CellTiming",
    "EvaluationEngine",
    "GridCell",
    "GridResult",
    "MethodRun",
    "PrecisionRecall",
    "ScenarioCache",
    "SweepResult",
    "WeightSweepResult",
    "data_quality",
    "exact_method",
    "format_table",
    "instance_precision_recall",
    "mapping_quality",
    "mean",
    "run_methods",
    "run_scenario",
]
