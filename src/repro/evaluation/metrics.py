"""Evaluation metrics: data-level and mapping-level quality.

The paper's headline metric is *data-level* quality: exchange the source
instance with the selected mapping and compare the result against the
gold mapping's exchange, counting tuples matched up to homomorphism (a
chase fact with nulls matches a grounded reference fact it maps onto).

Mapping-level precision/recall over the candidate set (selected vs gold
indices) is reported as a secondary diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.chase.engine import exchanged_instance
from repro.datamodel.instance import Instance
from repro.homomorphism.search import fact_matches, has_fact_homomorphism
from repro.mappings.tgd import StTgd


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def __repr__(self) -> str:
        return f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f}"


def instance_precision_recall(result: Instance, reference: Instance) -> PrecisionRecall:
    """Tuple-level P/R of *result* against *reference*, homomorphism-aware.

    Precision: fraction of result facts with a homomorphic image in the
    reference.  Recall: fraction of reference facts some result fact maps
    onto.  An empty result has precision 1 (it asserts nothing wrong).
    """
    if len(result) == 0:
        return PrecisionRecall(1.0, 0.0 if len(reference) else 1.0)
    matched = sum(1 for f in result if has_fact_homomorphism(f, reference))
    precision = matched / len(result)

    if len(reference) == 0:
        return PrecisionRecall(precision, 1.0)
    covered = 0
    for t in reference:
        if any(
            fact_matches(f, t) is not None for f in result.facts_of(t.relation)
        ):
            covered += 1
    recall = covered / len(reference)
    return PrecisionRecall(precision, recall)


def data_quality(
    source: Instance,
    selection: Iterable[StTgd],
    reference_target: Instance,
) -> PrecisionRecall:
    """Exchange *source* under *selection* and score against the reference."""
    return instance_precision_recall(
        exchanged_instance(source, list(selection)), reference_target
    )


def mapping_quality(
    selected: Iterable[int],
    gold: Iterable[int],
) -> PrecisionRecall:
    """Set-level P/R of selected candidate indices against the gold indices."""
    selected_set, gold_set = set(selected), set(gold)
    if not selected_set:
        return PrecisionRecall(1.0, 0.0 if gold_set else 1.0)
    hits = len(selected_set & gold_set)
    precision = hits / len(selected_set)
    recall = hits / len(gold_set) if gold_set else 1.0
    return PrecisionRecall(precision, recall)
