"""Enumerating the k best selections.

The paper motivates mapping selection as part of an interactive design
loop: a designer inspects the proposed mapping and may prefer a close
runner-up.  This module enumerates the **k lowest-objective selections**
exactly, by exhausting the branch-and-bound search tree with a bound
against the current k-th best value instead of the single incumbent.

Intended for the candidate-set sizes where exact solving is viable
(|C| up to ~25); for larger problems enumerate on the preprocessed
problem (:mod:`repro.selection.preprocess`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from fractions import Fraction

from repro.selection.exact import SelectionResult
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    IncrementalObjective,
    ObjectiveWeights,
)


@dataclass(frozen=True)
class KBestResult:
    """The k best selections in ascending objective order."""

    selections: tuple[SelectionResult, ...]

    @property
    def best(self) -> SelectionResult:
        return self.selections[0]

    def __iter__(self):
        return iter(self.selections)

    def __len__(self) -> int:
        return len(self.selections)


class _KBestSearch:
    """B&B enumerating every selection within the evolving k-th-best bound."""

    def __init__(self, problem: SelectionProblem, k: int, weights: ObjectiveWeights):
        self._problem = problem
        self._k = k
        self._weights = weights
        self._order = sorted(
            range(problem.num_candidates),
            key=lambda i: -sum(problem.covers[i].values()),
        )
        n = len(self._order)
        self._suffix_best: list[dict] = [{} for _ in range(n + 1)]
        for depth in range(n - 1, -1, -1):
            merged = dict(self._suffix_best[depth + 1])
            for t, d in problem.covers[self._order[depth]].items():
                if d > merged.get(t, Fraction(0)):
                    merged[t] = d
            self._suffix_best[depth] = merged
        self._incremental = IncrementalObjective(problem, weights)
        # Max-heap (negated values) of the best k (value, selection) found.
        self._heap: list[tuple[Fraction, frozenset[int]]] = []
        self._seen: set[frozenset[int]] = set()

    def _offer(self, value: Fraction, selection: frozenset[int]) -> None:
        if selection in self._seen:
            return
        self._seen.add(selection)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, (-value, selection))
        elif -self._heap[0][0] > value:
            heapq.heapreplace(self._heap, (-value, selection))

    def _bound(self) -> Fraction | None:
        """Current pruning threshold: the k-th best value (None if < k found)."""
        if len(self._heap) < self._k:
            return None
        return -self._heap[0][0]

    def _lower_bound(self, depth: int) -> Fraction:
        problem, w = self._problem, self._weights
        inc = self._incremental
        selected = inc.selected
        optimistic = Fraction(0)
        suffix = self._suffix_best[depth]
        for t in problem.j_facts:
            cover = problem.max_cover(t, selected)
            future = suffix.get(t)
            if future is not None and future > cover:
                cover = future
            optimistic += 1 - cover
        current = inc.value
        achieved = (
            current
            - w.errors * Fraction(len(problem.union_error_facts(selected)))
            - w.size * Fraction(sum(problem.sizes[i] for i in selected))
        )
        return current - achieved + w.explains * optimistic

    def run(self) -> KBestResult:
        self._dfs(0)
        ranked = sorted(((-v, s) for v, s in self._heap))
        return KBestResult(
            tuple(SelectionResult(selection, value) for value, selection in ranked)
        )

    def _dfs(self, depth: int) -> None:
        inc = self._incremental
        self._offer(inc.value, inc.selected)
        if depth == len(self._order):
            return
        bound = self._bound()
        if bound is not None and self._lower_bound(depth) > bound:
            return
        i = self._order[depth]
        inc.add(i)
        self._dfs(depth + 1)
        inc.remove(i)
        self._dfs(depth + 1)


def solve_k_best(
    problem: SelectionProblem,
    k: int,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> KBestResult:
    """The k selections with the lowest exact objective, best first."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return _KBestSearch(problem, k, weights).run()
