"""Greedy baseline for mapping selection.

Forward selection: repeatedly add the candidate with the most negative
objective delta; stop when no addition improves F.  An optional backward
pass then drops candidates whose removal improves F (useful when an early
pick is subsumed by later ones).  This is the natural local-search
baseline the collective method is compared against.
"""

from __future__ import annotations

from repro.selection.exact import SelectionResult
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    IncrementalObjective,
    ObjectiveWeights,
)


def solve_greedy(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
    backward_pass: bool = True,
) -> SelectionResult:
    """Greedy forward selection (plus optional backward elimination)."""
    inc = IncrementalObjective(problem, weights)
    remaining = set(range(problem.num_candidates))

    improved = True
    while improved and remaining:
        improved = False
        best_delta = None
        best_candidate = None
        # sorted(): ties on delta break toward the lowest candidate
        # index instead of set order, keeping picks reproducible.
        for i in sorted(remaining):
            delta = inc.delta_add(i)
            if delta < 0 and (best_delta is None or delta < best_delta):
                best_delta = delta
                best_candidate = i
        if best_candidate is not None:
            inc.add(best_candidate)
            remaining.discard(best_candidate)
            improved = True

    if backward_pass:
        changed = True
        while changed:
            changed = False
            for i in sorted(inc.selected):
                before = inc.value
                inc.remove(i)
                if inc.value < before:
                    changed = True
                else:
                    inc.add(i)

    return SelectionResult(inc.selected, inc.value)
