"""The mapping-selection objective — Eq. (4) and Eq. (9) of the paper.

For a selection M of candidates::

    F(M) =  w_explains * sum_{t in J}       (1 - explains(M, t))
          + w_errors   * sum_{t in K_C - J}  error(M, t)
          + w_size     * sum_{theta in M}    size(theta)

With all-full candidates the graded terms collapse to Booleans and this
is exactly Eq. (4); in general it is Eq. (9).  The weighted form is the
appendix's Theorem 1 generalization (NP-hard for any positive weights).
Values are exact :class:`fractions.Fraction`s so the appendix table is
reproduced to the digit.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.selection.metrics import SelectionProblem


@dataclass(frozen=True)
class ObjectiveWeights:
    """Non-negative weights for the three objective terms (all 1 in the paper).

    A weight of exactly 0 is accepted and simply switches its term off.
    This is deliberate: ablations and the fact-sampling estimator (which
    rescales ``explains`` by the sampled fraction, reaching 0 for an empty
    sample) both rely on it.  Note, however, that Theorem 1's NP-hardness
    statement assumes *strictly positive* weights — with a zero weight the
    optimization problem changes character (e.g. ``size=0`` makes adding
    error-free candidates free), so complexity guarantees no longer carry
    over.  Negative weights are rejected: they would invert a term's
    meaning and break every solver's pruning arguments.
    """

    explains: Fraction = Fraction(1)
    errors: Fraction = Fraction(1)
    size: Fraction = Fraction(1)

    def __post_init__(self) -> None:
        for label, w in (
            ("explains", self.explains),
            ("errors", self.errors),
            ("size", self.size),
        ):
            if w < 0:
                raise ValueError(f"weight {label} must be non-negative, got {w}")


DEFAULT_WEIGHTS = ObjectiveWeights()


@dataclass(frozen=True)
class ObjectiveBreakdown:
    """F(M) split into its three terms (all exact fractions)."""

    unexplained: Fraction
    errors: Fraction
    size: Fraction

    @property
    def total(self) -> Fraction:
        return self.unexplained + self.errors + self.size


def objective_breakdown(
    problem: SelectionProblem,
    selected: Iterable[int],
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> ObjectiveBreakdown:
    """Evaluate F on *selected* (candidate indices), term by term."""
    chosen = sorted(set(selected))
    unexplained = sum(
        (Fraction(1) - problem.max_cover(t, chosen) for t in problem.j_facts),
        Fraction(0),
    )
    n_errors = len(problem.union_error_facts(chosen))
    size = sum(problem.sizes[i] for i in chosen)
    return ObjectiveBreakdown(
        weights.explains * unexplained,
        weights.errors * Fraction(n_errors),
        weights.size * Fraction(size),
    )


def objective_value(
    problem: SelectionProblem,
    selected: Iterable[int],
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> Fraction:
    """F(M) as a single exact number."""
    return objective_breakdown(problem, selected, weights).total


class IncrementalObjective:
    """Incrementally maintained objective for search algorithms.

    Supports O(changed-facts) add/remove of one candidate, which makes
    greedy and branch-and-bound search over thousands of moves cheap.
    """

    def __init__(
        self,
        problem: SelectionProblem,
        weights: ObjectiveWeights = DEFAULT_WEIGHTS,
    ):
        self._problem = problem
        self._weights = weights
        self._selected: set[int] = set()
        self._error_owners: dict = {}
        self._unexplained = Fraction(len(problem.j_facts))
        self._size = Fraction(0)

    @property
    def selected(self) -> frozenset[int]:
        return frozenset(self._selected)

    @property
    def value(self) -> Fraction:
        w = self._weights
        return (
            w.explains * self._unexplained
            + w.errors * Fraction(len(self._error_owners))
            + w.size * self._size
        )

    def add(self, i: int) -> None:
        """Select candidate *i* (no-op if already selected)."""
        if i in self._selected:
            return
        problem = self._problem
        for t, degree in problem.covers[i].items():
            old = problem.max_cover(t, self._selected)
            if degree > old:
                self._unexplained -= degree - old
        for f in problem.error_facts[i]:
            self._error_owners.setdefault(f, set()).add(i)
        self._size += problem.sizes[i]
        self._selected.add(i)

    def remove(self, i: int) -> None:
        """Deselect candidate *i* (no-op if not selected)."""
        if i not in self._selected:
            return
        problem = self._problem
        self._selected.remove(i)
        for t, degree in problem.covers[i].items():
            new = problem.max_cover(t, self._selected)
            if degree > new:
                self._unexplained += degree - new
        for f in problem.error_facts[i]:
            owners = self._error_owners.get(f)
            if owners is not None:
                owners.discard(i)
                if not owners:
                    del self._error_owners[f]
        self._size -= problem.sizes[i]

    def delta_add(self, i: int) -> Fraction:
        """Change in F if candidate *i* were added (without mutating)."""
        if i in self._selected:
            return Fraction(0)
        problem, w = self._problem, self._weights
        gain = Fraction(0)
        for t, degree in problem.covers[i].items():
            old = problem.max_cover(t, self._selected)
            if degree > old:
                gain += degree - old
        new_errors = sum(
            1 for f in problem.error_facts[i] if f not in self._error_owners
        )
        return (
            -w.explains * gain
            + w.errors * Fraction(new_errors)
            + w.size * Fraction(problem.sizes[i])
        )
