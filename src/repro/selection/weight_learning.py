"""Learning objective weights from solved scenarios.

The paper fixes the three objective weights at 1 and names weight
learning as the natural extension (the PSL framework supports it).  This
module implements the standard **structured perceptron** for the linear
objective F_w(M) = w · Phi(M) with the feature vector::

    Phi(M) = ( sum_t 1 - explains(M,t),   # unexplained mass
               |errors(M)|,               # error count
               sum_{theta in M} size(theta) )

Training pairs are (selection problem, gold selection).  Each epoch runs
inference (any solver) under the current weights; whenever the predicted
selection beats the gold selection's own score, the weights move toward
making the gold cheaper::

    w  <-  w + eta * (Phi(prediction) - Phi(gold))

clipped to stay strictly positive (the NP-hardness construction and the
objective's semantics both assume positive weights).  Averaged weights
over all updates are returned (averaged perceptron), which stabilizes
convergence on small training sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.selection.exact import SelectionResult
from repro.selection.greedy import solve_greedy
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import ObjectiveWeights, objective_breakdown

Solver = Callable[[SelectionProblem, ObjectiveWeights], SelectionResult]


def feature_vector(
    problem: SelectionProblem, selected: frozenset[int]
) -> tuple[Fraction, Fraction, Fraction]:
    """Phi(M): (unexplained mass, error count, total size) — weight-free."""
    unit = ObjectiveWeights()
    b = objective_breakdown(problem, selected, unit)
    return (b.unexplained, b.errors, b.size)


@dataclass
class LearningResult:
    """Learned weights plus the per-epoch mistake counts."""

    weights: ObjectiveWeights
    mistakes_per_epoch: list[int]

    @property
    def converged(self) -> bool:
        return bool(self.mistakes_per_epoch) and self.mistakes_per_epoch[-1] == 0


def learn_weights(
    training: Sequence[tuple[SelectionProblem, frozenset[int]]],
    epochs: int = 10,
    learning_rate: float = 0.1,
    solver: Solver = solve_greedy,
    initial: ObjectiveWeights | None = None,
    minimum_weight: Fraction = Fraction(1, 100),
) -> LearningResult:
    """Averaged structured perceptron over (problem, gold selection) pairs."""
    eta = Fraction(learning_rate).limit_denominator(10_000)
    floor = Fraction(minimum_weight)
    start = initial or ObjectiveWeights()
    current = [start.explains, start.errors, start.size]
    accumulated = [Fraction(0)] * 3
    accumulation_steps = 0
    mistakes_per_epoch: list[int] = []

    for _ in range(epochs):
        mistakes = 0
        for problem, gold in training:
            weights = ObjectiveWeights(*current)
            predicted = solver(problem, weights).selected
            if predicted == gold:
                continue
            phi_predicted = feature_vector(problem, predicted)
            phi_gold = feature_vector(problem, gold)
            gold_score = sum(w * f for w, f in zip(current, phi_gold))
            predicted_score = sum(w * f for w, f in zip(current, phi_predicted))
            if gold_score <= predicted_score:
                continue  # gold already (weakly) preferred; rounding noise only
            mistakes += 1
            current = [
                max(floor, w + eta * (fp - fg))
                for w, fp, fg in zip(current, phi_predicted, phi_gold)
            ]
        for i in range(3):
            accumulated[i] += current[i]
        accumulation_steps += 1
        mistakes_per_epoch.append(mistakes)
        if mistakes == 0:
            break

    if mistakes_per_epoch and mistakes_per_epoch[-1] == 0:
        # Converged: the final weights separate every training pair; prefer
        # them over the average (which still mixes in early, wrong epochs).
        final = current
    else:
        final = [a / accumulation_steps for a in accumulated]
    return LearningResult(ObjectiveWeights(*final), mistakes_per_epoch)


def training_pairs_from_scenarios(scenarios) -> list[tuple[SelectionProblem, frozenset[int]]]:
    """Build (problem, gold selection) pairs from generated scenarios."""
    return [
        (scenario.selection_problem(), frozenset(scenario.gold_indices))
        for scenario in scenarios
    ]
