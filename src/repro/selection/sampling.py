"""Scaling to large data examples by sampling J.

On large examples the dominant cost of building a selection problem is
the **covers** table: one homomorphism sweep per (candidate chase fact,
J fact) pair, with corroboration subqueries.  The coverage term is a sum
over J, so a uniform sample estimates it unbiasedly: compute covers on a
``rate``-sample of J and scale the explains weight by the inverse rate.

The **creates/error** test stays on the *full* J: it is a cheap per-
chase-fact membership-style check, and running it against a thinned J
would spuriously flag explained facts as errors (a chase fact whose
image was sampled out looks unjustified).  Size is exact by definition.

The result: coverage unbiased in expectation, errors and size exact,
metric-construction cost dropping linearly in the rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from repro.chase.engine import chase
from repro.datamodel.instance import Fact, Instance
from repro.datamodel.values import NullFactory
from repro.errors import SelectionError
from repro.homomorphism.covers import CoverComputer, creates
from repro.mappings.tgd import StTgd
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import DEFAULT_WEIGHTS, ObjectiveWeights


@dataclass
class SampledProblem:
    """A selection problem whose covers table was built on a sampled J.

    ``weights`` scales the explains term by 1/rate so objective values
    are comparable (in expectation) to the full problem's.
    """

    problem: SelectionProblem
    weights: ObjectiveWeights
    rate: float
    sampled_facts: int
    total_facts: int


def sample_selection_problem(
    source: Instance,
    target: Instance,
    candidates: list[StTgd],
    rate: float,
    seed: int = 0,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> SampledProblem:
    """Build covers on a uniform ``rate``-sample of *target*; errors on all of it."""
    if not 0.0 < rate <= 1.0:
        raise SelectionError(f"sampling rate must be in (0, 1], got {rate}")
    facts = sorted(target, key=repr)
    if rate >= 1.0:
        sampled = list(facts)
    else:
        rng = random.Random(seed)
        count = max(1, round(len(facts) * rate))
        sampled = rng.sample(facts, count)
    sampled_target = Instance(sampled)

    factory = NullFactory()
    covers_tables: list[dict[Fact, Fraction]] = []
    error_sets: list[frozenset[Fact]] = []
    chases: list[Instance] = []
    j_facts = sorted(sampled_target, key=repr)
    for candidate in candidates:
        k_theta = chase(source, [candidate], factory).by_tgd[candidate]
        chases.append(k_theta)
        # Covers against the sample; corroboration against the full J so a
        # sampled-out witness does not artificially weaken a null.
        computer = CoverComputer(k_theta, target)
        table: dict[Fact, Fraction] = {}
        for t in j_facts:
            degree = computer.degree(t)
            if degree > 0:
                table[t] = degree
        covers_tables.append(table)
        error_sets.append(frozenset(f for f in k_theta if creates(f, target)))

    problem = SelectionProblem(
        candidates=list(candidates),
        source=source,
        target=sampled_target,
        j_facts=j_facts,
        covers=covers_tables,
        error_facts=error_sets,
        sizes=[c.size for c in candidates],
        chase_by_candidate=chases,
    )
    scaled = ObjectiveWeights(
        explains=weights.explains * Fraction(len(facts), max(1, len(sampled))),
        errors=weights.errors,
        size=weights.size,
    )
    return SampledProblem(
        problem=problem,
        weights=scaled,
        rate=len(sampled) / len(facts) if facts else 1.0,
        sampled_facts=len(sampled),
        total_facts=len(facts),
    )
