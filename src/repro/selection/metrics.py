"""Precomputed metric tables for mapping selection.

Selecting a mapping only needs three ingredients per candidate theta:

* ``covers[(i, t)]`` — the graded degree to which candidate i explains
  target-example fact t (only non-zero entries are stored);
* the set of *error facts* candidate i creates (chase facts with no
  homomorphic image in J);
* ``size(theta_i)``.

:func:`build_selection_problem` chases the source once per candidate and
evaluates the homomorphism-based semantics of
:mod:`repro.homomorphism.covers`.  All downstream solvers (exact, greedy,
collective/PSL) consume the resulting :class:`SelectionProblem`, so they
optimize exactly the same objective.

The per-candidate work (chase + cover table + error set) is independent
across candidates, so it runs through a pluggable
:class:`~repro.executors.MapExecutor`: serially by default, or on a
process pool for multi-core builds.  Each work unit chases with a private
null factory counting from zero; the merge then shifts every candidate's
null labels by the number of nulls its predecessors consumed.  That
reproduces, byte for byte, the labels a single shared
:class:`~repro.datamodel.values.NullFactory` threaded through a serial
loop would have handed out — candidates still never share a null, and the
result is independent of the executor used.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from fractions import Fraction
from functools import partial
from typing import Iterable, Sequence

from repro.chase.engine import chase
from repro.executors import MapExecutor, resolve_executor
from repro.datamodel.instance import Fact, Instance
from repro.datamodel.values import LabeledNull, NullFactory
from repro.errors import SelectionError
from repro.homomorphism.covers import CoverComputer, creates
from repro.mappings.tgd import StTgd


@dataclass(frozen=True)
class ProblemLineage:
    """Revision identity linking a problem to the one it was edited from.

    ``token`` names *this* revision; ``parent`` the revision this
    problem was derived from by a small edit (``None`` for a chain
    root).  Consumed by the incremental grounding tier
    (:class:`~repro.selection.collective.CollectiveGroundingCache`): a
    cache miss on a problem whose parent's artifact is still cached
    *patches* that artifact — re-grounds only the shards the edit
    touched — instead of grounding from scratch.  Tokens are opaque and
    only compared for equality; :func:`next_lineage` mints
    process-unique ones.
    """

    token: object
    parent: object | None = None


#: Process-wide revision counter behind :func:`next_lineage`.
_LINEAGE_COUNTER = itertools.count()


def next_lineage(parent: ProblemLineage | None = None) -> ProblemLineage:
    """A fresh lineage whose parent is *parent*'s token (if any)."""
    token = ("lineage", os.getpid(), next(_LINEAGE_COUNTER))
    return ProblemLineage(token=token, parent=None if parent is None else parent.token)


@dataclass
class SelectionProblem:
    """A fully materialized instance of the mapping-selection problem.

    Attributes:
        candidates: the candidate st tgds, index-addressed everywhere else.
        source: the source instance I.
        target: the target example J.
        j_facts: J's facts in a fixed order.
        covers: ``covers[i][t]`` — non-zero cover degrees of candidate i.
        error_facts: per candidate, the chase facts flagged as errors.
        sizes: per candidate, the paper's size measure.
        chase_by_candidate: per candidate, its canonical chase instance.
        lineage: optional revision identity for incremental grounding
            (``None`` on problems built outside an edit chain — e.g.
            unpickled engine payloads from older cache formats).
    """

    candidates: list[StTgd]
    source: Instance
    target: Instance
    j_facts: list[Fact]
    covers: list[dict[Fact, Fraction]]
    error_facts: list[frozenset[Fact]]
    sizes: list[int]
    chase_by_candidate: list[Instance] = field(default_factory=list)
    lineage: ProblemLineage | None = None

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    def max_cover(self, t: Fact, selected: Iterable[int]) -> Fraction:
        """explains(M, t): best cover of t over the selected candidates."""
        best = Fraction(0)
        for i in selected:
            d = self.covers[i].get(t)
            if d is not None and d > best:
                best = d
                if best == 1:
                    break
        return best

    def union_error_facts(self, selected: Iterable[int]) -> set[Fact]:
        """Distinct error facts created by the selected candidates.

        Facts with labeled nulls are private to one candidate by
        construction (fresh nulls per chase), while ground facts produced
        by several full tgds coincide and are counted once — matching the
        sum over K_C - J in the objective.
        """
        union: set[Fact] = set()
        for i in selected:
            union.update(self.error_facts[i])
        return union

    def coverable_facts(self) -> set[Fact]:
        """J-facts covered (to any degree) by at least one candidate."""
        coverable: set[Fact] = set()
        for table in self.covers:
            coverable.update(table)
        return coverable

    def certain_unexplained(self) -> list[Fact]:
        """J-facts no candidate covers at all.

        These contribute a constant ``w_explains`` each to every selection's
        objective and can be removed prior to optimization (Section III-C).
        """
        coverable = self.coverable_facts()
        return [t for t in self.j_facts if t not in coverable]


def problem_fingerprint(problem: SelectionProblem) -> bytes:
    """A canonical byte serialization of a problem's metric tables.

    Two problems fingerprint equally iff their j_facts, cover tables,
    error sets, sizes, and chase instances agree — independent of dict/set
    iteration order or the process that produced them.  Used to verify
    that serial and parallel builds are byte-identical.
    """
    import json

    payload = {
        "j_facts": [repr(t) for t in problem.j_facts],
        "covers": [
            sorted((repr(t), str(d)) for t, d in table.items())
            for table in problem.covers
        ],
        "errors": [sorted(repr(f) for f in errs) for errs in problem.error_facts],
        "sizes": list(problem.sizes),
        "chase": [
            sorted(repr(f) for f in inst) for inst in problem.chase_by_candidate
        ],
        "candidates": [repr(c) for c in problem.candidates],
    }
    return json.dumps(payload, sort_keys=True).encode()


class _CountingNullFactory(NullFactory):
    """A null factory that remembers how many nulls it handed out."""

    def __init__(self) -> None:
        super().__init__(0)
        self.used = 0

    def fresh(self) -> LabeledNull:
        self.used += 1
        return super().fresh()


@dataclass(frozen=True)
class CandidateTables:
    """The metric tables of one candidate, with candidate-local null labels.

    ``nulls_used`` is the number of fresh nulls the candidate's chase
    consumed (its local labels are exactly ``0 .. nulls_used - 1``); the
    merge uses it to relabel into the global, collision-free label space.
    """

    index: int
    chase_facts: tuple[Fact, ...]
    covers: dict[Fact, Fraction]
    error_facts: frozenset[Fact]
    nulls_used: int

    def shifted(self, offset: int) -> tuple[Instance, frozenset[Fact]]:
        """The chase instance and error set with null labels moved by *offset*."""
        if offset == 0:
            return Instance(self.chase_facts), self.error_facts
        remap = {
            LabeledNull(label): LabeledNull(label + offset)
            for label in range(self.nulls_used)
        }
        chase_instance = Instance(f.substitute(remap) for f in self.chase_facts)
        errors = frozenset(f.substitute(remap) for f in self.error_facts)
        return chase_instance, errors


def evaluate_candidate(
    source: Instance,
    target: Instance,
    candidate: StTgd,
    index: int = 0,
) -> CandidateTables:
    """The per-candidate work unit: chase, cover table, error set.

    Pure and picklable — safe to ship to a worker process.  Null labels in
    the result are candidate-local (they start at 0).
    """
    factory = _CountingNullFactory()
    k_theta = chase(source, [candidate], factory).by_tgd[candidate]
    computer = CoverComputer(k_theta, target)
    table: dict[Fact, Fraction] = {}
    for t in sorted(target, key=repr):
        degree = computer.degree(t)
        if degree > 0:
            table[t] = degree
    return CandidateTables(
        index=index,
        chase_facts=tuple(sorted(k_theta, key=repr)),
        covers=table,
        error_facts=frozenset(f for f in k_theta if creates(f, target)),
        nulls_used=factory.used,
    )


def _evaluate_indexed(
    source: Instance, target: Instance, work: tuple[int, StTgd]
) -> CandidateTables:
    """Adapter for executor ``map``: bind (source, target) via ``partial``.

    Keeping the shared instances in the function (pickled once per
    dispatch chunk) instead of in every work item avoids serializing the
    full source/target once per candidate on the process-pool path.
    """
    index, candidate = work
    return evaluate_candidate(source, target, candidate, index)


def merge_candidate_tables(
    source: Instance,
    target: Instance,
    candidates: Sequence[StTgd],
    results: Iterable[CandidateTables],
) -> SelectionProblem:
    """Deterministically merge per-candidate tables into a SelectionProblem.

    Results may arrive in any order; they are realigned by index and each
    candidate's local null labels are shifted past all labels consumed by
    earlier candidates — exactly the labels one shared factory would give.
    """
    ordered = sorted(results, key=lambda r: r.index)
    if [r.index for r in ordered] != list(range(len(candidates))):
        raise SelectionError("candidate tables do not cover the candidate list")
    covers_tables: list[dict[Fact, Fraction]] = []
    error_sets: list[frozenset[Fact]] = []
    chases: list[Instance] = []
    offset = 0
    for result in ordered:
        chase_instance, errors = result.shifted(offset)
        offset += result.nulls_used
        chases.append(chase_instance)
        covers_tables.append(dict(result.covers))
        error_sets.append(errors)

    return SelectionProblem(
        candidates=list(candidates),
        source=source,
        target=target,
        j_facts=sorted(target, key=repr),
        covers=covers_tables,
        error_facts=error_sets,
        sizes=[c.size for c in candidates],
        chase_by_candidate=chases,
    )


def build_selection_problem(
    source: Instance,
    target: Instance,
    candidates: Sequence[StTgd],
    executor: MapExecutor | str | None = None,
) -> SelectionProblem:
    """Chase each candidate and materialize covers/creates/size tables.

    *executor* selects where the per-candidate work runs: ``None`` /
    ``"serial"`` for the calling process, ``"process[:N]"`` (or any
    :class:`~repro.executors.MapExecutor`) for a worker pool.  The
    resulting problem is identical whichever executor is used.
    """
    if not all(isinstance(c, StTgd) for c in candidates):
        raise SelectionError("candidates must be StTgd objects")
    executor = resolve_executor(executor)
    evaluate = partial(_evaluate_indexed, source, target)
    return merge_candidate_tables(
        source, target, candidates, executor.map(evaluate, list(enumerate(candidates)))
    )
