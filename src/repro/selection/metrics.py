"""Precomputed metric tables for mapping selection.

Selecting a mapping only needs three ingredients per candidate theta:

* ``covers[(i, t)]`` — the graded degree to which candidate i explains
  target-example fact t (only non-zero entries are stored);
* the set of *error facts* candidate i creates (chase facts with no
  homomorphic image in J);
* ``size(theta_i)``.

:func:`build_selection_problem` chases the source once per candidate with
a shared null factory and evaluates the homomorphism-based semantics of
:mod:`repro.homomorphism.covers`.  All downstream solvers (exact, greedy,
collective/PSL) consume the resulting :class:`SelectionProblem`, so they
optimize exactly the same objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from repro.chase.engine import chase
from repro.datamodel.instance import Fact, Instance
from repro.datamodel.values import NullFactory
from repro.errors import SelectionError
from repro.homomorphism.covers import CoverComputer, creates
from repro.mappings.tgd import StTgd


@dataclass
class SelectionProblem:
    """A fully materialized instance of the mapping-selection problem.

    Attributes:
        candidates: the candidate st tgds, index-addressed everywhere else.
        source: the source instance I.
        target: the target example J.
        j_facts: J's facts in a fixed order.
        covers: ``covers[i][t]`` — non-zero cover degrees of candidate i.
        error_facts: per candidate, the chase facts flagged as errors.
        sizes: per candidate, the paper's size measure.
        chase_by_candidate: per candidate, its canonical chase instance.
    """

    candidates: list[StTgd]
    source: Instance
    target: Instance
    j_facts: list[Fact]
    covers: list[dict[Fact, Fraction]]
    error_facts: list[frozenset[Fact]]
    sizes: list[int]
    chase_by_candidate: list[Instance] = field(default_factory=list)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    def max_cover(self, t: Fact, selected: Iterable[int]) -> Fraction:
        """explains(M, t): best cover of t over the selected candidates."""
        best = Fraction(0)
        for i in selected:
            d = self.covers[i].get(t)
            if d is not None and d > best:
                best = d
                if best == 1:
                    break
        return best

    def union_error_facts(self, selected: Iterable[int]) -> set[Fact]:
        """Distinct error facts created by the selected candidates.

        Facts with labeled nulls are private to one candidate by
        construction (fresh nulls per chase), while ground facts produced
        by several full tgds coincide and are counted once — matching the
        sum over K_C - J in the objective.
        """
        union: set[Fact] = set()
        for i in selected:
            union.update(self.error_facts[i])
        return union

    def coverable_facts(self) -> set[Fact]:
        """J-facts covered (to any degree) by at least one candidate."""
        coverable: set[Fact] = set()
        for table in self.covers:
            coverable.update(table)
        return coverable

    def certain_unexplained(self) -> list[Fact]:
        """J-facts no candidate covers at all.

        These contribute a constant ``w_explains`` each to every selection's
        objective and can be removed prior to optimization (Section III-C).
        """
        coverable = self.coverable_facts()
        return [t for t in self.j_facts if t not in coverable]


def build_selection_problem(
    source: Instance,
    target: Instance,
    candidates: Sequence[StTgd],
) -> SelectionProblem:
    """Chase each candidate and materialize covers/creates/size tables."""
    if not all(isinstance(c, StTgd) for c in candidates):
        raise SelectionError("candidates must be StTgd objects")
    factory = NullFactory()
    covers_tables: list[dict[Fact, Fraction]] = []
    error_sets: list[frozenset[Fact]] = []
    chases: list[Instance] = []
    j_facts = sorted(target, key=repr)

    for candidate in candidates:
        k_theta = chase(source, [candidate], factory).by_tgd[candidate]
        chases.append(k_theta)
        computer = CoverComputer(k_theta, target)
        table: dict[Fact, Fraction] = {}
        for t in j_facts:
            degree = computer.degree(t)
            if degree > 0:
                table[t] = degree
        covers_tables.append(table)
        error_sets.append(frozenset(f for f in k_theta if creates(f, target)))

    return SelectionProblem(
        candidates=list(candidates),
        source=source,
        target=target,
        j_facts=j_facts,
        covers=covers_tables,
        error_facts=error_sets,
        sizes=[c.size for c in candidates],
        chase_by_candidate=chases,
    )
