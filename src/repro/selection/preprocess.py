"""Problem reductions applied before optimization (Section III-C).

Two sound simplifications shrink a selection problem without changing
which selections are optimal:

* **certain unexplained tuples** — J facts no candidate covers contribute
  a constant ``w_explains`` each to *every* selection's objective; they
  can be removed and accounted for as an offset.

* **useless candidates** — candidates that cover nothing can only add
  errors and size (weights are non-negative), so no optimal selection
  contains them (they are never *strictly* beneficial; under positive
  weights any optimum including them can be improved or matched by
  dropping them).

:func:`preprocess` applies both and returns an index mapping so
selections over the reduced problem translate back to the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.selection.metrics import SelectionProblem
from repro.selection.objective import DEFAULT_WEIGHTS, ObjectiveWeights


@dataclass
class PreprocessResult:
    """A reduced problem plus the bookkeeping to undo the reduction."""

    problem: SelectionProblem
    objective_offset: Fraction
    kept_candidates: list[int]  # reduced index -> original index
    dropped_candidates: list[int]
    dropped_facts: list

    def translate(self, selected_reduced) -> frozenset[int]:
        """Map a selection over the reduced problem to original indices."""
        return frozenset(self.kept_candidates[i] for i in selected_reduced)


def drop_certain_unexplained(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> tuple[SelectionProblem, Fraction, list]:
    """Remove J facts with zero cover under every candidate.

    Returns (reduced problem, constant objective offset, removed facts).
    """
    inert = set(problem.certain_unexplained())
    if not inert:
        return problem, Fraction(0), []
    kept_facts = [t for t in problem.j_facts if t not in inert]
    target = problem.target.copy()
    # repro-lint: disable=RPL002 -- discard() is commutative and the
    # returned dropped-facts list is sorted below.
    for t in inert:
        target.discard(t)
    reduced = SelectionProblem(
        candidates=problem.candidates,
        source=problem.source,
        target=target,
        j_facts=kept_facts,
        covers=problem.covers,
        error_facts=problem.error_facts,
        sizes=problem.sizes,
        chase_by_candidate=problem.chase_by_candidate,
    )
    offset = weights.explains * Fraction(len(inert))
    return reduced, offset, sorted(inert, key=repr)


def drop_useless_candidates(
    problem: SelectionProblem,
) -> tuple[SelectionProblem, list[int], list[int]]:
    """Remove candidates whose cover table is empty.

    Returns (reduced problem, kept original indices, dropped indices).
    """
    kept = [i for i in range(problem.num_candidates) if problem.covers[i]]
    dropped = [i for i in range(problem.num_candidates) if not problem.covers[i]]
    if not dropped:
        return problem, list(range(problem.num_candidates)), []
    reduced = SelectionProblem(
        candidates=[problem.candidates[i] for i in kept],
        source=problem.source,
        target=problem.target,
        j_facts=problem.j_facts,
        covers=[problem.covers[i] for i in kept],
        error_facts=[problem.error_facts[i] for i in kept],
        sizes=[problem.sizes[i] for i in kept],
        chase_by_candidate=[problem.chase_by_candidate[i] for i in kept]
        if problem.chase_by_candidate
        else [],
    )
    return reduced, kept, dropped


def preprocess(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> PreprocessResult:
    """Apply both reductions; optimal value = reduced optimum + offset."""
    no_inert, offset, dropped_facts = drop_certain_unexplained(problem, weights)
    reduced, kept, dropped = drop_useless_candidates(no_inert)
    return PreprocessResult(
        problem=reduced,
        objective_offset=offset,
        kept_candidates=kept,
        dropped_candidates=dropped,
        dropped_facts=dropped_facts,
    )
