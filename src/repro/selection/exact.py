"""Exact solvers for mapping selection.

Mapping selection is NP-hard (Theorem 1; reduction in
:mod:`repro.theory.set_cover_reduction`), so exact solving is only viable
for small candidate sets.  Two strategies are provided:

* :func:`solve_exhaustive` — enumerate all 2^n subsets (n <= ~18);
* :func:`solve_branch_and_bound` — depth-first search with an admissible
  lower bound that assumes every still-undecided candidate contributes
  its coverage for free.  Orders of magnitude faster in practice and the
  default for the evaluation's "exact" baseline.

Both return provably optimal selections for the exact objective of
:mod:`repro.selection.objective`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations

from repro.datamodel.instance import Fact
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    IncrementalObjective,
    ObjectiveWeights,
    objective_value,
)


@dataclass(frozen=True)
class SelectionResult:
    """A selection (candidate indices) plus its objective value."""

    selected: frozenset[int]
    objective: Fraction

    def tgds(self, problem: SelectionProblem) -> list:
        """The selected st tgds, in index order."""
        return [problem.candidates[i] for i in sorted(self.selected)]


def solve_exhaustive(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
    max_candidates: int = 18,
) -> SelectionResult:
    """Optimal selection by enumerating every subset of candidates."""
    n = problem.num_candidates
    if n > max_candidates:
        raise ValueError(
            f"exhaustive search over {n} candidates would enumerate 2^{n} subsets; "
            f"use solve_branch_and_bound instead"
        )
    best: frozenset[int] = frozenset()
    best_value = objective_value(problem, [], weights)
    indices = range(n)
    for k in range(1, n + 1):
        for subset in combinations(indices, k):
            value = objective_value(problem, subset, weights)
            if value < best_value:
                best_value = value
                best = frozenset(subset)
    return SelectionResult(best, best_value)


class _BranchAndBound:
    """DFS over include/exclude decisions with an admissible bound."""

    def __init__(self, problem: SelectionProblem, weights: ObjectiveWeights):
        self._problem = problem
        self._weights = weights
        # Decide high-coverage candidates first: they tighten the bound fastest.
        self._order = sorted(
            range(problem.num_candidates),
            key=lambda i: -sum(problem.covers[i].values()),
        )
        # suffix_best[k][t] = best cover of t among still-undecided candidates
        # order[k:]; suffix_best[n] is empty.
        n = len(self._order)
        self._suffix_best: list[dict[Fact, Fraction]] = [{} for _ in range(n + 1)]
        for k in range(n - 1, -1, -1):
            merged = dict(self._suffix_best[k + 1])
            for t, d in problem.covers[self._order[k]].items():
                if d > merged.get(t, Fraction(0)):
                    merged[t] = d
            self._suffix_best[k] = merged
        self._incremental = IncrementalObjective(problem, weights)
        self._best_value = self._incremental.value
        self._best_set: frozenset[int] = frozenset()
        self._nodes = 0

    def _lower_bound(self, depth: int) -> Fraction:
        """Objective if all remaining coverage came for free (admissible)."""
        problem, w = self._problem, self._weights
        inc = self._incremental
        optimistic_unexplained = Fraction(0)
        suffix = self._suffix_best[depth]
        selected = inc.selected
        for t in problem.j_facts:
            cover = problem.max_cover(t, selected)
            future = suffix.get(t)
            if future is not None and future > cover:
                cover = future
            optimistic_unexplained += 1 - cover
        current = inc.value
        achieved_unexplained = (
            current
            - w.errors * Fraction(len(problem.union_error_facts(selected)))
            - w.size * Fraction(sum(problem.sizes[i] for i in selected))
        )
        return current - achieved_unexplained + w.explains * optimistic_unexplained

    def solve(self) -> SelectionResult:
        self._dfs(0)
        return SelectionResult(self._best_set, self._best_value)

    def _dfs(self, depth: int) -> None:
        self._nodes += 1
        inc = self._incremental
        if inc.value < self._best_value:
            self._best_value = inc.value
            self._best_set = inc.selected
        if depth == len(self._order):
            return
        if self._lower_bound(depth) >= self._best_value:
            return
        i = self._order[depth]
        # Branch 1: include candidate i (only promising when it covers anything
        # or the caller uses negative weights, which ObjectiveWeights forbids).
        inc.add(i)
        self._dfs(depth + 1)
        inc.remove(i)
        # Branch 2: exclude candidate i.
        self._dfs(depth + 1)

    @property
    def nodes_explored(self) -> int:
        return self._nodes


def solve_branch_and_bound(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> SelectionResult:
    """Provably optimal selection via branch and bound."""
    return _BranchAndBound(problem, weights).solve()
