"""The collective, probabilistic mapping selector — the paper's method.

The discrete objective F(M) of :mod:`repro.selection.objective` is relaxed
into a hinge-loss MRF (the PSL MAP problem) over soft variables:

* ``in(theta)`` in [0,1] — degree of membership of candidate theta in M;
* ``explained(t)`` in [0,1] — degree to which example fact t is explained.

Model (per Section V of the paper, arithmetic-rule formulation):

====================  =====================================================
coverage reward       ``w_expl * max(0, 1 - explained(t))`` for each t in J
support cap (hard)    ``explained(t) <= sum_theta covers(theta,t)*in(theta)``
error penalty         ``w_err * in(theta)`` per error fact theta creates
size prior            ``w_size * size(theta) * in(theta)``
====================  =====================================================

All terms are jointly minimized by consensus ADMM — the *collective* part:
candidates compete and cooperate through the shared ``explained`` atoms
rather than being scored independently.  The fractional MAP state is then
rounded (threshold sweep + 1-flip local search, both scored by the exact
discrete F) into the final selection.

Error facts shared by several candidates (possible for full tgds that
produce identical ground facts) are mediated through an auxiliary
``errorOf(t)`` variable so each error is paid once, matching the
``sum over K_C - J`` of the objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.datamodel.instance import Fact
from repro.psl.admm import AdmmSettings
from repro.psl.program import PslProgram
from repro.psl.rounding import round_solution
from repro.selection.exact import SelectionResult
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    ObjectiveWeights,
    objective_value,
)


@dataclass
class CollectiveSettings:
    """Knobs of the collective selector."""

    weights: ObjectiveWeights = DEFAULT_WEIGHTS
    admm: AdmmSettings = field(default_factory=AdmmSettings)
    squared_hinges: bool = False
    rounding_local_search: bool = True


@dataclass(frozen=True)
class CollectiveResult(SelectionResult):
    """Selection plus the relaxation's fractional state and diagnostics."""

    fractional: dict[int, float] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True
    num_potentials: int = 0
    num_constraints: int = 0


def build_program(
    problem: SelectionProblem,
    settings: CollectiveSettings,
) -> tuple[PslProgram, dict[int, object]]:
    """Compile the selection problem into a PSL program.

    Returns the program and the map from candidate index to its ``in``
    atom, so callers can read the fractional memberships back.
    """
    weights = settings.weights
    program = PslProgram()
    in_map = program.predicate("inMap", 1, closed=False)
    explained = program.predicate("explained", 1, closed=False)
    error_of = program.predicate("errorOf", 1, closed=False)

    in_atoms = {i: in_map(i) for i in range(problem.num_candidates)}
    for atom in in_atoms.values():
        program.target(atom)

    squared = settings.squared_hinges

    # Coverage: reward explained(t), capped by the selected covering mass.
    coverers: dict[Fact, list[tuple[int, Fraction]]] = {}
    for i, table in enumerate(problem.covers):
        for t, degree in table.items():
            coverers.setdefault(t, []).append((i, degree))
    for t_idx, t in enumerate(problem.j_facts):
        support = coverers.get(t)
        if not support:
            continue  # certain unexplained: constant w_expl, excluded from the MRF
        atom = explained(t_idx)
        program.target(atom)
        program.add_raw_potential(
            {atom: -1.0}, 1.0, float(weights.explains), squared
        )
        cap = {atom: 1.0}
        for i, degree in support:
            cap[in_atoms[i]] = -float(degree)
        program.add_linear_constraint(cap, 0.0)

    # Errors: one unit per distinct error fact, paid once even when shared.
    owners: dict[Fact, list[int]] = {}
    for i, facts in enumerate(problem.error_facts):
        for f in facts:
            owners.setdefault(f, []).append(i)
    private_error_counts = [0] * problem.num_candidates
    for e_idx, (f, who) in enumerate(sorted(owners.items(), key=lambda kv: repr(kv[0]))):
        if len(who) == 1:
            private_error_counts[who[0]] += 1
        else:
            atom = error_of(e_idx)
            program.target(atom)
            program.add_raw_potential({atom: 1.0}, 0.0, float(weights.errors), squared)
            for i in who:
                program.add_linear_constraint({in_atoms[i]: 1.0, atom: -1.0}, 0.0)

    # Per-candidate priors: private errors + size.
    for i in range(problem.num_candidates):
        penalty = float(
            weights.errors * private_error_counts[i]
            + weights.size * problem.sizes[i]
        )
        if penalty > 0:
            program.add_raw_potential({in_atoms[i]: 1.0}, 0.0, penalty, squared)

    return program, in_atoms


def solve_collective(
    problem: SelectionProblem,
    settings: CollectiveSettings | None = None,
) -> CollectiveResult:
    """Run the paper's pipeline: relax, infer with ADMM, round, score."""
    settings = settings or CollectiveSettings()
    program, in_atoms = build_program(problem, settings)
    inference = program.infer(settings.admm)

    fractional = {i: inference.truth(atom) for i, atom in in_atoms.items()}

    def discrete_objective(selected: frozenset) -> Fraction:
        return objective_value(problem, selected, settings.weights)

    selected = round_solution(
        fractional,
        discrete_objective,
        with_local_search=settings.rounding_local_search,
    )
    return CollectiveResult(
        selected=frozenset(selected),
        objective=discrete_objective(frozenset(selected)),
        fractional=fractional,
        iterations=inference.admm.iterations,
        converged=inference.converged,
        num_potentials=inference.num_potentials,
        num_constraints=inference.num_constraints,
    )
