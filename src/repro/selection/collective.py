"""The collective, probabilistic mapping selector — the paper's method.

The discrete objective F(M) of :mod:`repro.selection.objective` is relaxed
into a hinge-loss MRF (the PSL MAP problem) over soft variables:

* ``in(theta)`` in [0,1] — degree of membership of candidate theta in M;
* ``explained(t)`` in [0,1] — degree to which example fact t is explained.

Model (per Section V of the paper, arithmetic-rule formulation):

====================  =====================================================
coverage reward       ``w_expl * max(0, 1 - explained(t))`` for each t in J
support cap (hard)    ``explained(t) <= sum_theta covers(theta,t)*in(theta)``
error penalty         ``w_err * in(theta)`` per error fact theta creates
size prior            ``w_size * size(theta) * in(theta)``
====================  =====================================================

All terms are jointly minimized by consensus ADMM — the *collective* part:
candidates compete and cooperate through the shared ``explained`` atoms
rather than being scored independently.  The fractional MAP state is then
rounded (threshold sweep + 1-flip local search, both scored by the exact
discrete F) into the final selection.

Error facts shared by several candidates (possible for full tgds that
produce identical ground facts) are mediated through an auxiliary
``errorOf(t)`` variable so each error is paid once, matching the
``sum over K_C - J`` of the objective.

**Sharded grounding.**  The HL-MRF is compiled straight from the
:class:`~repro.selection.metrics.SelectionProblem` in executor-mapped
shards (:mod:`repro.psl.sharding`): coverage shards over slices of
``j_facts``, error shards over slices of the shared-error owner groups,
prior shards over slices of the candidate list.  Each shard is a small
picklable spec carrying only its slice of the tables, so the peak
working set of a build is O(largest shard) — the serial path streams
merges one shard at a time, and the process pool's map keeps only a
bounded window of results in flight — and the deterministic merge
reproduces the serial compilation byte for byte under any
:class:`~repro.executors.MapExecutor` and any shard size.  The shard
boundaries survive into the merged MRF as term-block extents, which the
partitioned ADMM solver (:mod:`repro.psl.partition`) reuses as its
default solve partition.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

import numpy as np

from repro.errors import InferenceError

from repro.datamodel.instance import Fact
from repro.executors import MapExecutor
from repro.psl.admm import AdmmSettings, AdmmSolver, AdmmWarmState
from repro.psl.delta import (
    ShardRecord,
    SpliceStats,
    match_shards,
    record_for,
    shard_key,
    splice_grounding,
)
from repro.psl.hlmrf import KIND_EQ, KIND_HINGE, KIND_SQUARED, HingeLossMRF
from repro.psl.partition import compile_term_arrays
from repro.psl.predicate import GroundAtom, Predicate
from repro.psl.program import PslProgram
from repro.psl.rounding import round_solution
from repro.psl.sharding import (
    GroundingShard,
    GroundingStats,
    ShardResult,
    TermBlockBuilder,
    ground_shards,
    iter_slices,
)
from repro.psl.store import GroundingStore, StoredGrounding
from repro.selection.exact import SelectionResult
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    ObjectiveWeights,
    objective_value,
)

#: The model's predicates.  Module-level so shard work units can rebuild
#: atom keys in worker processes that compare equal to the driver's.
IN_PREDICATE = Predicate("inMap", 1, closed=False)
EXPLAINED_PREDICATE = Predicate("explained", 1, closed=False)
ERROR_PREDICATE = Predicate("errorOf", 1, closed=False)

#: Origin-group keys of the model's weighted objective components.  Every
#: potential the shards emit is tagged with one of these, so a grounded
#: MRF can be *reweighted* in place — per-term weights recomputed from a
#: new :class:`~repro.selection.objective.ObjectiveWeights` — instead of
#: re-ground.  Coverage and error-mediator terms scale uniformly with
#: their component weight; prior terms are per-candidate linear
#: combinations (``w_err * private_errors + w_size * size``) and go
#: through the per-member weight API.
GROUP_EXPLAINS = "explains"
GROUP_ERRORS = "errors"
GROUP_PRIOR = "prior"


@dataclass
class CollectiveSettings:
    """Knobs of the collective selector.

    ``ground_executor``/``ground_shard_size`` select where and how finely
    the HL-MRF grounding shards run (``None`` → serial, default shard
    size).  The solve-side twins live on ``admm``:
    :attr:`~repro.psl.admm.AdmmSettings.executor` maps the partitioned
    ADMM block updates, and
    :attr:`~repro.psl.admm.AdmmSettings.block_size` re-chunks the term
    partition (by default the solver inherits the grounding shard
    structure the MRF records).  Use string specs (``"process:4"``) when
    the settings object itself must stay picklable, e.g. inside engine
    work units.
    """

    weights: ObjectiveWeights = DEFAULT_WEIGHTS
    admm: AdmmSettings = field(default_factory=AdmmSettings)
    squared_hinges: bool = False
    rounding_local_search: bool = True
    ground_executor: MapExecutor | str | None = None
    ground_shard_size: int | None = None
    #: Reuse a per-process :class:`GroundedCollective` across solves of
    #: the same problem structure: weight-only changes reweight the
    #: cached MRF in place and re-solve on its compiled ADMM partition
    #: instead of re-grounding (results are bit-identical to the
    #: re-grounding path).  Set False to force a fresh ground per call.
    reuse_grounding: bool = True
    #: Root directory of a cross-process disk
    #: :class:`~repro.psl.store.GroundingStore` (``None`` → off).  With a
    #: store set, an in-process cache miss first tries to *attach* a
    #: spilled grounding of the same structure (mmap + reweight — see
    #: :func:`collective_structure_key`), and a fresh ground is spilled
    #: for the next process lifetime.  A plain string so settings stay
    #: picklable inside engine work units.
    grounding_store: str | None = None
    #: Incremental (delta) grounding: when a problem carries a
    #: :class:`~repro.selection.metrics.ProblemLineage` naming a parent
    #: revision whose artifact is cached, a cache miss first tries to
    #: *patch* the parent's compiled structure — re-ground only the
    #: shards the edit touched, splice the rest
    #: (:func:`patch_collective`) — before the disk-attach and
    #: fresh-ground tiers.  Patched artifacts are bit-identical to a
    #: fresh ground; set False to force the old full-re-ground behaviour.
    incremental: bool = True


@dataclass(frozen=True)
class CollectiveResult(SelectionResult):
    """Selection plus the relaxation's fractional state and diagnostics.

    ``fractional`` holds the ``in`` memberships by candidate index;
    ``fractional_aux`` the ``explained``/``errorOf`` atom values keyed by
    ``(predicate name, index)`` — the payload that lets warm starts seed
    *all* atoms of the next solve, not just the memberships.
    """

    fractional: dict[int, float] = field(default_factory=dict)
    fractional_aux: dict[tuple[str, int], float] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True
    num_potentials: int = 0
    num_constraints: int = 0
    admm_state: AdmmWarmState | None = None
    grounding: GroundingStats | None = None


# -- shard work units ---------------------------------------------------------


@dataclass(frozen=True)
class CoverageShard:
    """Coverage terms for a slice of J's facts.

    Per entry ``(t_idx, ((candidate, degree), ...))``: the reward
    potential ``w_expl * max(0, 1 - explained(t))`` and the hard support
    cap ``explained(t) <= sum covers(theta,t) * in(theta)``.
    """

    order: int
    entries: tuple[tuple[int, tuple[tuple[int, float], ...]], ...]
    weight: float
    squared: bool

    def build(self) -> ShardResult:
        builder = TermBlockBuilder()
        for t_idx, support in self.entries:
            atom = GroundAtom(EXPLAINED_PREDICATE, (t_idx,))
            builder.add_potential(
                [(atom, -1.0)], 1.0, self.weight, self.squared, group=GROUP_EXPLAINS
            )
            cap = [(atom, 1.0)]
            for i, degree in support:
                cap.append((GroundAtom(IN_PREDICATE, (i,)), -degree))
            builder.add_constraint(cap, 0.0)
        atoms, block = builder.finish()
        return ShardResult(self.order, atoms, block)

    def content_key(self) -> tuple:
        """Order- and weight-magnitude-independent identity for splicing.

        Weight *magnitude* is excluded — a patched artifact has its
        group weights rewritten at splice time — but the zero flag is
        structural (zero-weight potentials are dropped at grounding), so
        it stays in the key.
        """
        return ("cov", self.entries, self.squared, self.weight == 0)


@dataclass(frozen=True)
class ErrorShard:
    """Shared-error mediator terms for a slice of the owner groups.

    Per entry ``(e_idx, (owners...))``: the penalty potential
    ``w_err * errorOf(e)`` plus one cap ``in(theta) <= errorOf(e)`` per
    owner, so the error is paid once however many owners are selected.
    """

    order: int
    entries: tuple[tuple[int, tuple[int, ...]], ...]
    weight: float
    squared: bool

    def build(self) -> ShardResult:
        builder = TermBlockBuilder()
        for e_idx, owners in self.entries:
            atom = GroundAtom(ERROR_PREDICATE, (e_idx,))
            builder.add_potential(
                [(atom, 1.0)], 0.0, self.weight, self.squared, group=GROUP_ERRORS
            )
            for i in owners:
                builder.add_constraint(
                    [(GroundAtom(IN_PREDICATE, (i,)), 1.0), (atom, -1.0)], 0.0
                )
        atoms, block = builder.finish()
        return ShardResult(self.order, atoms, block)

    def content_key(self) -> tuple:
        """See :meth:`CoverageShard.content_key` — same weight treatment."""
        return ("err", self.entries, self.squared, self.weight == 0)


@dataclass(frozen=True)
class PriorShard:
    """Per-candidate prior potentials for a slice of the candidate list.

    Per entry ``(candidate, penalty)``: the folded private-error + size
    prior ``penalty * in(theta)``.
    """

    order: int
    entries: tuple[tuple[int, float], ...]
    squared: bool

    def build(self) -> ShardResult:
        builder = TermBlockBuilder()
        for i, penalty in self.entries:
            builder.add_potential(
                [(GroundAtom(IN_PREDICATE, (i,)), 1.0)],
                0.0,
                penalty,
                self.squared,
                group=GROUP_PRIOR,
            )
        atoms, block = builder.finish()
        return ShardResult(self.order, atoms, block)

    def content_key(self) -> tuple:
        """Identity by candidate set only: per-candidate penalty
        *magnitudes* are rewritten at splice time through the
        ``member_weights`` channel (they are plain weight changes), but
        which candidates appear is structural."""
        return ("prior", tuple(i for i, _ in self.entries), self.squared)


# -- shard planning -----------------------------------------------------------


@dataclass
class CollectivePlan:
    """The deterministic compilation plan of one selection problem.

    ``targets`` pins the MRF's variable order (``in`` atoms by candidate
    index, then ``explained`` atoms in ``j_facts`` order, then
    ``errorOf`` atoms in sorted-owner-group order); ``shards`` hold the
    work, each spec carrying only its slice of the problem's tables.

    ``prior_components`` records every candidate's raw prior features
    ``(candidate, private error count, size)`` and ``prior_included``
    the candidates whose folded penalty was positive at the planning
    weights (only those became potentials — zero-weight terms are
    dropped at grounding time).  Together they let a grounded MRF be
    *reweighted* for a new :class:`ObjectiveWeights` without
    re-planning: new per-candidate penalties are recomputed from the
    components, and the included set doubles as the zero-pattern guard
    (a penalty crossing zero means the structure itself would change,
    so reweighting must fall back to a fresh ground).
    """

    in_atoms: dict[int, GroundAtom]
    explained_atoms: dict[int, GroundAtom]
    error_atoms: dict[int, GroundAtom]
    targets: tuple[GroundAtom, ...]
    shards: tuple[GroundingShard, ...]
    prior_components: tuple[tuple[int, int, int], ...] = ()
    prior_included: tuple[int, ...] = ()


def plan_collective_grounding(
    problem: SelectionProblem,
    settings: CollectiveSettings | None = None,
    shard_size: int | None = None,
) -> CollectivePlan:
    """Compile *problem* into shard specs (no term is materialized yet).

    The plan's shard order — coverage slices in ``j_facts`` order, then
    error slices over the repr-sorted shared-error groups, then prior
    slices in candidate order — reproduces the potential/constraint
    order of the serial :func:`build_program` + ``ground()`` path, which
    is what makes the merged MRF fingerprint-identical to it.
    """
    settings = settings or CollectiveSettings()
    weights = settings.weights
    squared = settings.squared_hinges

    in_atoms = {
        i: GroundAtom(IN_PREDICATE, (i,)) for i in range(problem.num_candidates)
    }

    # Coverage: one entry per J fact some candidate covers (facts nobody
    # covers are certain-unexplained constants, excluded from the MRF).
    coverers: dict[Fact, list[tuple[int, Fraction]]] = {}
    for i, table in enumerate(problem.covers):
        for t, degree in table.items():
            coverers.setdefault(t, []).append((i, degree))
    coverage_entries: list[tuple[int, tuple[tuple[int, float], ...]]] = []
    explained_atoms: dict[int, GroundAtom] = {}
    for t_idx, t in enumerate(problem.j_facts):
        support = coverers.get(t)
        if not support:
            continue
        explained_atoms[t_idx] = GroundAtom(EXPLAINED_PREDICATE, (t_idx,))
        coverage_entries.append(
            (t_idx, tuple((i, float(degree)) for i, degree in support))
        )

    # Errors: shared facts get a mediator variable; private ones fold
    # into the per-candidate prior below.
    owners: dict[Fact, list[int]] = {}
    for i, facts in enumerate(problem.error_facts):
        for f in facts:
            owners.setdefault(f, []).append(i)
    private_error_counts = [0] * problem.num_candidates
    error_entries: list[tuple[int, tuple[int, ...]]] = []
    error_atoms: dict[int, GroundAtom] = {}
    for e_idx, (f, who) in enumerate(sorted(owners.items(), key=lambda kv: repr(kv[0]))):
        if len(who) == 1:
            private_error_counts[who[0]] += 1
        else:
            error_atoms[e_idx] = GroundAtom(ERROR_PREDICATE, (e_idx,))
            error_entries.append((e_idx, tuple(who)))

    # Per-candidate priors: private errors + size, folded into one term.
    prior_components = tuple(
        (i, private_error_counts[i], int(problem.sizes[i]))
        for i in range(problem.num_candidates)
    )
    prior_entries: list[tuple[int, float]] = []
    for i, private, size in prior_components:
        penalty = float(weights.errors * private + weights.size * size)
        if penalty > 0:
            prior_entries.append((i, penalty))

    shards: list[GroundingShard] = []
    for lo, hi in iter_slices(len(coverage_entries), shard_size):
        shards.append(
            CoverageShard(
                len(shards),
                tuple(coverage_entries[lo:hi]),
                float(weights.explains),
                squared,
            )
        )
    for lo, hi in iter_slices(len(error_entries), shard_size):
        shards.append(
            ErrorShard(
                len(shards), tuple(error_entries[lo:hi]), float(weights.errors), squared
            )
        )
    for lo, hi in iter_slices(len(prior_entries), shard_size):
        shards.append(PriorShard(len(shards), tuple(prior_entries[lo:hi]), squared))

    targets = (
        *(in_atoms[i] for i in range(problem.num_candidates)),
        *explained_atoms.values(),
        *error_atoms.values(),
    )
    return CollectivePlan(
        in_atoms=in_atoms,
        explained_atoms=explained_atoms,
        error_atoms=error_atoms,
        targets=targets,
        shards=tuple(shards),
        prior_components=prior_components,
        prior_included=tuple(i for i, _ in prior_entries),
    )


def ground_collective(
    problem: SelectionProblem,
    settings: CollectiveSettings | None = None,
    executor: MapExecutor | str | None = None,
    shard_size: int | None = None,
    records_out: list[ShardRecord] | None = None,
) -> tuple[HingeLossMRF, CollectivePlan, GroundingStats]:
    """Ground *problem*'s HL-MRF through executor-mapped shards.

    *executor*/*shard_size* default to the settings' values.  The result
    is fingerprint-identical to the serial ``build_program(...)[0]
    .ground()`` path for any executor and any shard size.

    When *records_out* is a list, one :class:`~repro.psl.delta.
    ShardRecord` per shard is appended in merge (spec) order — the
    per-shard index incremental patching needs to splice unchanged
    shards out of this MRF later.
    """
    settings = settings or CollectiveSettings()
    if executor is None:
        executor = settings.ground_executor
    if shard_size is None:
        shard_size = settings.ground_shard_size
    plan = plan_collective_grounding(problem, settings, shard_size)
    mrf = HingeLossMRF()
    for atom in plan.targets:
        mrf.variable_index(atom)
    observer = None
    if records_out is not None:
        observer = lambda result: records_out.append(
            record_for(plan.shards[result.order], result)
        )
    mrf, stats = ground_shards(plan.shards, executor=executor, mrf=mrf, observer=observer)
    return mrf, plan, stats


def collective_structure_key(
    problem: SelectionProblem,
    settings: CollectiveSettings,
) -> str:
    """The content address of *problem*'s ground structure in a disk store.

    Two ``(problem, settings)`` pairs share a key iff grounding them
    yields the same HL-MRF *structure* — at which point the stored entry
    serves both via attach + reweight.  The key therefore covers exactly
    the structure-determining inputs and nothing weight-magnitude
    dependent:

    * the coverage entries (fact index + per-candidate support degrees)
      and shared-error entries (fact index + owner group) — shard *size*
      deliberately excluded, since solves are bit-identical under any
      term partition;
    * the candidates whose folded prior penalty is positive at the
      requesting weights (``prior_included``) and the component
      zero-pattern flags: zero-weight potentials are dropped at
      grounding time, so a component or penalty crossing zero changes
      structure and must change the key;
    * the hinge form (``squared_hinges``) and the candidate count.

    Computed straight from the problem tables — **no shard planning** —
    because this key is the attach path's admission ticket: a process
    cold start pays it before anything else, so it must stay a small
    fraction of a fresh ground.  The entry encodings are packed into
    int64/float64 arrays and hashed in bulk; entry order is j-fact /
    candidate-index / repr-sorted-error-group order, a deterministic
    function of the problem and never set- or dict-arrival order, so
    equal structures always hash equally (content-addressing would
    silently break otherwise).  The derivation mirrors
    :func:`plan_collective_grounding` entry for entry — the two must
    never drift, or stored entries would attach to the wrong structure
    (the :meth:`GroundedCollective.can_reweight` guard and the store's
    fingerprint verification are the backstops).
    """
    weights = settings.weights
    h = hashlib.sha256()
    h.update(b"collective-structure-v2\0")
    h.update(
        struct.pack(
            "<????Q",
            bool(settings.squared_hinges),
            weights.explains == 0,
            weights.errors == 0,
            weights.size == 0,
            problem.num_candidates,
        )
    )

    # Coverage triples (t_idx, candidate, degree), ordered by fact then
    # candidate index — the same entries a CoverageShard would carry.
    # Cover-table keys are (in practice) the very j_fact objects, so an
    # id()-based position map avoids hashing every Fact's value tree; a
    # by-value map is built lazily for equal-but-distinct objects, and
    # both resolve to the same index, so the digest never depends on
    # which path found it.
    t_pos = {id(t): idx for idx, t in enumerate(problem.j_facts)}
    by_value: dict[Fact, int] | None = None
    sup_t: list[int] = []
    sup_i: list[int] = []
    sup_d: list[float] = []
    pos_get = t_pos.get
    push_t, push_i, push_d = sup_t.append, sup_i.append, sup_d.append
    for i, table in enumerate(problem.covers):
        for t, degree in table.items():
            idx = pos_get(id(t))
            if idx is None:
                if by_value is None:
                    by_value = {t: j for j, t in enumerate(problem.j_facts)}
                idx = by_value[t]
            push_t(idx)
            push_i(i)
            push_d(
                degree.numerator / degree.denominator
                if isinstance(degree, Fraction)
                else float(degree)
            )
    t_arr = np.asarray(sup_t, dtype=np.int64)
    i_arr = np.asarray(sup_i, dtype=np.int64)
    d_arr = np.asarray(sup_d, dtype=np.float64)
    order = np.lexsort((i_arr, t_arr))
    h.update(t_arr[order].tobytes())
    h.update(i_arr[order].tobytes())
    h.update(d_arr[order].tobytes())

    # Shared-error entries (e_idx, owners) in the planner's repr-sorted
    # group order; private errors only move the folded prior below.
    owners: dict[Fact, list[int]] = {}
    for i, facts in enumerate(problem.error_facts):
        for f in facts:
            owners.setdefault(f, []).append(i)
    private_error_counts = [0] * problem.num_candidates
    shared_enc: list[int] = []
    for e_idx, (f, who) in enumerate(sorted(owners.items(), key=lambda kv: repr(kv[0]))):
        if len(who) == 1:
            private_error_counts[who[0]] += 1
        else:
            shared_enc.extend((e_idx, len(who)))
            shared_enc.extend(who)
    h.update(np.asarray(shared_enc, dtype=np.int64).tobytes())

    # The prior inclusion pattern at the requesting weights, computed by
    # the exact planning-time expression (Fractions, then float > 0).
    included = [
        i
        for i in range(problem.num_candidates)
        if float(
            weights.errors * private_error_counts[i]
            + weights.size * int(problem.sizes[i])
        )
        > 0
    ]
    h.update(np.asarray(included, dtype=np.int64).tobytes())
    return h.hexdigest()


class GroundedCollective:
    """One selection problem's compiled HL-MRF, with mutable weights.

    The ground-once/reweight-many artifact of the collective selector:
    structure (variables, coefficients, constraints, shard partition) is
    fixed at construction; :meth:`reweight` rewrites the per-term
    weights in place for a new :class:`ObjectiveWeights` — coverage and
    error-mediator groups uniformly, per-candidate priors through the
    recorded plan components — and :attr:`solver` reuses one compiled
    ADMM partition (plus any shared-memory staging) across every
    reweighted solve.  A reweighted artifact is element-for-element
    identical to a fresh grounding at the new weights, so solves from it
    are bit-identical to the re-grounding path.

    :meth:`can_reweight` is the structure guard: weights whose zero
    pattern differs from the grounding weights' (a component switched
    on/off, a prior penalty crossing zero) would have produced a
    *different* structure, and must re-ground instead.
    """

    def __init__(
        self,
        problem: SelectionProblem,
        settings: CollectiveSettings | None = None,
        executor: MapExecutor | str | None = None,
        shard_size: int | None = None,
    ):
        settings = settings or CollectiveSettings()
        self.problem = problem
        self.squared = bool(settings.squared_hinges)
        records: list[ShardRecord] = []
        self.mrf, self.plan, self.stats = ground_collective(
            problem, settings, executor=executor, shard_size=shard_size,
            records_out=records,
        )
        #: Per-shard splice index (same order as ``plan.shards``), the
        #: input :func:`patch_collective` matches a successor problem's
        #: plan against.  ``None`` on attached artifacts until
        #: :meth:`_ensure_records` reconstructs it.
        self.records: tuple[ShardRecord, ...] | None = tuple(records)
        self.splice_stats: SpliceStats | None = None
        # Pre-compile the flat arrays while the ground is hot: the ADMM
        # partition wants them anyway, and a later patch slices straight
        # from them instead of recompiling the whole artifact first.
        if getattr(self.mrf, "_compiled", None) is None:
            self.mrf._compiled = compile_term_arrays(self.mrf)
        self.weights = settings.weights
        self._admm = settings.admm
        self._solver: AdmmSolver | None = None

    @classmethod
    def from_store(
        cls,
        problem: SelectionProblem,
        settings: CollectiveSettings,
        stored: StoredGrounding,
    ) -> GroundedCollective:
        """Attach a spilled grounding as a solve-ready artifact (no ground).

        *stored* must have been spilled under
        :func:`collective_structure_key` for a structure-equal
        ``(problem, settings)`` — the key guarantees the zero patterns
        agree, so the usual :meth:`reweight` to ``settings.weights``
        (the caller's next step) is exact.  No shard planning runs: the
        attach-side plan is reconstructed from the rebuilt MRF's
        variable registry (the atom dicts) and the entry's extra payload
        (the writer's :meth:`store_extra` — prior components/inclusion
        for the reweight guard), leaving ``shards`` empty since nothing
        will be ground.  ``weights`` starts as the *grounding-time*
        weights the writer recorded, keeping the :meth:`can_reweight`
        guard honest about what the stored term weights actually are.
        ``stats`` is ``None``: nothing was ground, so there are no
        grounding-pass peaks to report.  Raises
        :class:`~repro.errors.InferenceError` when the extra payload
        lacks the reweight registry (an entry spilled by something other
        than the collective disk tier) — callers fall back to a fresh
        ground.
        """
        extra = stored.extra if isinstance(stored.extra, dict) else {}
        try:
            prior_components = tuple(
                (int(i), int(private), int(size))
                for i, private, size in extra["prior_components"]
            )
            prior_included = tuple(int(i) for i in extra["prior_included"])
            grounding_weights = extra["weights"]
        except (KeyError, TypeError, ValueError):
            raise InferenceError(
                "stored grounding lacks the collective reweight registry "
                "(prior components / grounding weights); re-ground instead"
            ) from None
        mrf = stored.mrf
        in_atoms: dict[int, GroundAtom] = {}
        explained_atoms: dict[int, GroundAtom] = {}
        error_atoms: dict[int, GroundAtom] = {}
        tables = {
            IN_PREDICATE.name: in_atoms,
            EXPLAINED_PREDICATE.name: explained_atoms,
            ERROR_PREDICATE.name: error_atoms,
        }
        for atom in mrf.variables:
            table = tables.get(atom.predicate.name)
            if table is not None:
                table[atom.arguments[0]] = atom
        self = cls.__new__(cls)
        self.problem = problem
        self.squared = bool(settings.squared_hinges)
        self.mrf = mrf
        self.plan = CollectivePlan(
            in_atoms=in_atoms,
            explained_atoms=explained_atoms,
            error_atoms=error_atoms,
            targets=tuple(mrf.variables),
            shards=(),
            prior_components=prior_components,
            prior_included=prior_included,
        )
        self.stats = None
        self.records = None
        self.splice_stats = None
        self.weights = grounding_weights
        self._admm = settings.admm
        self._solver = None
        return self

    def store_extra(self) -> dict:
        """The extra payload a disk-store spill of this artifact needs.

        Everything :meth:`from_store` cannot recover from the flat
        arrays: the grounding-time weights (the :meth:`can_reweight`
        baseline) and the plan's prior components/inclusion (the
        per-candidate reweight registry).
        """
        return {
            "weights": self.weights,
            "prior_components": self.plan.prior_components,
            "prior_included": self.plan.prior_included,
        }

    def _ensure_records(self, shard_size: int | None) -> bool:
        """Make :attr:`records` available, reconstructing if attached.

        Freshly ground artifacts record their splice index at ground
        time; a disk-attached artifact has an MRF (with its per-shard
        ``_block_extents``) but no shard list.  Re-planning the problem
        at the *grounding-time* weights recovers the shard specs; each
        spec's expected potential/constraint counts are checked against
        the recorded extent, so a plan that drifted from the stored
        structure is detected and the patch declined (return ``False``
        → caller falls back) rather than splicing the wrong ranges.
        ``atoms`` is ``None`` on reconstructed records: every collective
        shard atom is a plan target, pre-interned before any merge.
        """
        if self.records is not None:
            return True
        mrf = self.mrf
        extents = getattr(mrf, "_block_extents", None)
        if not extents or mrf.constant_energy != 0.0:
            return False
        plan = plan_collective_grounding(
            self.problem,
            CollectiveSettings(weights=self.weights, squared_hinges=self.squared),
            shard_size,
        )
        if len(plan.shards) != len(extents):
            return False
        records: list[ShardRecord] = []
        for shard, (pot_lo, pot_hi, con_lo, con_hi) in zip(plan.shards, extents):
            if isinstance(shard, CoverageShard):
                expected_pot = 0 if shard.weight == 0 else len(shard.entries)
                expected_con = len(shard.entries)
                groups = ((GROUP_EXPLAINS, shard.weight == 0),)
            elif isinstance(shard, ErrorShard):
                expected_pot = 0 if shard.weight == 0 else len(shard.entries)
                expected_con = sum(len(owners) for _, owners in shard.entries)
                groups = ((GROUP_ERRORS, shard.weight == 0),)
            elif isinstance(shard, PriorShard):
                expected_pot = len(shard.entries)
                expected_con = 0
                groups = ((GROUP_PRIOR, False),)
            else:  # pragma: no cover - planner emits only the three kinds
                return False
            if pot_hi - pot_lo != expected_pot or con_hi - con_lo != expected_con:
                return False
            records.append(
                ShardRecord(key=shard_key(shard), atoms=None, observed_groups=groups)
            )
        self.records = tuple(records)
        return True

    @property
    def solver(self) -> AdmmSolver:
        """The artifact's persistent solver (partition compiled once)."""
        if self._solver is None:
            self._solver = AdmmSolver(self.mrf, self._admm)
        return self._solver

    def solver_for(self, admm: AdmmSettings | None) -> AdmmSolver:
        """The persistent solver, rebuilt only if *admm* settings differ."""
        admm = admm if admm is not None else AdmmSettings()
        if admm != self._admm:
            self.close()
            self._admm = admm
        return self.solver

    def _prior_penalty(self, weights: ObjectiveWeights, private: int, size: int) -> float:
        # Exactly the planning-time expression (exact Fractions, then
        # float) so a reweight reproduces a fresh plan bit for bit.
        return float(weights.errors * private + weights.size * size)

    def can_reweight(self, weights: ObjectiveWeights) -> bool:
        """Would *weights* ground to this very structure (zero patterns agree)?"""
        old = self.weights
        if (old.explains == 0) != (weights.explains == 0):
            return False
        if (old.errors == 0) != (weights.errors == 0):
            return False
        included = set(self.plan.prior_included)
        return all(
            (self._prior_penalty(weights, private, size) > 0) == (i in included)
            for i, private, size in self.plan.prior_components
        )

    def reweight(self, weights: ObjectiveWeights) -> None:
        """Rewrite the grounded term weights for *weights*, in place."""
        if not self.can_reweight(weights):
            raise InferenceError(
                "objective weights change the ground structure (a component "
                "or prior penalty crossed zero); re-ground instead"
            )
        self.mrf.set_group_weights(
            {
                GROUP_EXPLAINS: float(weights.explains),
                GROUP_ERRORS: float(weights.errors),
            }
        )
        included = set(self.plan.prior_included)
        self.mrf.set_group_potential_weights(
            GROUP_PRIOR,
            [
                self._prior_penalty(weights, private, size)
                for i, private, size in self.plan.prior_components
                if i in included
            ],
        )
        self.weights = weights

    def close(self) -> None:
        """Release solver-held resources (idempotent)."""
        solver, self._solver = self._solver, None
        if solver is not None:
            solver.close()


def patch_collective(
    cached: GroundedCollective,
    problem: SelectionProblem,
    settings: CollectiveSettings | None = None,
    executor: MapExecutor | str | None = None,
    shard_size: int | None = None,
) -> GroundedCollective | None:
    """Patch *cached* (a parent revision's artifact) into *problem*'s.

    The incremental tier of the collective path: plan the new problem,
    pair its shards against the cached per-shard records by content key
    (:func:`~repro.psl.delta.match_shards` — weight magnitudes are
    normalized out of the keys, so a reweighted parent still matches),
    re-ground only the unmatched shards, and splice.  The weight rewrite
    happens inside the splice — coverage/error groups uniformly, prior
    penalties per member — so the result lands directly at
    ``settings.weights`` and is **bit-identical** to a fresh ground of
    ``(problem, settings)``.

    Returns ``None`` when patching is not exact — hinge form changed,
    records unavailable, a zero pattern moved, the splice declined — in
    which case the caller grounds fresh.  Never returns a wrong
    artifact.
    """
    settings = settings or CollectiveSettings()
    if executor is None:
        executor = settings.ground_executor
    if shard_size is None:
        shard_size = settings.ground_shard_size
    if bool(settings.squared_hinges) != cached.squared:
        return None
    if not cached._ensure_records(shard_size):
        return None
    plan = plan_collective_grounding(problem, settings, shard_size)
    reuse = match_shards(cached.records, plan.shards)
    prior_penalties = [
        penalty
        for shard in plan.shards
        if isinstance(shard, PriorShard)
        for _, penalty in shard.entries
    ]
    weights = settings.weights
    result = splice_grounding(
        cached.mrf,
        cached.records,
        plan.shards,
        reuse,
        plan.targets,
        executor,
        group_weights={
            GROUP_EXPLAINS: float(weights.explains),
            GROUP_ERRORS: float(weights.errors),
        },
        member_weights={GROUP_PRIOR: prior_penalties},
    )
    if result is None:
        return None
    patched = GroundedCollective.__new__(GroundedCollective)
    patched.problem = problem
    patched.squared = cached.squared
    patched.mrf = result.mrf
    patched.plan = plan
    patched.stats = None
    patched.records = result.records
    patched.splice_stats = result.stats
    patched.weights = weights
    patched._admm = settings.admm
    patched._solver = None
    return patched


class CollectiveGroundingCache:
    """A small per-process LRU of :class:`GroundedCollective` artifacts.

    Keyed by problem identity plus the structure-affecting settings
    (squared hinges, grounding shard size) — *not* by weights: a hit
    whose weights differ only reweights the cached artifact in place.
    An in-memory miss falls through two tiers before grounding fresh,
    in order **patch > disk attach > fresh ground**:

    1. *Patch* (``settings.incremental``): when the problem carries a
       :class:`~repro.selection.metrics.ProblemLineage` whose parent
       revision is cached (tracked by lineage token), the parent's
       compiled structure is spliced into the new problem's — only the
       shards the edit touched re-ground (:func:`patch_collective`).
       Patched artifacts are also spilled to the disk store under the
       *new* structure key, so future process lifetimes attach them.
    2. *Disk attach* (``settings.grounding_store``): mmap a spilled
       grounding of the same content-addressed structure and reweight
       (see :meth:`_attach_or_ground`); fresh grounds are spilled for
       future process lifetimes.
    Entries whose zero pattern no longer matches are evicted and
    re-ground.  The thread id is part of the key so concurrent solves
    from different threads never share (and mid-solve reweight) one
    artifact; entries hold strong problem references, making identity
    keys collision-safe, and the LRU bound keeps the footprint at a few
    problems' worth of structure per process.

    Thread-safe: a lock guards the map itself, and LRU eviction only
    ``close()``\\ es entries the *evicting* thread owns (its own thread
    id in the key).  An evicted entry owned by another thread may still
    be mid-solve there, so its resources (shared-memory staging) are
    left to garbage collection — released when that thread drops its
    reference — instead of being unlinked out from under a running
    solve.
    """

    def __init__(self, capacity: int = 4):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, GroundedCollective] = OrderedDict()
        #: Lineage token -> cache key, per thread: the index the patch
        #: tier uses to find a *parent revision's* entry from a child
        #: problem's ``lineage.parent`` token.  Bounded FIFO; a stale
        #: mapping (entry evicted or replaced) is re-validated against
        #: the entry's own lineage before patching.
        self._token_keys: OrderedDict[tuple, tuple] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Disk-tier traffic (only moves when a grounding store is set):
        #: ``disk_hits`` counts in-memory misses served by attaching a
        #: spilled entry; ``disk_misses`` counts fresh grounds that were
        #: spilled for the next process lifetime.
        self.disk_hits = 0
        self.disk_misses = 0
        #: In-memory misses served by the patch tier: the parent
        #: revision's artifact was spliced instead of re-grounding.
        self.patch_hits = 0

    #: Lineage-token index bound (entries are 2-tuples; tiny).
    TOKEN_KEY_LIMIT = 256

    def _remember_token(self, me: int, token: object, key: tuple) -> None:
        # Caller holds the lock.  Most-recent mapping wins.
        tk = (me, token)
        self._token_keys.pop(tk, None)
        self._token_keys[tk] = key
        while len(self._token_keys) > self.TOKEN_KEY_LIMIT:
            self._token_keys.popitem(last=False)

    def grounded(
        self,
        problem: SelectionProblem,
        settings: CollectiveSettings | None = None,
        executor: MapExecutor | str | None = None,
        shard_size: int | None = None,
    ) -> GroundedCollective:
        """A reweighted cached artifact for *problem*, or a fresh ground."""
        settings = settings or CollectiveSettings()
        if executor is None:
            executor = settings.ground_executor
        if shard_size is None:
            shard_size = settings.ground_shard_size
        me = threading.get_ident()
        key = (me, id(problem), bool(settings.squared_hinges), shard_size)
        lineage = getattr(problem, "lineage", None)
        stale = None
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry.problem is problem
                and entry.can_reweight(settings.weights)
            ):
                self._entries.move_to_end(key)
                self.hits += 1
                if lineage is not None:
                    self._remember_token(me, lineage.token, key)
            else:
                if entry is not None:
                    stale = self._entries.pop(key)
                entry = None
        if stale is not None:
            stale.close()  # this thread owns the key, so nobody else solves on it
        if entry is not None:
            # Reweight outside the lock: the entry is thread-private (the
            # thread id is in its key), so no other thread can touch it.
            entry.reweight(settings.weights)
            return entry
        fresh = self._try_patch(problem, settings, executor, shard_size, me, lineage)
        patched = fresh is not None
        if fresh is None:
            fresh = self._attach_or_ground(problem, settings, executor, shard_size)
        evicted: list[tuple[tuple, GroundedCollective]] = []
        with self._lock:
            self.misses += 1
            if patched:
                self.patch_hits += 1
            self._entries[key] = fresh
            if lineage is not None:
                self._remember_token(me, lineage.token, key)
            while len(self._entries) > self.capacity:
                evicted.append(self._entries.popitem(last=False))
        for evicted_key, evicted_entry in evicted:
            if evicted_key[0] == me:
                evicted_entry.close()
            # Foreign-thread entries: leave release to GC (see class doc).
        return fresh

    def _try_patch(
        self,
        problem: SelectionProblem,
        settings: CollectiveSettings,
        executor: MapExecutor | str | None,
        shard_size: int | None,
        me: int,
        lineage,
    ) -> GroundedCollective | None:
        """The patch tier: splice a cached parent revision, or ``None``.

        Runs before the disk tier on every in-memory miss.  Applies only
        when incremental grounding is on and the problem's lineage names
        a parent whose artifact this thread still holds (looked up by
        lineage token, re-validated against the entry's own lineage so a
        stale token mapping can never patch from the wrong problem).
        On success the patched artifact is also spilled to the disk
        store under the **new** structure key — the next process
        lifetime attaches the patched structure directly.
        """
        if not settings.incremental or lineage is None or lineage.parent is None:
            return None
        with self._lock:
            parent_key = self._token_keys.get((me, lineage.parent))
            parent = (
                self._entries.get(parent_key) if parent_key is not None else None
            )
        if parent is None or parent_key[3] != shard_size:
            return None
        parent_lineage = getattr(parent.problem, "lineage", None)
        if parent_lineage is None or parent_lineage.token != lineage.parent:
            return None
        patched = patch_collective(
            parent, problem, settings, executor=executor, shard_size=shard_size
        )
        if patched is not None and settings.grounding_store:
            store = GroundingStore(settings.grounding_store)
            store.put(
                collective_structure_key(problem, settings),
                patched.mrf,
                extra=patched.store_extra(),
            )
        return patched

    def _attach_or_ground(
        self,
        problem: SelectionProblem,
        settings: CollectiveSettings,
        executor: MapExecutor | str | None,
        shard_size: int | None,
    ) -> GroundedCollective:
        """The disk tier below the in-memory LRU (runs outside the lock).

        With a grounding store configured, try to *attach* a spilled
        entry of the same structure (mmap + reweight — no grounding);
        on a store miss ground fresh and spill it so the next process
        lifetime attaches instead.  Store trouble of any kind (corrupt
        entry, version skew, unwritable directory, a stored zero-pattern
        that will not reweight) silently degrades to the fresh-ground
        path — persistence is an optimization, never load-bearing.
        """
        store = (
            GroundingStore(settings.grounding_store)
            if settings.grounding_store
            else None
        )
        key = None
        if store is not None:
            # No planning on this path: the key is computed straight
            # from the problem tables, and an attach reconstructs its
            # plan from the rebuilt MRF — a cold start pays mmap +
            # registry rebuild, never a re-ground's term construction.
            key = collective_structure_key(problem, settings)
            stored = store.load(key)
            if stored is not None:
                try:
                    attached = GroundedCollective.from_store(
                        problem, settings, stored
                    )
                    attached.reweight(settings.weights)
                except InferenceError:
                    pass  # foreign/stale extra or zero-pattern skew: re-ground
                else:
                    self.disk_hits += 1
                    return attached
        fresh = GroundedCollective(  # ground outside the lock, it is slow
            problem, settings, executor=executor, shard_size=shard_size
        )
        if store is not None and key is not None:
            self.disk_misses += 1
            store.put(key, fresh.mrf, extra=fresh.store_extra())
        return fresh

    def clear(self) -> None:
        """Drop (and close) every cached artifact.

        Only call when no thread is solving on a cached artifact (e.g.
        test teardown); closing releases shared-memory staging.
        """
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._token_keys.clear()
            self.hits = self.misses = 0
            self.disk_hits = self.disk_misses = 0
            self.patch_hits = 0
        for entry in entries:
            entry.close()


#: Per-process artifact cache consumed by :func:`solve_collective` when
#: ``CollectiveSettings.reuse_grounding`` is on (the default).  Worker
#: processes get their own instance, like the engine's scenario cache.
GROUNDING_CACHE = CollectiveGroundingCache()


def build_program(
    problem: SelectionProblem,
    settings: CollectiveSettings,
) -> tuple[PslProgram, dict[int, object]]:
    """Compile the selection problem into a monolithic PSL program.

    The serial reference path: the same shard specs
    :func:`plan_collective_grounding` emits are expanded through the
    program's dict-based raw-potential API, so ``program.ground()``
    produces — by construction — the MRF the sharded merge must
    reproduce.  Returns the program and the map from candidate index to
    its ``in`` atom, so callers can read fractional memberships back.
    """
    plan = plan_collective_grounding(problem, settings, shard_size=None)
    program = PslProgram()
    for predicate in (IN_PREDICATE, EXPLAINED_PREDICATE, ERROR_PREDICATE):
        program.predicate(predicate.name, predicate.arity, predicate.closed)
    for atom in plan.targets:
        program.target(atom)
    for shard in plan.shards:
        result = shard.build()
        block = result.block
        for t in range(block.num_terms):
            lo, hi = block.term_ptr[t], block.term_ptr[t + 1]
            coefficients = {
                result.atoms[block.atom_index[k]]: float(block.coefficient[k])
                for k in range(lo, hi)
            }
            kind = int(block.kinds[t])
            if kind in (KIND_HINGE, KIND_SQUARED):
                program.add_raw_potential(
                    coefficients, float(block.offsets[t]), float(block.weights[t]),
                    kind == KIND_SQUARED,
                )
            else:
                program.add_linear_constraint(
                    coefficients, float(block.offsets[t]), kind == KIND_EQ
                )
    return program, dict(plan.in_atoms)


def solve_collective(
    problem: SelectionProblem,
    settings: CollectiveSettings | None = None,
    warm_start: Mapping[int, float] | None = None,
    warm_state: AdmmWarmState | None = None,
    warm_start_aux: Mapping[tuple[str, int], float] | None = None,
    ground_executor: MapExecutor | str | None = None,
    ground_shard_size: int | None = None,
    grounded: GroundedCollective | None = None,
) -> CollectiveResult:
    """Run the paper's pipeline: relax, infer with ADMM, round, score.

    Grounding runs through :func:`ground_collective` — sharded, on
    *ground_executor* (default: the settings' executor, serial if unset)
    — so huge problems never materialize a monolithic dict-based program.
    With ``settings.reuse_grounding`` (the default) the grounding is
    served from the per-process :data:`GROUNDING_CACHE`: a repeated
    solve of the same problem structure (e.g. the cells of a
    weight-sweep lane) only *reweights* the cached
    :class:`GroundedCollective` and re-solves on its compiled ADMM
    partition — bit-identical to re-grounding, minus the grounding.
    Pass *grounded* to manage the artifact explicitly (it is reweighted
    to ``settings.weights`` first).

    *warm_start* maps candidate indices to fractional memberships from a
    previous solve (e.g. the neighbouring point of a parameter sweep);
    *warm_start_aux* seeds the auxiliary ``explained``/``errorOf`` atoms
    by ``(predicate name, index)`` the same way.  The ADMM consensus
    vector starts from those values instead of 0.5.  *warm_state*
    restores the previous solve's full ADMM state (consensus + duals)
    and is what actually cuts iterations when the grounding structure is
    unchanged, e.g. across weight-only re-solves; it is ignored (shape
    check) when the structure differs.  The relaxation is convex, so
    *converged* solves reach the same optimum from any start; if ADMM
    exits at the iteration cap the truncated iterate does depend on the
    start (check ``CollectiveResult.converged``).  Indices unknown to
    this problem are ignored.
    """
    settings = settings or CollectiveSettings()
    if grounded is None and settings.reuse_grounding:
        grounded = GROUNDING_CACHE.grounded(
            problem, settings, executor=ground_executor, shard_size=ground_shard_size
        )
    elif grounded is not None:
        grounded.reweight(settings.weights)
    if grounded is not None:
        mrf, plan, stats = grounded.mrf, grounded.plan, grounded.stats
        solver = grounded.solver_for(settings.admm)
    else:
        mrf, plan, stats = ground_collective(
            problem, settings, executor=ground_executor, shard_size=ground_shard_size
        )
        solver = AdmmSolver(mrf, settings.admm)

    start = None
    if warm_start or warm_start_aux:
        start = np.full(mrf.num_variables, 0.5)
        for i, value in (warm_start or {}).items():
            atom = plan.in_atoms.get(i)
            if atom is not None:
                start[mrf.index_of(atom)] = float(value)
        aux_tables = {
            EXPLAINED_PREDICATE.name: plan.explained_atoms,
            ERROR_PREDICATE.name: plan.error_atoms,
        }
        for (kind, idx), value in (warm_start_aux or {}).items():
            atom = aux_tables.get(kind, {}).get(idx)
            if atom is not None:
                start[mrf.index_of(atom)] = float(value)

    inference = solver.solve(start, warm_state=warm_state)
    x = inference.x
    fractional = {
        i: float(x[mrf.index_of(atom)]) for i, atom in plan.in_atoms.items()
    }
    fractional_aux = {
        (EXPLAINED_PREDICATE.name, t): float(x[mrf.index_of(atom)])
        for t, atom in plan.explained_atoms.items()
    }
    fractional_aux.update(
        {
            (ERROR_PREDICATE.name, e): float(x[mrf.index_of(atom)])
            for e, atom in plan.error_atoms.items()
        }
    )

    def discrete_objective(selected: frozenset) -> Fraction:
        return objective_value(problem, selected, settings.weights)

    selected = round_solution(
        fractional,
        discrete_objective,
        with_local_search=settings.rounding_local_search,
    )
    return CollectiveResult(
        selected=frozenset(selected),
        objective=discrete_objective(frozenset(selected)),
        fractional=fractional,
        fractional_aux=fractional_aux,
        iterations=inference.iterations,
        converged=inference.converged,
        num_potentials=len(mrf.potentials),
        num_constraints=len(mrf.constraints),
        admm_state=inference.state,
        grounding=stats,
    )


@dataclass(frozen=True)
class CollectiveWarmPayload:
    """A picklable warm-start baton: one lane step's chained state.

    Exactly what :class:`WarmStartedCollective` carries between calls —
    the fractional ``in`` memberships, the auxiliary
    ``explained``/``errorOf`` values, and the full ADMM state — packaged
    so it can ride inside a sweep work unit to a worker process.  The
    engine's process-pool path ships the previous cell's payload forward
    through each lane (see ``EvaluationEngine``), which is what lets
    process grids warm-start exactly like serial ones.
    """

    fractional: tuple[tuple[int, float], ...]
    aux: tuple[tuple[tuple[str, int], float], ...]
    state: AdmmWarmState | None


class WarmStartedCollective:
    """A collective solver that chains warm starts across successive calls.

    Re-solving the HL-MRF at every point of a sweep (noise levels, weight
    settings) wastes the fact that neighbouring points have near-identical
    optima.  This callable keeps the previous call's fractional state —
    the ``in`` memberships *and* the auxiliary ``explained``/``errorOf``
    atom values — plus its full ADMM state (consensus + duals) and feeds
    all of it to :func:`solve_collective` — the standard warm-start trick
    of the surrogate-optimization literature applied across sweep points.
    When the grounding structure is unchanged (weight-only re-solves)
    the dual state is restored and the solver converges in a handful of
    iterations; when it differs (noise changed the example) the solver
    falls back to the fractional start, now covering every atom whose
    positional key still exists rather than only the memberships.
    Candidate and fact indices carry over positionally, so chaining is
    most effective when successive problems share their candidate grid.

    Only *converged* solves are chained: a solve truncated at the
    iteration cap yields a start-dependent iterate, and feeding it
    forward could make warm-started sweeps diverge from cold ones.  After
    an unconverged solve the chain resets and the next call starts cold.

    Instances satisfy the harness ``Solver`` protocol; each engine sweep
    lane gets its own instance, so there is no cross-talk between seeds.
    In serial grids the instance simply lives across a lane's cells; in
    process grids each cell reconstructs one from the previous cell's
    :attr:`payload` shipped inside the work unit — the two are
    equivalent because the payload is the chained state, verbatim.
    """

    def __init__(
        self,
        settings: CollectiveSettings | None = None,
        payload: CollectiveWarmPayload | None = None,
    ):
        self._settings = settings
        self._previous: dict[int, float] | None = None
        self._previous_aux: dict[tuple[str, int], float] | None = None
        self._previous_state: AdmmWarmState | None = None
        if payload is not None:
            self._previous = dict(payload.fractional)
            self._previous_aux = dict(payload.aux)
            self._previous_state = payload.state

    @property
    def payload(self) -> CollectiveWarmPayload | None:
        """The chained state as a shippable baton (None when cold)."""
        if self._previous is None:
            return None
        return CollectiveWarmPayload(
            fractional=tuple(self._previous.items()),
            aux=tuple((self._previous_aux or {}).items()),
            state=self._previous_state,
        )

    def __call__(self, problem: SelectionProblem) -> CollectiveResult:
        result = solve_collective(
            problem,
            self._settings,
            warm_start=self._previous,
            warm_state=self._previous_state,
            warm_start_aux=self._previous_aux,
        )
        if result.converged:
            self._previous = dict(result.fractional)
            self._previous_aux = dict(result.fractional_aux)
            self._previous_state = result.admm_state
        else:
            self.reset()
        return result

    def reset(self) -> None:
        """Forget the chained state (start the next call cold)."""
        self._previous = None
        self._previous_aux = None
        self._previous_state = None
