"""The collective, probabilistic mapping selector — the paper's method.

The discrete objective F(M) of :mod:`repro.selection.objective` is relaxed
into a hinge-loss MRF (the PSL MAP problem) over soft variables:

* ``in(theta)`` in [0,1] — degree of membership of candidate theta in M;
* ``explained(t)`` in [0,1] — degree to which example fact t is explained.

Model (per Section V of the paper, arithmetic-rule formulation):

====================  =====================================================
coverage reward       ``w_expl * max(0, 1 - explained(t))`` for each t in J
support cap (hard)    ``explained(t) <= sum_theta covers(theta,t)*in(theta)``
error penalty         ``w_err * in(theta)`` per error fact theta creates
size prior            ``w_size * size(theta) * in(theta)``
====================  =====================================================

All terms are jointly minimized by consensus ADMM — the *collective* part:
candidates compete and cooperate through the shared ``explained`` atoms
rather than being scored independently.  The fractional MAP state is then
rounded (threshold sweep + 1-flip local search, both scored by the exact
discrete F) into the final selection.

Error facts shared by several candidates (possible for full tgds that
produce identical ground facts) are mediated through an auxiliary
``errorOf(t)`` variable so each error is paid once, matching the
``sum over K_C - J`` of the objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.datamodel.instance import Fact
from repro.psl.admm import AdmmSettings, AdmmWarmState
from repro.psl.program import PslProgram
from repro.psl.rounding import round_solution
from repro.selection.exact import SelectionResult
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    ObjectiveWeights,
    objective_value,
)


@dataclass
class CollectiveSettings:
    """Knobs of the collective selector."""

    weights: ObjectiveWeights = DEFAULT_WEIGHTS
    admm: AdmmSettings = field(default_factory=AdmmSettings)
    squared_hinges: bool = False
    rounding_local_search: bool = True


@dataclass(frozen=True)
class CollectiveResult(SelectionResult):
    """Selection plus the relaxation's fractional state and diagnostics."""

    fractional: dict[int, float] = field(default_factory=dict)
    iterations: int = 0
    converged: bool = True
    num_potentials: int = 0
    num_constraints: int = 0
    admm_state: AdmmWarmState | None = None


def build_program(
    problem: SelectionProblem,
    settings: CollectiveSettings,
) -> tuple[PslProgram, dict[int, object]]:
    """Compile the selection problem into a PSL program.

    Returns the program and the map from candidate index to its ``in``
    atom, so callers can read the fractional memberships back.
    """
    weights = settings.weights
    program = PslProgram()
    in_map = program.predicate("inMap", 1, closed=False)
    explained = program.predicate("explained", 1, closed=False)
    error_of = program.predicate("errorOf", 1, closed=False)

    in_atoms = {i: in_map(i) for i in range(problem.num_candidates)}
    for atom in in_atoms.values():
        program.target(atom)

    squared = settings.squared_hinges

    # Coverage: reward explained(t), capped by the selected covering mass.
    coverers: dict[Fact, list[tuple[int, Fraction]]] = {}
    for i, table in enumerate(problem.covers):
        for t, degree in table.items():
            coverers.setdefault(t, []).append((i, degree))
    for t_idx, t in enumerate(problem.j_facts):
        support = coverers.get(t)
        if not support:
            continue  # certain unexplained: constant w_expl, excluded from the MRF
        atom = explained(t_idx)
        program.target(atom)
        program.add_raw_potential(
            {atom: -1.0}, 1.0, float(weights.explains), squared
        )
        cap = {atom: 1.0}
        for i, degree in support:
            cap[in_atoms[i]] = -float(degree)
        program.add_linear_constraint(cap, 0.0)

    # Errors: one unit per distinct error fact, paid once even when shared.
    owners: dict[Fact, list[int]] = {}
    for i, facts in enumerate(problem.error_facts):
        for f in facts:
            owners.setdefault(f, []).append(i)
    private_error_counts = [0] * problem.num_candidates
    for e_idx, (f, who) in enumerate(sorted(owners.items(), key=lambda kv: repr(kv[0]))):
        if len(who) == 1:
            private_error_counts[who[0]] += 1
        else:
            atom = error_of(e_idx)
            program.target(atom)
            program.add_raw_potential({atom: 1.0}, 0.0, float(weights.errors), squared)
            for i in who:
                program.add_linear_constraint({in_atoms[i]: 1.0, atom: -1.0}, 0.0)

    # Per-candidate priors: private errors + size.
    for i in range(problem.num_candidates):
        penalty = float(
            weights.errors * private_error_counts[i]
            + weights.size * problem.sizes[i]
        )
        if penalty > 0:
            program.add_raw_potential({in_atoms[i]: 1.0}, 0.0, penalty, squared)

    return program, in_atoms


def solve_collective(
    problem: SelectionProblem,
    settings: CollectiveSettings | None = None,
    warm_start: Mapping[int, float] | None = None,
    warm_state: AdmmWarmState | None = None,
) -> CollectiveResult:
    """Run the paper's pipeline: relax, infer with ADMM, round, score.

    *warm_start* maps candidate indices to fractional memberships from a
    previous solve (e.g. the neighbouring point of a parameter sweep); the
    ADMM consensus vector starts from those values instead of 0.5.
    *warm_state* restores the previous solve's full ADMM state (consensus
    + duals) and is what actually cuts iterations when the grounding
    structure is unchanged, e.g. across weight-only re-solves; it is
    ignored (shape check) when the structure differs.  The relaxation is
    convex, so *converged* solves reach the same optimum from any start;
    if ADMM exits at the iteration cap the truncated iterate does depend
    on the start (check ``CollectiveResult.converged``).  Indices unknown
    to this problem are ignored.
    """
    settings = settings or CollectiveSettings()
    program, in_atoms = build_program(problem, settings)
    start = None
    if warm_start:
        start = {
            in_atoms[i]: float(v) for i, v in warm_start.items() if i in in_atoms
        }
    inference = program.infer(settings.admm, warm_start=start, warm_state=warm_state)

    fractional = {i: inference.truth(atom) for i, atom in in_atoms.items()}

    def discrete_objective(selected: frozenset) -> Fraction:
        return objective_value(problem, selected, settings.weights)

    selected = round_solution(
        fractional,
        discrete_objective,
        with_local_search=settings.rounding_local_search,
    )
    return CollectiveResult(
        selected=frozenset(selected),
        objective=discrete_objective(frozenset(selected)),
        fractional=fractional,
        iterations=inference.admm.iterations,
        converged=inference.converged,
        num_potentials=inference.num_potentials,
        num_constraints=inference.num_constraints,
        admm_state=inference.admm.state,
    )


class WarmStartedCollective:
    """A collective solver that chains warm starts across successive calls.

    Re-solving the HL-MRF at every point of a sweep (noise levels, weight
    settings) wastes the fact that neighbouring points have near-identical
    optima.  This callable keeps the previous call's fractional ``in``
    memberships *and* its full ADMM state (consensus + duals) and feeds
    both to :func:`solve_collective` — the standard warm-start trick of
    the surrogate-optimization literature applied across sweep points.
    When the grounding structure is unchanged (weight-only re-solves)
    the dual state is restored and the solver converges in a handful of
    iterations; when it differs (noise changed the example) the solver
    falls back to the fractional-membership start.  Candidate indices
    carry over positionally, so chaining is most effective when
    successive problems share their candidate grid.

    Only *converged* solves are chained: a solve truncated at the
    iteration cap yields a start-dependent iterate, and feeding it
    forward could make warm-started sweeps diverge from cold ones.  After
    an unconverged solve the chain resets and the next call starts cold.

    Instances satisfy the harness ``Solver`` protocol; each engine sweep
    lane gets its own instance, so there is no cross-talk between seeds.
    """

    def __init__(self, settings: CollectiveSettings | None = None):
        self._settings = settings
        self._previous: dict[int, float] | None = None
        self._previous_state: AdmmWarmState | None = None

    def __call__(self, problem: SelectionProblem) -> CollectiveResult:
        result = solve_collective(
            problem,
            self._settings,
            warm_start=self._previous,
            warm_state=self._previous_state,
        )
        if result.converged:
            self._previous = dict(result.fractional)
            self._previous_state = result.admm_state
        else:
            self.reset()
        return result

    def reset(self) -> None:
        """Forget the chained state (start the next call cold)."""
        self._previous = None
        self._previous_state = None
