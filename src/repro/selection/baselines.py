"""Naive baselines: select everything, select nothing, coverage top-k.

These bracket the quality spectrum in the evaluation: *all candidates*
maximizes recall of the exchanged data but pays for every spurious
candidate the correspondence noise introduced, while *top-k by coverage*
ignores errors and size entirely.
"""

from __future__ import annotations

from repro.selection.exact import SelectionResult
from repro.selection.metrics import SelectionProblem
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    ObjectiveWeights,
    objective_value,
)


def select_all(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> SelectionResult:
    """The trivial baseline M = C."""
    selected = frozenset(range(problem.num_candidates))
    return SelectionResult(selected, objective_value(problem, selected, weights))


def select_none(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> SelectionResult:
    """The trivial baseline M = {} (the overfitting guard of the appendix)."""
    return SelectionResult(frozenset(), objective_value(problem, [], weights))


def solve_independent(
    problem: SelectionProblem,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> SelectionResult:
    """Per-candidate (non-collective) selection — the paper's strawman.

    Each candidate is scored in isolation: include theta iff
    ``F({theta}) < F({})``, i.e. its standalone coverage gain beats its
    own errors plus size.  Because candidates are judged independently,
    overlapping candidates double-count coverage they share — exactly the
    failure mode the *collective* formulation exists to avoid.  The
    returned objective is the true F of the resulting set.
    """
    baseline = objective_value(problem, [], weights)
    selected = frozenset(
        i
        for i in range(problem.num_candidates)
        if objective_value(problem, [i], weights) < baseline
    )
    return SelectionResult(selected, objective_value(problem, selected, weights))


def select_top_k_coverage(
    problem: SelectionProblem,
    k: int,
    weights: ObjectiveWeights = DEFAULT_WEIGHTS,
) -> SelectionResult:
    """Pick the k candidates with the largest total cover mass."""
    ranked = sorted(
        range(problem.num_candidates),
        key=lambda i: (-sum(problem.covers[i].values()), i),
    )
    selected = frozenset(ranked[: max(0, k)])
    return SelectionResult(selected, objective_value(problem, selected, weights))
