"""Mapping selection: objective, exact/greedy/collective solvers."""

from repro.selection.baselines import (
    select_all,
    select_none,
    select_top_k_coverage,
    solve_independent,
)
from repro.selection.collective import (
    GROUNDING_CACHE,
    CollectiveGroundingCache,
    CollectivePlan,
    GroundedCollective,
    CollectiveResult,
    CollectiveSettings,
    CollectiveWarmPayload,
    WarmStartedCollective,
    build_program,
    ground_collective,
    plan_collective_grounding,
    solve_collective,
)
from repro.selection.exact import (
    SelectionResult,
    solve_branch_and_bound,
    solve_exhaustive,
)
from repro.selection.greedy import solve_greedy
from repro.selection.kbest import KBestResult, solve_k_best
from repro.selection.metrics import (
    CandidateTables,
    SelectionProblem,
    build_selection_problem,
    evaluate_candidate,
    merge_candidate_tables,
    problem_fingerprint,
)
from repro.selection.sampling import SampledProblem, sample_selection_problem
from repro.selection.weight_learning import (
    LearningResult,
    feature_vector,
    learn_weights,
    training_pairs_from_scenarios,
)
from repro.selection.preprocess import (
    PreprocessResult,
    drop_certain_unexplained,
    drop_useless_candidates,
    preprocess,
)
from repro.selection.objective import (
    DEFAULT_WEIGHTS,
    IncrementalObjective,
    ObjectiveBreakdown,
    ObjectiveWeights,
    objective_breakdown,
    objective_value,
)

__all__ = [
    "GROUNDING_CACHE",
    "CollectiveGroundingCache",
    "CollectivePlan",
    "CollectiveResult",
    "CollectiveSettings",
    "CollectiveWarmPayload",
    "GroundedCollective",
    "DEFAULT_WEIGHTS",
    "IncrementalObjective",
    "ObjectiveBreakdown",
    "ObjectiveWeights",
    "KBestResult",
    "LearningResult",
    "CandidateTables",
    "PreprocessResult",
    "SampledProblem",
    "SelectionProblem",
    "SelectionResult",
    "WarmStartedCollective",
    "build_program",
    "build_selection_problem",
    "ground_collective",
    "plan_collective_grounding",
    "evaluate_candidate",
    "merge_candidate_tables",
    "problem_fingerprint",
    "objective_breakdown",
    "objective_value",
    "drop_certain_unexplained",
    "drop_useless_candidates",
    "preprocess",
    "feature_vector",
    "learn_weights",
    "sample_selection_problem",
    "training_pairs_from_scenarios",
    "select_all",
    "select_none",
    "select_top_k_coverage",
    "solve_independent",
    "solve_branch_and_bound",
    "solve_collective",
    "solve_exhaustive",
    "solve_greedy",
    "solve_k_best",
]
