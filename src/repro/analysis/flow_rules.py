"""The flow-aware RPL01x rule family.

Where the syntactic RPL00x checkers judge one expression in one module,
these rules consume the whole-program call graph
(:mod:`repro.analysis.callgraph`) and the forward dataflow engine
(:mod:`repro.analysis.dataflow`) to follow a value *through* calls:

* **RPL010** — transitive process-map taint: a closure, lambda, bound
  method, or staged-view-holding object that reaches ``executor.map``
  / ``initializer=`` through any call chain (subsumes RPL001's
  literal-only check; literal sites stay RPL001's so each incident has
  exactly one rule).
* **RPL011** — segment-escape: a ``SharedMemory(create=True)`` /
  ``SharedSegmentOwner`` value allocated in a function must reach a
  ``close()``/``release()`` owner on every path *including raise
  edges*, or escape to a caller (returned / stored on an instance).
* **RPL012** — lock-order cycles: the global lock-acquisition graph
  built from ``with <lock>:`` nesting across functions *and* their
  callees must be acyclic.
* **RPL013** — stale-stage mutation: once a partition/database value
  has been staged into shared memory, raw in-place writes to it that
  bypass the ``write_weights``/``state_token`` protocol are flagged.

Every finding carries the witnessing chain (``Finding.chain``): the
``path:line`` steps the offending value or lock context travelled
through, rendered by the reporters and shipped in ``lint.json``.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    FunctionId,
    FunctionInfo,
    Project,
    _walk_function_body,
    module_name_for_path,
)
from repro.analysis.checkers import Checker, ProcessMapSafetyChecker
from repro.analysis.dataflow import (
    DataflowEngine,
    SEGMENT_OWNER_CLASSES,
)
from repro.analysis.findings import Finding
from repro.analysis.visitor import (
    ancestors,
    call_keyword,
    terminal_name,
)


class FlowChecker(Checker):
    """A rule that runs over the whole project, not module by module."""

    def check(self, module) -> list[Finding]:  # pragma: no cover - flow only
        return []

    def check_project(
        self, project: Project, engine: DataflowEngine
    ) -> list[Finding]:
        raise NotImplementedError

    def flow_finding(
        self,
        path: str,
        node: ast.AST,
        message: str,
        chain=(),
    ) -> Finding:
        return Finding(
            rule=self.rule,
            message=message,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            chain=tuple(chain),
        )


def _functions_in_order(project: Project) -> list[FunctionInfo]:
    return [
        project.functions[fid]
        for fid in sorted(
            project.functions, key=lambda f: (f.module, f.qualname)
        )
    ]


# ----------------------------------------------------------------------
# RPL010 — transitive process-map taint


class TransitiveProcessMapTaintChecker(FlowChecker):
    """RPL010: unpicklable state reaching a process pool through calls.

    RPL001 flags the literal shapes (a lambda *at* the map site); this
    rule evaluates the callable expression in the dataflow engine, so a
    closure returned by a helper two modules away is caught at the map
    site with the full witness chain.  Sites RPL001 already flags are
    skipped — one incident, one rule.
    """

    rule = "RPL010"
    name = "transitive-process-map-taint"
    description = "unpicklable values must not reach process pools via any call chain"

    def check_project(self, project, engine) -> list[Finding]:
        findings: list[Finding] = []
        syntactic = ProcessMapSafetyChecker()
        for fn in _functions_in_order(project):
            for node in _walk_function_body(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                for expr, context in _pool_callable_sites(node):
                    if self._syntactic_owns(syntactic, fn, node, expr, context):
                        continue
                    value = engine.eval_in_function(fn, expr)
                    if not value.has("UNPICKLABLE"):
                        continue
                    chain = value.chain("UNPICKLABLE") + (
                        (fn.module.path, node.lineno,
                         f"shipped to {context} here"),
                    )
                    findings.append(
                        self.flow_finding(
                            fn.module.path,
                            expr,
                            f"value reaching {context} carries unpicklable "
                            "state through the call chain below; process "
                            "pools pickle work units by reference — hoist "
                            "the callable to module level and pass state "
                            "explicitly",
                            chain=chain,
                        )
                    )
        return findings

    @staticmethod
    def _syntactic_owns(syntactic, fn, call, expr, context) -> bool:
        """True when RPL001 already reports this exact site."""
        return any(
            syntactic._judge_callable(fn.module, call, expr, context)
        )


def _pool_callable_sites(call: ast.Call):
    """Yield (callable expr, context label) for pool-bound callables."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "map"
        and _is_executor_receiver(func.value)
        and call.args
    ):
        yield call.args[0], "executor.map"
    callee = terminal_name(func)
    if callee is not None and callee not in ("ThreadPoolExecutor", "ThreadExecutor"):
        looks_like_pool = (
            "executor" in callee.lower() or "pool" in callee.lower()
        )
        if looks_like_pool:
            kw = call_keyword(call, "initializer")
            if kw is not None and kw.value is not None:
                yield kw.value, f"initializer= of {callee}"


def _is_executor_receiver(expr: ast.AST) -> bool:
    name = terminal_name(expr)
    return name is not None and "executor" in name.lower()


# ----------------------------------------------------------------------
# RPL011 — segment-escape analysis


class SegmentEscapeChecker(FlowChecker):
    """RPL011: allocated segments must reach a release on every path.

    Subsumes RPL003's single-function heuristic: allocation is
    recognized through call chains (a helper returning a fresh
    ``SharedMemory`` taints its caller), release is recognized
    transitively (passing the segment to a function that releases its
    parameter counts), and the raise-edge check demands the release
    survive an exception thrown between allocation and release.
    """

    rule = "RPL011"
    name = "segment-escape"
    description = "shared segments must reach close()/release() on every path"

    def check_project(self, project, engine) -> list[Finding]:
        findings: list[Finding] = []
        for fn in _functions_in_order(project):
            if self._owner_method(project, fn):
                continue
            findings.extend(self._check_function(project, engine, fn))
        return findings

    @staticmethod
    def _owner_method(project: Project, fn: FunctionInfo) -> bool:
        """Methods of a release-owning class manage their own segment."""
        if fn.class_name is None:
            return False
        if project.class_has_base(fn.class_name, SEGMENT_OWNER_CLASSES):
            return True
        for _mod, cls_node in project.classes.get(fn.class_name, []):
            for stmt in cls_node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stmt.name in ("release", "close", "__exit__", "cleanup"):
                        return True
        return False

    def _check_function(self, project, engine, fn) -> list[Finding]:
        creations = self._creation_sites(project, engine, fn)
        if not creations:
            return []
        env, state = engine.function_state(fn)
        findings = []
        for name, assign, value in creations:
            if self._escapes(fn, name):
                continue
            release_line = state.released_at.get(name)
            with_managed = self._with_managed(fn, name)
            chain = value.chain("SEGMENT_OWNER") or (
                (fn.module.path, assign.lineno, "segment allocated here"),
            )
            if release_line is None and not with_managed:
                findings.append(
                    self.flow_finding(
                        fn.module.path,
                        assign,
                        f"shared segment bound to '{name}' never reaches a "
                        "close()/release() in this function and does not "
                        "escape to a caller — leaked segments survive the "
                        "process",
                        chain=chain,
                    )
                )
                continue
            if with_managed or self._release_protected(fn, assign, name):
                continue
            if self._raise_possible_between(fn, assign.lineno, release_line):
                findings.append(
                    self.flow_finding(
                        fn.module.path,
                        assign,
                        f"shared segment bound to '{name}' is released only "
                        "on the fall-through path — an exception raised "
                        f"between allocation and the release at line "
                        f"{release_line} leaks the segment; wrap the region "
                        "in try/finally (or hand the segment to an owner "
                        "object)",
                        chain=chain
                        + ((fn.module.path, release_line,
                            "unprotected release here"),),
                    )
                )
        return findings

    def _creation_sites(self, project, engine, fn):
        """(var name, assign stmt, value) for fresh segments born in *fn*."""
        sites = []
        for node in _walk_function_body(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                continue
            expr = node.value
            if not isinstance(expr, ast.Call):
                continue
            if not self._creates_segment(project, engine, fn, expr):
                continue
            value = engine.eval_in_function(fn, expr)
            sites.append((node.targets[0].id, node, value))
        return sites

    @staticmethod
    def _creates_segment(project, engine, fn, call: ast.Call) -> bool:
        callee = terminal_name(call.func)
        if callee == "SharedMemory":
            kw = call_keyword(call, "create")
            return (
                kw is not None
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            )
        if callee is not None and project.class_has_base(
            callee, SEGMENT_OWNER_CLASSES
        ):
            return True
        for target in project.resolve_call(fn.module, call, fn.class_name):
            if engine.summary(target).returns_fresh_segment:
                return True
        return False

    @staticmethod
    def _escapes(fn: FunctionInfo, name: str) -> bool:
        """Returned, yielded, or stored onto an instance — the caller owns it."""
        for node in _walk_function_body(fn.node):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and any(
                    isinstance(sub, ast.Name) and sub.id == name
                    for sub in ast.walk(value)
                ):
                    return True
            elif isinstance(node, ast.Assign):
                stores_attr = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                if stores_attr and any(
                    isinstance(sub, ast.Name) and sub.id == name
                    for sub in ast.walk(node.value)
                ):
                    return True
        return False

    @staticmethod
    def _with_managed(fn: FunctionInfo, name: str) -> bool:
        for node in _walk_function_body(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Name)
                        and item.context_expr.id == name
                    ):
                        return True
        return False

    @staticmethod
    def _release_protected(fn: FunctionInfo, assign: ast.Assign, name: str) -> bool:
        """The release of *name* survives raise edges.

        True when the allocation sits under a ``try`` with a
        ``finally``, or when any ``finally`` block in the function
        touches *name* (the idiomatic ``seg = alloc(); try: ...
        finally: seg.close()`` shape allocates just *before* the try).
        """
        for anc in ancestors(assign):
            if isinstance(anc, ast.Try) and anc.finalbody:
                return True
        for node in _walk_function_body(fn.node):
            if isinstance(node, ast.Try) and node.finalbody:
                for stmt in node.finalbody:
                    if any(
                        isinstance(sub, ast.Name) and sub.id == name
                        for sub in ast.walk(stmt)
                    ):
                        return True
        return False

    @staticmethod
    def _raise_possible_between(
        fn: FunctionInfo, start_line: int, end_line: int
    ) -> bool:
        """Any call/raise strictly between allocation and release lines."""
        for node in _walk_function_body(fn.node):
            line = getattr(node, "lineno", None)
            if line is None or not (start_line < line < end_line):
                continue
            if isinstance(node, (ast.Raise,)):
                return True
            if isinstance(node, ast.Call):
                # The release call itself (or sibling calls on the same
                # statement line) does not count as a raise edge.
                if line != end_line:
                    return True
        return False


# ----------------------------------------------------------------------
# RPL012 — lock-order cycle detection


class LockOrderChecker(FlowChecker):
    """RPL012: the global lock-acquisition graph must be acyclic.

    ``with A:`` containing — directly or through any call chain — a
    ``with B:`` adds edge A->B.  A cycle means two call paths can
    interleave into a deadlock (the class PR 4 hit when nested pools
    acquired the registry and stream locks in opposite orders).  Lock
    identity: ``self.X`` inside class ``C`` is ``C.X``; a bare name is
    qualified by its module.
    """

    rule = "RPL012"
    name = "lock-order-cycles"
    description = "lock acquisition order must be globally acyclic"

    def check_project(self, project, engine) -> list[Finding]:
        edges: dict[tuple[str, str], tuple] = {}
        acquired_cache: dict[FunctionId, dict[str, tuple]] = {}

        for fn in _functions_in_order(project):
            self._collect_edges(
                project, fn, edges, acquired_cache
            )

        graph: dict[str, set[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
            graph.setdefault(inner, set())

        findings = []
        for cycle in self._cycles(graph):
            witness_edges = []
            for index, node in enumerate(cycle):
                succ = cycle[(index + 1) % len(cycle)]
                witness_edges.append((node, succ, edges[(node, succ)]))
            path, line, chain = self._witness(witness_edges)
            pretty = " -> ".join([*cycle, cycle[0]])
            findings.append(
                Finding(
                    rule=self.rule,
                    message=(
                        f"lock-order cycle {pretty}: two call paths can "
                        "acquire these locks in opposite orders and "
                        "deadlock; pick one global order and stick to it"
                    ),
                    path=path,
                    line=line,
                    chain=tuple(chain),
                )
            )
        return findings

    # -- edge collection ------------------------------------------------

    def _collect_edges(self, project, fn, edges, acquired_cache) -> None:
        module_path = fn.module.path

        def visit(stmts, held: tuple[tuple[str, int], ...]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    now_held = held
                    for item in stmt.items:
                        lock = self._lock_identity(project, fn, item.context_expr)
                        if lock is None:
                            continue
                        for outer, outer_line in now_held:
                            key = (outer, lock)
                            if key not in edges and outer != lock:
                                edges[key] = (
                                    module_path,
                                    stmt.lineno,
                                    ((module_path, outer_line,
                                      f"'{outer}' acquired here in "
                                      f"{fn.name}()"),
                                     (module_path, stmt.lineno,
                                      f"'{lock}' acquired while holding "
                                      f"'{outer}'")),
                                )
                        now_held = now_held + ((lock, stmt.lineno),)
                    visit(stmt.body, now_held)
                    continue
                # Calls made while holding locks: edges into everything
                # the callee (transitively) acquires.
                if held:
                    for node in ast.walk(stmt):
                        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                            continue
                        if not isinstance(node, ast.Call):
                            continue
                        for target in project.resolve_call(
                            fn.module, node, fn.class_name
                        ):
                            for lock, where in self._acquires(
                                project, target, acquired_cache, ()
                            ).items():
                                for outer, outer_line in held:
                                    key = (outer, lock)
                                    if outer != lock and key not in edges:
                                        edges[key] = (
                                            module_path,
                                            node.lineno,
                                            ((module_path, outer_line,
                                              f"'{outer}' acquired here in "
                                              f"{fn.name}()"),
                                             (module_path, node.lineno,
                                              f"call into "
                                              f"{target.qualname}() while "
                                              f"holding '{outer}'"),
                                             *where),
                                        )
                for field_name in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, field_name, None)
                    if inner:
                        visit(inner, held)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, held)

        visit(fn.node.body, ())

    def _acquires(
        self, project, fid: FunctionId, cache, stack
    ) -> dict[str, tuple]:
        """lock identity -> witness steps for every lock *fid* acquires,
        directly or through callees (cycle-guarded fixed traversal)."""
        if fid in cache:
            return cache[fid]
        if fid in stack:
            return {}
        fn = project.function(fid)
        if fn is None:
            return {}
        cache[fid] = {}  # cycle guard: callees see partial (empty) result
        acquired: dict[str, tuple] = {}
        for node in _walk_function_body(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = self._lock_identity(project, fn, item.context_expr)
                    if lock is not None and lock not in acquired:
                        acquired[lock] = (
                            (fn.module.path, node.lineno,
                             f"'{lock}' acquired in {fn.id.qualname}()"),
                        )
            elif isinstance(node, ast.Call):
                for target in project.resolve_call(fn.module, node, fn.class_name):
                    for lock, where in self._acquires(
                        project, target, cache, stack + (fid,)
                    ).items():
                        if lock not in acquired:
                            acquired[lock] = (
                                (fn.module.path, node.lineno,
                                 f"via call to {target.qualname}()"),
                                *where,
                            )
        cache[fid] = acquired
        return acquired

    @staticmethod
    def _lock_identity(project, fn: FunctionInfo, expr: ast.AST) -> str | None:
        """Stable cross-function name for a lock context expression."""
        # Unwrap helper-style acquisitions like `lock.acquire_timeout()`.
        name = terminal_name(expr)
        if name is None:
            return None
        if not ("lock" in name.lower() or "mutex" in name.lower()):
            return None
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                owner = fn.class_name or fn.name
                return f"{owner}.{expr.attr}"
            base_name = terminal_name(base)
            if base_name is not None:
                return f"{base_name}.{expr.attr}"
            return expr.attr
        module = module_name_for_path(fn.module.path)
        return f"{module}.{name}"

    # -- cycle enumeration ----------------------------------------------

    @staticmethod
    def _cycles(graph: dict[str, set[str]]) -> list[list[str]]:
        """Deterministic list of elementary cycles (rotated canonically)."""
        cycles: list[list[str]] = []
        seen: set[tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: list[str], visited: set[str]):
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    rotation = min(range(len(path)), key=lambda i: path[i])
                    canonical = tuple(path[rotation:] + path[:rotation])
                    if canonical not in seen:
                        seen.add(canonical)
                        cycles.append(list(canonical))
                elif succ not in visited and succ > start:
                    # Only explore nodes ordered after `start`: each
                    # cycle is found exactly once, from its least node.
                    visited.add(succ)
                    dfs(start, succ, path + [succ], visited)
                    visited.discard(succ)

        for start in sorted(graph):
            dfs(start, start, [start], {start})
        return cycles

    @staticmethod
    def _witness(witness_edges) -> tuple[str, int, list]:
        """Anchor the finding at the first edge's site, chain all edges."""
        path, line, _ = witness_edges[0][2]
        chain: list = []
        for outer, inner, (_path, _line, steps) in witness_edges:
            chain.extend(steps)
        return path, line, chain[: 12]


# ----------------------------------------------------------------------
# RPL013 — stale-stage mutation


class StaleStageMutationChecker(FlowChecker):
    """RPL013: no raw writes to state already staged into shared memory.

    Once ``SharedPartitionBuffers(partition)`` (or any staging
    constructor) has copied a value's arrays into a segment, in-place
    writes to that value silently diverge from what workers see; every
    mutation must flow through the sanctioned mutators
    (``write_weights`` / ``set_rule_weights`` / ``set_potential_weights``
    / ``state_token`` bumps), which re-stage or version the change.
    """

    rule = "RPL013"
    name = "stale-stage-mutation"
    description = "no in-place writes to values already staged into shared memory"

    #: calls that stage their arguments into shared memory.
    staging_constructors = frozenset(
        {"SharedPartitionBuffers", "SharedSolveState"}
    )
    #: functions allowed to mutate staged state (they re-stage/version).
    sanctioned_mutators = frozenset(
        {"write_weights", "set_rule_weights", "set_potential_weights",
         "state_token", "bump_state", "reweight", "_write", "_stage"}
    )

    def check_project(self, project, engine) -> list[Finding]:
        findings = []
        for fn in _functions_in_order(project):
            if fn.name in self.sanctioned_mutators:
                continue
            findings.extend(self._check_function(project, engine, fn))
        return findings

    def _check_function(self, project, engine, fn) -> list[Finding]:
        staged: dict[str, tuple[int, str]] = {}  # name -> (line, stager)
        for node in _walk_function_body(fn.node):
            if not isinstance(node, ast.Call):
                continue
            stager = self._staging_callee(project, engine, fn, node)
            if stager is None:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    line, _ = staged.get(arg.id, (node.lineno, stager))
                    staged[arg.id] = (min(line, node.lineno), stager)
        if not staged:
            return []

        _env, state = engine.function_state(fn)
        findings = []
        reported: set[tuple[str, int]] = set()
        for name, line, what in state.mutation_events:
            if name not in staged:
                continue
            staged_line, stager = staged[name]
            if line <= staged_line or (name, line) in reported:
                continue
            if self._sanctioned(fn, line):
                continue
            reported.add((name, line))
            findings.append(
                Finding(
                    rule=self.rule,
                    message=(
                        f"in-place write to '{name}' ({what}) after it was "
                        f"staged into shared memory by {stager}(...) at "
                        f"line {staged_line}; workers keep the stale copy — "
                        "route the change through "
                        "write_weights()/set_rule_weights() so it is "
                        "re-staged (or bump state_token())"
                    ),
                    path=fn.module.path,
                    line=line,
                    chain=(
                        (fn.module.path, staged_line,
                         f"'{name}' staged into shared memory here "
                         f"({stager})"),
                        (fn.module.path, line,
                         f"raw {what} to '{name}' here bypasses the "
                         "re-staging protocol"),
                    ),
                )
            )
        return findings

    def _staging_callee(self, project, engine, fn, call: ast.Call) -> str | None:
        callee = terminal_name(call.func)
        if callee in self.staging_constructors:
            return callee
        if callee is not None and project.class_has_base(
            callee, frozenset(self.staging_constructors)
        ):
            return callee
        return None

    def _sanctioned(self, fn: FunctionInfo, line: int) -> bool:
        """The mutation statement sits inside a sanctioned-mutator call."""
        for node in _walk_function_body(fn.node):
            if (
                isinstance(node, ast.Call)
                and getattr(node, "lineno", None) == line
                and terminal_name(node.func) in self.sanctioned_mutators
            ):
                return True
        return False


def flow_checkers() -> list[FlowChecker]:
    """Fresh instances of every RPL01x rule, in rule order."""
    return [
        TransitiveProcessMapTaintChecker(),
        SegmentEscapeChecker(),
        LockOrderChecker(),
        StaleStageMutationChecker(),
    ]


FLOW_RULES = {
    checker.rule: checker.description for checker in flow_checkers()
}
