"""Committed lint baseline with ratchet semantics.

The baseline file (``lint-baseline.json`` at the repo root) records,
per ``(file, rule)``, how many findings are grandfathered.  The runner
marks up to that many matching findings as baselined; anything beyond
the recorded count is *new* and fails the run.  Fixing a grandfathered
site therefore never breaks the build, while introducing one does —
the count only ratchets down.

Counts are keyed on ``(file, rule)`` rather than exact line numbers so
unrelated edits that shift lines don't invalidate the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding, normalize_path

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    file: str
    rule: str
    count: int
    note: str = ""

    def to_json(self) -> dict:
        payload = {"file": self.file, "rule": self.rule, "count": self.count}
        if self.note:
            payload["note"] = self.note
        return payload


def _same_file(entry_file: str, finding_path: str) -> bool:
    """Suffix-tolerant path match so cwd-relative invocations still hit."""
    a = normalize_path(entry_file)
    b = normalize_path(finding_path)
    return a == b or a.endswith("/" + b) or b.endswith("/" + a)


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version: {payload.get('version')!r}"
            )
        entries = [
            BaselineEntry(
                file=normalize_path(item["file"]),
                rule=item["rule"],
                count=int(item["count"]),
                note=item.get("note", ""),
            )
            for item in payload.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_json() for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def note_for(self, file: str, rule: str) -> str:
        for entry in self.entries:
            if entry.rule == rule and _same_file(entry.file, file):
                return entry.note
        return ""

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Split *findings* into (new, baselined), consuming entry counts."""
        budgets: dict[int, int] = {
            idx: entry.count for idx, entry in enumerate(self.entries)
        }
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            consumed = False
            for idx, entry in enumerate(self.entries):
                if budgets[idx] <= 0:
                    continue
                if entry.rule == finding.rule and _same_file(entry.file, finding.path):
                    budgets[idx] -= 1
                    consumed = True
                    break
            if consumed:
                grandfathered.append(
                    Finding(
                        rule=finding.rule,
                        message=finding.message,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        baselined=True,
                    )
                )
            else:
                new.append(finding)
        return new, grandfathered


def baseline_from_findings(
    findings: list[Finding],
    previous: Baseline | None = None,
    scanned_files: list[str] | None = None,
) -> Baseline:
    """Aggregate current findings into entries, keeping existing notes.

    Rewrite semantics are scoped to what was actually scanned:

    * an entry whose ``(file, rule)`` still matches findings gets the
      **current** count (never a stale larger one) — the ratchet only
      tightens;
    * an entry for a scanned file whose count dropped to zero is
      **pruned** — it must not linger as headroom for new violations;
    * an entry for a file *outside* ``scanned_files`` is carried over
      untouched, so ``--write-baseline`` on a subtree cannot silently
      drop (or forget) the rest of the tree's grandfathered sites.

    With ``scanned_files=None`` every previous entry is considered
    in-scope (the whole-tree rewrite).
    """
    counts: dict[tuple[str, str], int] = {}
    for finding in findings:
        key = (finding.path, finding.rule)
        counts[key] = counts.get(key, 0) + 1
    entries = []
    for (file, rule), count in sorted(counts.items()):
        note = previous.note_for(file, rule) if previous else ""
        entries.append(BaselineEntry(file=file, rule=rule, count=count, note=note))
    if previous is not None and scanned_files is not None:
        normalized_scanned = [normalize_path(f) for f in scanned_files]
        for entry in previous.entries:
            in_scope = any(
                _same_file(entry.file, scanned) for scanned in normalized_scanned
            )
            already = any(
                _same_file(entry.file, file) and entry.rule == rule
                for (file, rule) in counts
            )
            if not in_scope and not already:
                entries.append(entry)
        entries.sort(key=lambda e: (e.file, e.rule))
    return Baseline(entries=entries)
