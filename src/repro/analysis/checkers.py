"""The five repro-lint rules.

Each rule encodes an invariant this codebase already relies on (see
docs/lint.md for the incident history behind every one):

* RPL001 — callables shipped to process pools must be module-level.
* RPL002 — fingerprint/merge/selection paths must not iterate unordered
  containers or call seed-dependent ``hash()``.
* RPL003 — ``SharedMemory(create=True)`` needs a driver-owned release;
  ``unlink()`` belongs only in recognized release paths.
* RPL004 — executor initializers must carry the ``scope`` hook.
* RPL005 — no blocking pool operations while holding a registry lock.

Checkers are per-module (:meth:`Checker.check`), with an optional
cross-module :meth:`Checker.finalize` for whole-codebase facts (RPL004
needs to see every ``fn.scope = ...`` assignment before judging any
``initializer=fn`` site).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.visitor import (
    COMPREHENSION_NODES,
    ModuleInfo,
    ancestors,
    call_keyword,
    enclosing_class,
    enclosing_function,
    parent,
    statements_of,
    terminal_name,
)


class Checker:
    """Base class: one rule ID, per-module checks, optional finalize."""

    rule = "RPL000"
    name = "base"
    description = ""
    #: fnmatch patterns limiting which modules the rule applies to
    #: (``None`` means every module).
    scope_patterns: tuple[str, ...] | None = None

    def applies_to(self, module: ModuleInfo) -> bool:
        if self.scope_patterns is None:
            return True
        return module.matches(self.scope_patterns)

    def check(self, module: ModuleInfo) -> list[Finding]:
        raise NotImplementedError

    def finalize(self) -> list[Finding]:
        """Called once after every module was checked."""
        return []

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


def _is_executor_receiver(expr: ast.AST) -> bool:
    name = terminal_name(expr)
    return name is not None and "executor" in name.lower()


def _describe_callable(expr: ast.AST) -> str:
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.Attribute):
        return f"bound method '{expr.attr}'"
    if isinstance(expr, ast.Name):
        return f"'{expr.id}'"
    return "a non-module-level callable"


class ProcessMapSafetyChecker(Checker):
    """RPL001: work units shipped to executors must pickle by reference.

    Flags lambdas, nested-function names, and bound methods passed as
    the callable to ``<executor>.map(...)`` or as ``initializer=`` to
    executor/pool constructors.  ``functools.partial`` over a
    module-level function is accepted (that is the codebase's idiom for
    pre-binding shared arguments, e.g. ``metrics.build_selection_problem``).
    """

    rule = "RPL001"
    name = "process-map-safety"
    description = "callables sent to process pools must be module-level"
    #: constructor names that look like pools but never pickle their
    #: initializer (thread pools run it in-process).
    callee_allowlist = frozenset({"ThreadPoolExecutor", "ThreadExecutor"})

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(self._check_map_call(module, node))
            findings.extend(self._check_initializer_kwarg(module, node))
        return findings

    def _check_map_call(self, module: ModuleInfo, call: ast.Call):
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "map"
            and _is_executor_receiver(call.func.value)
        ):
            return
        if call.args:
            yield from self._judge_callable(
                module, call, call.args[0], context="executor.map"
            )

    def _check_initializer_kwarg(self, module: ModuleInfo, call: ast.Call):
        callee = terminal_name(call.func)
        if callee is None or callee in self.callee_allowlist:
            return
        looks_like_pool = (
            "executor" in callee.lower()
            or "pool" in callee.lower()
            or (isinstance(call.func, ast.Attribute) and call.func.attr == "map")
        )
        if not looks_like_pool:
            return
        kw = call_keyword(call, "initializer")
        if kw is not None and kw.value is not None:
            yield from self._judge_callable(
                module, call, kw.value, context=f"initializer= of {callee}"
            )

    def _judge_callable(
        self, module: ModuleInfo, call: ast.Call, expr: ast.AST, context: str
    ):
        # functools.partial(fn, ...) is fine iff fn itself is fine.
        if isinstance(expr, ast.Call) and terminal_name(expr.func) == "partial":
            if expr.args:
                yield from self._judge_callable(module, call, expr.args[0], context)
            return
        if isinstance(expr, ast.Lambda):
            yield self.finding(
                module,
                expr,
                f"lambda passed to {context}; process pools pickle work "
                "units by reference — use a module-level function",
            )
            return
        if isinstance(expr, ast.Attribute):
            yield self.finding(
                module,
                expr,
                f"bound method {_describe_callable(expr)} passed to {context}; "
                "bound methods drag their instance through pickle — use a "
                "module-level function taking explicit arguments",
            )
            return
        if isinstance(expr, ast.Name):
            if module.is_module_level_callable(expr.id):
                return
            scope = enclosing_function(call)
            if scope is None:
                return
            if expr.id in module.local_function_defs(scope):
                yield self.finding(
                    module,
                    expr,
                    f"nested function '{expr.id}' passed to {context}; "
                    "closures cannot be pickled — hoist it to module level",
                )
                return
            for value in module.local_bindings(scope).get(expr.id, []):
                if isinstance(value, ast.Lambda):
                    yield self.finding(
                        module,
                        expr,
                        f"'{expr.id}' is a lambda passed to {context}; "
                        "use a module-level function",
                    )
                    return
        # Anything else (parameters, attributes of data we can't see)
        # is beyond static reach: stay silent rather than cry wolf.


def _sorted_wraps(node: ast.AST) -> bool:
    """True when the iteration result is immediately canonically ordered."""
    enclosing = parent(node)
    if isinstance(enclosing, ast.Call):
        callee = terminal_name(enclosing.func)
        return callee in {"sorted", "min", "max", "sum", "len", "any", "all"}
    return False


class DeterminismChecker(Checker):
    """RPL002: no unordered iteration / seed-dependent hash() in
    fingerprint, merge, grounding, and selection-planning modules.

    Set/frozenset iteration order depends on the per-process hash seed,
    so anything derived from it (fingerprints, tie-breaks, merged
    orderings) silently differs across workers.  ``hash()`` of
    str/bytes is seed-dependent for the same reason.  Dict iteration is
    insertion-ordered in Python 3.7+ and is deliberately *not* flagged.

    Directory listings (``iterdir``/``glob``/``os.listdir``/…) are the
    filesystem cousin of the same bug: entries arrive in
    filesystem-dependent order, which varies across hosts, mounts, and
    file creation histories — the grounding store's spill writer/reader
    paths must iterate in the fixed fingerprint order (a module
    constant), never in whatever order the directory happens to return,
    or content-addressing silently breaks.  Listings are exempt when
    immediately wrapped in a canonical ordering (``sorted``) or an
    order-insensitive reduction.
    """

    rule = "RPL002"
    name = "determinism"
    description = "no unordered iteration or hash() in deterministic paths"
    scope_patterns = (
        "*repro/psl/*.py",
        "*repro/selection/*.py",
        "*repro/homomorphism/*.py",
    )
    #: attributes/methods known to return unordered containers.
    unordered_attrs = frozenset({"atoms_of", "facts_of"})
    #: attribute named ``targets`` is a frozenset only on Database
    #: receivers (``plan.targets`` is an ordered tuple — not flagged).
    frozenset_attr_receivers = {"targets": ("database",)}
    #: calls that yield filesystem-ordered directory entries.
    listing_calls = frozenset({"iterdir", "glob", "rglob", "scandir", "listdir"})

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                findings.extend(self._check_iter(module, node, node.iter))
            elif isinstance(node, COMPREHENSION_NODES):
                for gen in node.generators:
                    findings.extend(self._check_iter(module, node, gen.iter))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_hash(module, node))
        return findings

    def _check_hash(self, module: ModuleInfo, call: ast.Call):
        if isinstance(call.func, ast.Name) and call.func.id == "hash":
            yield self.finding(
                module,
                call,
                "built-in hash() is salted per process (PYTHONHASHSEED); "
                "use the canonical JSON fingerprints "
                "(sharding.mrf_fingerprint / structure_fingerprint) instead",
            )

    def _check_iter(self, module: ModuleInfo, node: ast.AST, iter_expr: ast.AST):
        if _sorted_wraps(node):
            return
        listing = self._listing_reason(iter_expr)
        if listing is not None:
            yield self.finding(
                module,
                iter_expr,
                f"iteration over {listing} follows filesystem order, which "
                "varies across hosts and mounts; sort the listing — or "
                "iterate a fixed-order manifest (content-addressed spill "
                "entries must never depend on directory order)",
            )
            return
        reason = self._unordered_reason(module, node, iter_expr)
        if reason is None:
            return
        yield self.finding(
            module,
            iter_expr,
            f"iteration over {reason} has hash-seed-dependent order; "
            "sort with an explicit key (or iterate an insertion-ordered "
            "view) before anything fingerprinted, merged, or tie-broken",
        )

    def _listing_reason(self, iter_expr: ast.AST) -> str | None:
        if isinstance(iter_expr, ast.Call):
            callee = terminal_name(iter_expr.func)
            if callee in self.listing_calls:
                return f"the directory listing {callee}(...)"
        return None

    def _unordered_reason(
        self, module: ModuleInfo, node: ast.AST, iter_expr: ast.AST
    ) -> str | None:
        if isinstance(iter_expr, ast.Call):
            callee = terminal_name(iter_expr.func)
            if callee in {"set", "frozenset"}:
                return f"{callee}(...)"
            if callee in self.unordered_attrs:
                return f"the unordered result of .{callee}(...)"
            return None
        if isinstance(iter_expr, ast.Attribute):
            receivers = self.frozenset_attr_receivers.get(iter_expr.attr)
            if receivers:
                receiver = terminal_name(iter_expr.value) or ""
                if any(tag in receiver.lower() for tag in receivers):
                    return f"the frozenset attribute .{iter_expr.attr}"
            return None
        if isinstance(iter_expr, ast.Name):
            scope = enclosing_function(node) or module.tree
            for value in module.local_bindings(scope).get(iter_expr.id, []):
                if (
                    isinstance(value, ast.Call)
                    and terminal_name(value.func) in {"set", "frozenset"}
                ):
                    return f"'{iter_expr.id}' (assigned from set(...))"
                if isinstance(value, ast.SetComp):
                    return f"'{iter_expr.id}' (a set comprehension)"
        return None


class SharedMemoryLifecycleChecker(Checker):
    """RPL003: every ``SharedMemory(create=True)`` needs an owner.

    Only modules importing ``multiprocessing.shared_memory`` are in
    scope, which keeps ``pathlib.Path.unlink`` out of reach.  A create
    site must sit inside a class exposing a ``release``/``close``
    method — its own, or inherited from a recognized segment-owner base
    (the ``SharedSegmentOwner`` hierarchy in ``repro.psl.partition``:
    ``SharedPartitionBuffers`` and ``SharedSolveState`` allocate in
    ``__init__`` and inherit the one real release) — or inside a
    ``try/finally``; ``unlink()`` may only appear in a recognized
    release-path function.
    """

    rule = "RPL003"
    name = "shared-memory-lifecycle"
    description = "SharedMemory(create=True) must have a driver-owned release"
    release_owners = frozenset({"release", "close", "cleanup", "unlink", "__exit__"})
    #: Class names whose instances own their segment's lifecycle even
    #: when release()/close() is inherited rather than defined in the
    #: class body (AST checking is single-module; base-class bodies may
    #: live elsewhere, so ownership is recognized by name).
    segment_owner_classes = frozenset(
        {"SharedSegmentOwner", "SharedPartitionBuffers", "SharedSolveState"}
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.imports_module("multiprocessing.shared_memory")

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(self._check_create(module, node))
            findings.extend(self._check_unlink(module, node))
        return findings

    def _check_create(self, module: ModuleInfo, call: ast.Call):
        if terminal_name(call.func) != "SharedMemory":
            return
        kw = call_keyword(call, "create")
        if kw is None or not (
            isinstance(kw.value, ast.Constant) and kw.value.value is True
        ):
            return
        if self._inside_try_finally(call):
            return
        owner = enclosing_class(call)
        if owner is not None and self._class_has_release(owner):
            return
        yield self.finding(
            module,
            call,
            "SharedMemory(create=True) without a driver-owned release: "
            "allocate inside a class exposing release()/close(), or wrap "
            "in try/finally — leaked segments survive the process",
        )

    def _check_unlink(self, module: ModuleInfo, call: ast.Call):
        if not (isinstance(call.func, ast.Attribute) and call.func.attr == "unlink"):
            return
        # Path.unlink(missing_ok=...) is filesystem, not shared memory.
        if call_keyword(call, "missing_ok") is not None:
            return
        func = enclosing_function(call)
        if func is not None and func.name in self.release_owners:
            return
        if self._inside_try_finally(call):
            return
        yield self.finding(
            module,
            call,
            "unlink() outside a recognized release path "
            f"({'/'.join(sorted(self.release_owners))}); shared-memory "
            "teardown must stay driver-owned so workers never race the "
            "segment away",
        )

    @staticmethod
    def _inside_try_finally(node: ast.AST) -> bool:
        for anc in ancestors(node):
            if isinstance(anc, ast.Try) and anc.finalbody:
                return True
        return False

    @classmethod
    def _class_has_release(cls, cls_node: ast.ClassDef) -> bool:
        if cls_node.name in cls.segment_owner_classes:
            return True
        for base in cls_node.bases:
            if terminal_name(base) in cls.segment_owner_classes:
                return True
        for stmt in cls_node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name in cls.release_owners:
                    return True
        return False


class InitializerScopeChecker(Checker):
    """RPL004: worker initializers must expose the ``scope`` hook.

    ``executors.initializer_scope`` runs ``initializer.scope(*initargs)``
    as a context manager on the serial fallback path; an initializer
    without a ``scope`` attribute silently skips resource setup there.
    The check is cross-module: sites are collected per module, and the
    set of ``fn.scope = ...`` assignments anywhere in the codebase is
    consulted in :meth:`finalize`.
    """

    rule = "RPL004"
    name = "initializer-scope"
    description = "initializer= functions must have a .scope hook"

    def __init__(self) -> None:
        #: (module, call node, function name) for every initializer site.
        self._sites: list[tuple[ModuleInfo, ast.Call, str]] = []
        #: function names that get ``.scope`` assigned somewhere.
        self._scoped_names: set[str] = set()

    def check(self, module: ModuleInfo) -> list[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                self._record_scope_assignment(node)
            elif isinstance(node, ast.Call):
                self._record_initializer_site(module, node)
        return []

    def _record_scope_assignment(self, assign: ast.Assign) -> None:
        for target in assign.targets:
            if isinstance(target, ast.Attribute) and target.attr == "scope":
                owner = terminal_name(target.value)
                if owner:
                    self._scoped_names.add(owner)

    def _record_initializer_site(self, module: ModuleInfo, call: ast.Call) -> None:
        kw = call_keyword(call, "initializer")
        if kw is None or kw.value is None:
            return
        value = kw.value
        name = None
        if isinstance(value, ast.Name):
            # Only judge names we can resolve statically: module-level
            # functions and imports.  Parameters/locals forwarding an
            # initializer (e.g. sharding.ground_shards) are out of reach.
            if module.is_module_level_callable(value.id):
                name = value.id
        elif isinstance(value, ast.Attribute):
            name = value.attr
        if name is not None:
            self._sites.append((module, call, name))

    def finalize(self) -> list[Finding]:
        findings = []
        for module, call, name in self._sites:
            if name in self._scoped_names:
                continue
            findings.append(
                self.finding(
                    module,
                    call,
                    f"initializer '{name}' has no .scope attribute assigned "
                    "anywhere; executors.initializer_scope needs it to set "
                    "up worker state on the serial fallback path (see "
                    "program.install_shared_database for the pattern)",
                )
            )
        return findings


class LockHoldChecker(Checker):
    """RPL005: no blocking pool operations while holding a lock.

    Within ``with <lock>:`` blocks (any context manager whose terminal
    name contains "lock" or "mutex"), calls to blocking executor/pool
    operations are flagged.  ``close`` counts only with ``force=`` —
    a forced close joins workers, a plain close just flips a flag.
    """

    rule = "RPL005"
    name = "lock-hold-discipline"
    description = "no blocking pool calls under a registry lock"
    default_blocklist = frozenset(
        {"shutdown", "map", "unlink", "join", "result", "wait", "solve",
         "ground", "reweight"}
    )

    def __init__(self, blocklist: frozenset[str] | None = None) -> None:
        self.blocklist = (
            frozenset(blocklist) if blocklist is not None else self.default_blocklist
        )

    def check(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not self._holds_lock(node):
                continue
            findings.extend(self._scan_body(module, node))
        return findings

    @staticmethod
    def _holds_lock(node) -> bool:
        for item in node.items:
            name = terminal_name(item.context_expr)
            if name and ("lock" in name.lower() or "mutex" in name.lower()):
                return True
        return False

    @staticmethod
    def _calls_of(stmt: ast.AST):
        """Call nodes in *stmt*'s own expressions, not its sub-statements
        (those are yielded separately by :func:`statements_of`)."""
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                continue
            exprs = value if isinstance(value, list) else [value]
            for expr in exprs:
                if not isinstance(expr, ast.AST):
                    continue
                for node in ast.walk(expr):
                    if isinstance(node, ast.Call):
                        yield node

    def _scan_body(self, module: ModuleInfo, with_node):
        for stmt in statements_of(with_node):
            for node in self._calls_of(stmt):
                if not isinstance(node.func, ast.Attribute):
                    continue
                attr = node.func.attr
                if attr in self.blocklist:
                    yield self.finding(
                        module,
                        node,
                        f"blocking call .{attr}(...) while holding a lock; "
                        "collect work under the lock, release it, then "
                        "block (see the PR 5 cache-eviction hardening)",
                    )
                elif attr == "close" and call_keyword(node, "force") is not None:
                    yield self.finding(
                        module,
                        node,
                        "close(force=...) joins workers while holding a "
                        "lock; move the forced close outside the critical "
                        "section",
                    )


def default_checkers() -> list[Checker]:
    """Fresh checker instances (RPL004 carries cross-module state)."""
    return [
        ProcessMapSafetyChecker(),
        DeterminismChecker(),
        SharedMemoryLifecycleChecker(),
        InitializerScopeChecker(),
        LockHoldChecker(),
    ]


ALL_RULES = {
    checker.rule: checker.description for checker in default_checkers()
}
