"""repro-lint: static checks for the invariants the codebase lives by.

Two layers (see docs/lint.md):

* **Syntactic** (RPL001–RPL005, :mod:`repro.analysis.checkers`) — fast
  per-module AST pattern matches.
* **Flow** (RPL010–RPL013, :mod:`repro.analysis.flow_rules`) — a
  whole-program call graph (:mod:`repro.analysis.callgraph`) plus a
  forward dataflow engine (:mod:`repro.analysis.dataflow`) that follow
  values through calls; findings carry witnessing call chains.

Entry points: ``repro lint [--flow]`` (CLI) or
:func:`repro.analysis.runner.lint_paths` (in-process, as the self-clean
meta-test uses).
"""

from repro.analysis.baseline import Baseline, BaselineEntry, baseline_from_findings
from repro.analysis.callgraph import FunctionId, FunctionInfo, Project
from repro.analysis.checkers import ALL_RULES, Checker, default_checkers
from repro.analysis.dataflow import (
    BOTTOM,
    AbstractValue,
    DataflowEngine,
    FACTS,
    Summary,
    join,
    join_all,
)
from repro.analysis.findings import Finding
from repro.analysis.flow_rules import FLOW_RULES, FlowChecker, flow_checkers
from repro.analysis.reporting import (
    LintReport,
    render_github,
    render_json,
    render_text,
)
from repro.analysis.runner import lint_paths, lint_sources
from repro.analysis.visitor import ModuleInfo

__all__ = [
    "ALL_RULES",
    "AbstractValue",
    "BOTTOM",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "DataflowEngine",
    "FACTS",
    "FLOW_RULES",
    "Finding",
    "FlowChecker",
    "FunctionId",
    "FunctionInfo",
    "LintReport",
    "ModuleInfo",
    "Project",
    "Summary",
    "baseline_from_findings",
    "default_checkers",
    "flow_checkers",
    "join",
    "join_all",
    "lint_paths",
    "lint_sources",
    "render_github",
    "render_json",
    "render_text",
]
