"""repro-lint: AST checks for the invariants the codebase lives by.

See docs/lint.md for the rules (RPL001–RPL005), suppression syntax,
and baseline-ratchet workflow.  Entry points: ``repro lint`` (CLI) or
:func:`repro.analysis.runner.lint_paths` (in-process, as the self-clean
meta-test uses).
"""

from repro.analysis.baseline import Baseline, BaselineEntry, baseline_from_findings
from repro.analysis.checkers import ALL_RULES, Checker, default_checkers
from repro.analysis.findings import Finding
from repro.analysis.reporting import LintReport, render_json, render_text
from repro.analysis.runner import lint_paths, lint_sources
from repro.analysis.visitor import ModuleInfo

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "baseline_from_findings",
    "default_checkers",
    "lint_paths",
    "lint_sources",
    "render_json",
    "render_text",
]
