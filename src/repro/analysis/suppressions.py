"""Inline suppression comments for repro-lint.

Three forms, all spelled in a line's comment:

**Trailing pragma** — covers findings on its own physical line::

    ...  # repro-lint: disable=RPL002
    ...  # repro-lint: disable=RPL001,RPL005
    ...  # repro-lint: disable          (all rules)

**Comment-only pragma** — covers the first code line below its comment
block, so long statements can carry the pragma and its justification
above them::

    # repro-lint: disable=RPL002 -- canonical sort happens downstream,
    # see ground_rule().
    for atom in database.atoms_of(literal.predicate):

**Block scope** — a comment-only ``disable`` that is later closed by a
comment-only ``enable`` covers every line in between.  Scopes form a
*stack*: an inner ``disable``/``enable`` pair for the same rule nests
inside an outer one, and the inner ``enable`` closes only the inner
scope — the outer disable stays in force until its own ``enable``::

    # repro-lint: disable=RPL002 -- outer: whole merge is order-audited
    ...
    # repro-lint: disable=RPL002 -- inner: plus this one loop
    ...
    # repro-lint: enable=RPL002   (closes the inner scope only)
    ...                           (RPL002 still disabled here)
    # repro-lint: enable=RPL002   (closes the outer scope)

A bare ``enable`` closes the innermost open scope for all of its rules
(bare ``disable`` blocks are closed by bare ``enable``; a *named*
``enable`` only closes scopes that name the rule explicitly).  A
``disable`` scope never closed by an ``enable`` degrades to the
comment-only behaviour (next code line only), so a forgotten ``enable``
cannot silently disable a rule for the rest of the file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>disable|enable)"
    r"(?:=(?P<rules>[A-Z0-9,\s]+))?",
)

#: Sentinel rule set meaning "every rule".
ALL_RULES = frozenset({"*"})


@dataclass
class _Scope:
    """One comment-only ``disable``: a potential block scope."""

    tokens: frozenset[str]
    start: int
    #: token -> line of the ``enable`` that closed it.
    closed: dict[str, int] = field(default_factory=dict)

    def open_tokens(self) -> frozenset[str]:
        return self.tokens - frozenset(self.closed)


def _parse_rules(raw: str | None) -> frozenset[str]:
    if raw is None:
        return ALL_RULES
    rules = frozenset(
        token for token in (t.strip() for t in raw.split(",")) if token
    )
    return rules or ALL_RULES


def parse_suppressions(lines) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule IDs suppressed on that line."""
    lines = list(lines)
    table: dict[int, frozenset[str]] = {}
    #: every comment-only disable ever seen, in file order — the
    #: innermost-open scan walks it in reverse, which is exactly the
    #: stack the nesting semantics need.
    scopes: list[_Scope] = []

    def shield(lineno: int, rules) -> None:
        table[lineno] = table.get(lineno, frozenset()) | frozenset(rules)

    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if not match:
            continue
        verb = match.group("verb")
        rules = _parse_rules(match.group("rules"))
        comment_only = text.strip().startswith("#")
        if verb == "disable":
            shield(lineno, rules)
            if comment_only:
                scopes.append(_Scope(tokens=rules, start=lineno))
        elif comment_only:  # enable (a trailing enable has no meaning)
            if rules is ALL_RULES or rules == ALL_RULES:
                # Bare enable: close the innermost scope with anything open.
                for scope in reversed(scopes):
                    still_open = scope.open_tokens()
                    if still_open:
                        for token in still_open:
                            scope.closed[token] = lineno
                        break
            else:
                # Per rule, close the innermost scope still holding it;
                # outer scopes for the same rule stay open — that stack
                # discipline is the nesting fix.
                for token in sorted(rules):
                    for scope in reversed(scopes):
                        if token in scope.open_tokens():
                            scope.closed[token] = lineno
                            break

    for scope in scopes:
        for token, end in scope.closed.items():
            # Closed block scope: cover the whole region, pragma lines
            # inclusive.
            for lineno in range(scope.start, end + 1):
                shield(lineno, {token})
        leftover = scope.open_tokens()
        if leftover:
            # Unclosed (or classic) comment-only pragma: cover the first
            # code line below the comment block.
            nxt = scope.start  # 0-based index of the following line
            while nxt < len(lines) and lines[nxt].strip().startswith("#"):
                shield(nxt + 1, leftover)
                nxt += 1
            shield(nxt + 1, leftover)
    return table


def is_suppressed(table: dict[int, frozenset[str]], line: int, rule: str) -> bool:
    rules = table.get(line)
    if not rules:
        return False
    return "*" in rules or rule in rules
