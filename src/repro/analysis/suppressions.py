"""Inline suppression comments for repro-lint.

Syntax, anywhere in a line's trailing comment::

    ...  # repro-lint: disable=RPL002
    ...  # repro-lint: disable=RPL001,RPL005
    ...  # repro-lint: disable          (all rules)

A suppression applies to findings reported on its own physical line.
A line that is *only* a suppression comment instead covers the first
code line below it (skipping further comment lines), so long statements
can carry the pragma — and its justification — above them::

    # repro-lint: disable=RPL002 -- canonical sort happens downstream,
    # see ground_rule().
    for atom in database.atoms_of(literal.predicate):
"""

from __future__ import annotations

import re

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<rules>[A-Z0-9,\s]+))?",
)

#: Sentinel rule set meaning "every rule".
ALL_RULES = frozenset({"*"})


def parse_suppressions(lines) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule IDs suppressed on that line."""
    lines = list(lines)
    table: dict[int, frozenset[str]] = {}

    def shield(lineno: int, rules: frozenset[str]) -> None:
        table[lineno] = table.get(lineno, frozenset()) | rules

    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if not match:
            continue
        raw = match.group("rules")
        if raw is None:
            rules = ALL_RULES
        else:
            rules = frozenset(
                token for token in (t.strip() for t in raw.split(",")) if token
            )
            if not rules:
                rules = ALL_RULES
        shield(lineno, rules)
        # A comment-only pragma shields the first code line below it,
        # skipping over the rest of its own comment block.
        if text.strip().startswith("#"):
            nxt = lineno  # 0-based index of the following line
            while nxt < len(lines) and lines[nxt].strip().startswith("#"):
                shield(nxt + 1, rules)
                nxt += 1
            shield(nxt + 1, rules)
    return table


def is_suppressed(table: dict[int, frozenset[str]], line: int, rule: str) -> bool:
    rules = table.get(line)
    if not rules:
        return False
    return "*" in rules or rule in rules
