"""Forward dataflow engine for the flow-aware (RPL01x) lint rules.

The engine runs a small abstract interpretation over each function
body, propagating a four-fact lattice:

* ``UNPICKLABLE``   — the value cannot cross a process boundary
  (lambdas, nested functions/closures, objects holding them).
* ``SEGMENT_OWNER`` — the value owns a shared-memory segment's
  lifecycle (``SharedMemory(create=True)`` or a ``SharedSegmentOwner``
  subclass instance).
* ``LOCK_HELD``     — the value is a lock currently held (used by the
  lock-order pass to seed acquisition contexts).
* ``STAGED_VIEW``   — the value aliases memory staged into a shared
  segment (``.buf`` views, staging-call results); mutating it bypasses
  the ``write_weights``/``state_token`` protocol.

Values are :class:`AbstractValue`: a frozenset of facts plus, per
fact, a **witness chain** — the ``(path, line, note)`` steps the fact
travelled through.  ``join`` is set union with deterministic
shortest-chain selection, so the lattice is a finite-height join
semilattice and every fixed-point loop terminates.

Interprocedural propagation uses **parameter-polymorphic summaries**
instantiated per call site: a function is analysed once with each
parameter bound to a synthetic ``PARAM<i>`` marker; at a call site the
marker facts are substituted with the actual argument values, which
gives ``k=1`` call-site context sensitivity without re-analysing the
callee per context.  Recursive cycles are solved by iterating a
function's summary from bottom until stable (bounded by the lattice
height).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    FunctionId,
    FunctionInfo,
    Project,
)
from repro.analysis.visitor import call_keyword, terminal_name

#: The concrete facts the RPL01x rules consume.
FACTS = ("UNPICKLABLE", "SEGMENT_OWNER", "LOCK_HELD", "STAGED_VIEW")

#: Witness chains are capped so pathological call graphs cannot grow
#: them without bound (termination + readable messages).
MAX_CHAIN_STEPS = 12

#: Class names whose instances own a shared segment's lifecycle (kept
#: in sync with the syntactic RPL003 checker).
SEGMENT_OWNER_CLASSES = frozenset(
    {"SharedSegmentOwner", "SharedPartitionBuffers", "SharedSolveState"}
)

#: Calls whose result aliases shared staged memory.
STAGING_CALLS = frozenset({"ndarray", "frombuffer", "as_view"})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


#: One provenance step: (path, 1-based line, human note).
ChainStep = tuple[str, int, str]


@dataclass(frozen=True)
class AbstractValue:
    """A join-semilattice element: facts plus per-fact witness chains.

    ``origins`` is a sorted tuple of ``(fact, chain)`` pairs — kept as
    a tuple (not a dict) so values hash and compare structurally, which
    the fixed-point loops rely on.
    """

    facts: frozenset[str] = frozenset()
    origins: tuple[tuple[str, tuple[ChainStep, ...]], ...] = ()

    def chain(self, fact: str) -> tuple[ChainStep, ...]:
        for name, chain in self.origins:
            if name == fact:
                return chain
        return ()

    def has(self, fact: str) -> bool:
        return fact in self.facts

    def is_bottom(self) -> bool:
        return not self.facts


BOTTOM = AbstractValue()


def value_of(fact: str, step: ChainStep) -> AbstractValue:
    """A single-fact value born at *step*."""
    return AbstractValue(facts=frozenset({fact}), origins=((fact, (step,)),))


def _best_chain(
    a: tuple[ChainStep, ...], b: tuple[ChainStep, ...]
) -> tuple[ChainStep, ...]:
    """Deterministic choice between two witness chains for one fact.

    Shortest wins; ties break lexicographically, so ``join`` is
    commutative and idempotent no matter the argument order.
    """
    if not a:
        return b
    if not b:
        return a
    return min(a, b, key=lambda chain: (len(chain), chain))


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: union of facts, best witness chain per fact."""
    if a is BOTTOM or a.facts == frozenset():
        return b
    if b is BOTTOM or b.facts == frozenset():
        return a
    facts = a.facts | b.facts
    origins = tuple(
        sorted(
            (fact, _best_chain(a.chain(fact), b.chain(fact)))
            for fact in facts
        )
    )
    return AbstractValue(facts=facts, origins=origins)


def join_all(values) -> AbstractValue:
    result = BOTTOM
    for value in values:
        result = join(result, value)
    return result


def extend(value: AbstractValue, step: ChainStep) -> AbstractValue:
    """Append *step* to every fact's witness chain (chain-length capped)."""
    if value.is_bottom():
        return value
    origins = []
    for fact, chain in value.origins:
        if len(chain) < MAX_CHAIN_STEPS and (not chain or chain[-1] != step):
            chain = chain + (step,)
        origins.append((fact, chain))
    return AbstractValue(facts=value.facts, origins=tuple(sorted(origins)))


def strip_facts(value: AbstractValue, prefix: str) -> AbstractValue:
    """Remove every fact starting with *prefix* (PARAM marker cleanup)."""
    facts = frozenset(f for f in value.facts if not f.startswith(prefix))
    origins = tuple(
        (fact, chain) for fact, chain in value.origins if fact in facts
    )
    return AbstractValue(facts=facts, origins=origins)


# ----------------------------------------------------------------------
# function summaries


def _param_fact(index: int) -> str:
    return f"PARAM{index}"


@dataclass(frozen=True)
class Summary:
    """What a function does to the facts that flow through it.

    * ``returns`` — facts *generated inside* the function that flow to
      its return value (chains rooted at the generating line).
    * ``return_params`` — parameter indices whose value flows to the
      return (so argument facts propagate through the call).
    * ``released_params`` / ``mutated_params`` — parameter indices on
      which a release (``close``/``release``/``unlink``) or a direct
      mutation (subscript/attribute store, ``fill``) happens, possibly
      transitively through further calls.
    * ``returns_fresh_segment`` — convenience flag: the return value
      carries ``SEGMENT_OWNER`` born inside this function (ownership
      transfers to the caller).
    """

    returns: AbstractValue = BOTTOM
    return_params: frozenset[int] = frozenset()
    released_params: frozenset[int] = frozenset()
    mutated_params: frozenset[int] = frozenset()

    @property
    def returns_fresh_segment(self) -> bool:
        return self.returns.has("SEGMENT_OWNER")


EMPTY_SUMMARY = Summary()


@dataclass
class _FnState:
    """Mutable per-analysis state threaded through the interpreter."""

    fn: FunctionInfo
    returns: AbstractValue = BOTTOM
    released: set[str] = field(default_factory=set)
    mutated: set[str] = field(default_factory=set)
    #: name -> earliest line where a release on it was observed.
    released_at: dict[str, int] = field(default_factory=dict)
    #: (name, line, description) for each in-place mutation event, in
    #: visit order (the RPL013 pass consumes these).
    mutation_events: list[tuple[str, int, str]] = field(default_factory=list)

    def note_release(self, name: str, line: int) -> None:
        self.released.add(name)
        previous = self.released_at.get(name)
        if previous is None or line < previous:
            self.released_at[name] = line

    def note_mutation(self, name: str, line: int, what: str) -> None:
        self.mutated.add(name)
        self.mutation_events.append((name, line, what))


class DataflowEngine:
    """Summary computation + per-function abstract interpretation."""

    #: method names that release a segment owner.
    release_methods = frozenset({"close", "release", "unlink", "shutdown"})
    #: method names that mutate their receiver in place.
    mutating_methods = frozenset(
        {"fill", "sort", "append", "extend", "update", "setdefault", "pop",
         "clear", "resize"}
    )

    def __init__(self, project: Project):
        self.project = project
        self._summaries: dict[FunctionId, Summary] = {}
        self._in_progress: set[FunctionId] = set()
        #: cycle members whose cached summary was computed against a
        #: *partial* summary of another cycle member — evicted when the
        #: cycle root stabilises so they recompute against the final one.
        self._provisional: set[FunctionId] = set()

    # ------------------------------------------------------------------
    # summaries

    def summary(self, fid: FunctionId) -> Summary:
        if fid in self._in_progress:
            # Recursive cycle: the caller iterates us to a fixed point.
            # Everything currently on the stack saw a partial summary —
            # mark it provisional so the caches get re-derived once the
            # cycle root is final.  (Checked *before* the cache: the
            # iteration loop stores partials there for exactly this
            # read, and a partial must not look final.)
            self._provisional.update(self._in_progress)
            return self._summaries.get(fid, EMPTY_SUMMARY)
        cached = self._summaries.get(fid)
        if cached is not None:
            return cached
        fn = self.project.function(fid)
        if fn is None:
            return EMPTY_SUMMARY
        self._in_progress.add(fid)
        try:
            # Iterate from bottom until stable — facts are monotone and
            # chain selection deterministic, so this converges; the cap
            # is a belt over the lattice-height argument.
            current = EMPTY_SUMMARY
            for _ in range(5):
                self._summaries[fid] = current
                computed = self._compute_summary(fn)
                if computed == current:
                    break
                current = computed
            self._summaries[fid] = current
            return current
        finally:
            self._in_progress.discard(fid)
            if not self._in_progress and self._provisional:
                # Cycle root stabilised: evict every other member's
                # provisional cache so the next query recomputes it
                # against the root's final summary (re-entry cannot
                # loop — the root is cached, so no new back edge).
                for member in self._provisional - {fid}:
                    self._summaries.pop(member, None)
                self._provisional.clear()

    def _compute_summary(self, fn: FunctionInfo) -> Summary:
        params = fn.param_names()
        env: dict[str, AbstractValue] = {}
        here = fn.module.path
        for index, name in enumerate(params):
            step = (here, fn.node.lineno, f"parameter '{name}' of {fn.name}()")
            env[name] = value_of(_param_fact(index), step)
        state = _FnState(fn=fn)
        self._exec_block(fn.node.body, env, state)

        return_params = frozenset(
            index
            for index in range(len(params))
            if state.returns.has(_param_fact(index))
        )
        released = frozenset(
            index for index, name in enumerate(params) if name in state.released
        )
        mutated = frozenset(
            index for index, name in enumerate(params) if name in state.mutated
        )
        return Summary(
            returns=strip_facts(state.returns, "PARAM"),
            return_params=return_params,
            released_params=released,
            mutated_params=mutated,
        )

    # ------------------------------------------------------------------
    # public per-function evaluation (used by the rules)

    def eval_in_function(
        self, fn: FunctionInfo, expr: ast.AST
    ) -> AbstractValue:
        """Abstract value of *expr* at its occurrence inside *fn*.

        Runs the interpreter over *fn* with parameters fact-free and
        reads the expression off in the final environment.  Good enough
        for rule queries anchored at specific sites (map calls,
        initializer kwargs): the environment is flow-joined over the
        whole body, which over- rather than under-approximates.
        """
        env, _state = self.function_state(fn)
        return self._eval(expr, dict(env), _FnState(fn=fn))

    def function_state(
        self, fn: FunctionInfo
    ) -> tuple[dict[str, AbstractValue], _FnState]:
        """Cached (final environment, event state) of one full-body run.

        Parameters are fact-free here (the summary path binds PARAM
        markers instead); the event state carries every release and
        mutation observed, with line numbers, for the RPL011/RPL013
        passes.
        """
        cache = getattr(self, "_state_cache", None)
        if cache is None:
            cache = self._state_cache = {}
        if fn.id not in cache:
            env: dict[str, AbstractValue] = {}
            state = _FnState(fn=fn)
            self._exec_block(fn.node.body, env, state)
            cache[fn.id] = (env, state)
        return cache[fn.id]

    # ------------------------------------------------------------------
    # the interpreter

    def _exec_block(
        self,
        stmts,
        env: dict[str, AbstractValue],
        state: _FnState,
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, state)

    def _exec_stmt(self, stmt, env, state) -> None:
        here = state.fn.module.path
        if isinstance(stmt, _FUNCTION_NODES):
            env[stmt.name] = value_of(
                "UNPICKLABLE",
                (here, stmt.lineno,
                 f"nested function '{stmt.name}' defined here (a closure "
                 "cannot cross a process boundary)"),
            )
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, state)
            for target in stmt.targets:
                self._bind(target, value, env, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._eval(stmt.value, env, state), env, state)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env, state)
            self._note_mutation(stmt.target, env, state)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = join(
                    env.get(stmt.target.id, BOTTOM), value
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                state.returns = join(
                    state.returns, self._eval(stmt.value, env, state)
                )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, state)
        elif isinstance(stmt, ast.If):
            before = dict(env)
            self._exec_block(stmt.body, env, state)
            other = dict(before)
            self._exec_block(stmt.orelse, other, state)
            _join_envs(env, other)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env, state)
            self._bind(stmt.target, BOTTOM, env, state)
            # Two passes reach the loop-carried fixed point for this
            # lattice (facts only accumulate).
            for _ in range(2):
                body_env = dict(env)
                self._exec_block(stmt.body, body_env, state)
                _join_envs(env, body_env)
            self._exec_block(stmt.orelse, env, state)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env, state)
            for _ in range(2):
                body_env = dict(env)
                self._exec_block(stmt.body, body_env, state)
                _join_envs(env, body_env)
            self._exec_block(stmt.orelse, env, state)
        elif isinstance(stmt, ast.Try):
            before = dict(env)
            self._exec_block(stmt.body, env, state)
            # Handlers may run from any point in the body: start them
            # from the join of entry and post-body states.
            _join_envs(env, before)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec_block(handler.body, handler_env, state)
                _join_envs(env, handler_env)
            self._exec_block(stmt.orelse, env, state)
            self._exec_block(stmt.finalbody, env, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env, state)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env, state)
            self._exec_block(stmt.body, env, state)
        elif isinstance(stmt, (ast.Delete, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, env, state)
        # Pass/Import/Global/Nonlocal/Break/Continue: no fact effect.

    def _bind(self, target, value, env, state) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value, env, state)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._note_mutation(target, env, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value, env, state)

    def _note_mutation(self, target, env, state) -> None:
        """Record a store *through* a name (``x.attr = ...``/``x[i] = ...``)."""
        base = target
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        name = terminal_name(base) if not isinstance(base, ast.Name) else base.id
        if name is not None:
            what = (
                "subscript store" if isinstance(target, ast.Subscript)
                else "attribute store"
            )
            state.note_mutation(name, getattr(target, "lineno", 0), what)

    # ------------------------------------------------------------------
    # expressions

    def _eval(self, expr, env, state) -> AbstractValue:
        here = state.fn.module.path
        if isinstance(expr, ast.Name):
            return env.get(expr.id, BOTTOM)
        if isinstance(expr, ast.Lambda):
            return value_of(
                "UNPICKLABLE",
                (here, expr.lineno, "lambda defined here (lambdas cannot "
                 "cross a process boundary)"),
            )
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, state)
        if isinstance(expr, ast.Attribute):
            base = self._eval(expr.value, env, state)
            if expr.attr == "buf" and base.has("SEGMENT_OWNER"):
                return join(
                    extend(
                        AbstractValue(
                            frozenset({"STAGED_VIEW"}),
                            (("STAGED_VIEW", base.chain("SEGMENT_OWNER")),),
                        ),
                        (here, expr.lineno, "view of the shared segment "
                         "taken here (.buf)"),
                    ),
                    base,
                )
            # A bound method / attribute of an unpicklable or staged
            # object carries the taint; segment *ownership* does not
            # transfer to attribute reads.
            kept = base.facts & {"UNPICKLABLE", "STAGED_VIEW"}
            if not kept:
                return BOTTOM
            origins = tuple(
                (fact, chain) for fact, chain in base.origins
                if fact in kept or fact.startswith("PARAM")
            )
            kept = kept | {f for f in base.facts if f.startswith("PARAM")}
            return AbstractValue(facts=frozenset(kept), origins=origins)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return join_all(self._eval(e, env, state) for e in expr.elts)
        if isinstance(expr, ast.Dict):
            return join_all(
                self._eval(e, env, state)
                for e in (*expr.keys, *expr.values)
                if e is not None
            )
        if isinstance(expr, (ast.IfExp,)):
            return join(
                self._eval(expr.body, env, state),
                self._eval(expr.orelse, env, state),
            )
        if isinstance(expr, ast.BoolOp):
            return join_all(self._eval(v, env, state) for v in expr.values)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, env, state)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env, state)
        if isinstance(expr, ast.NamedExpr):
            value = self._eval(expr.value, env, state)
            self._bind(expr.target, value, env, state)
            return value
        if isinstance(expr, ast.Subscript):
            # Indexing a staged view yields a staged view; indexing a
            # container of unpicklables yields an unpicklable.
            base = self._eval(expr.value, env, state)
            kept = base.facts & {"UNPICKLABLE", "STAGED_VIEW"}
            kept |= {f for f in base.facts if f.startswith("PARAM")}
            if not kept:
                return BOTTOM
            return AbstractValue(
                facts=frozenset(kept),
                origins=tuple(
                    (f, c) for f, c in base.origins if f in kept
                ),
            )
        # Constants, comparisons, arithmetic, f-strings, comprehensions:
        # no fact flow we track.
        return BOTTOM

    def _eval_call(self, call: ast.Call, env, state) -> AbstractValue:
        fn = state.fn
        here = fn.module.path
        callee_name = terminal_name(call.func)

        # --- intrinsic fact generators -------------------------------
        if callee_name == "SharedMemory":
            kw = call_keyword(call, "create")
            if kw is not None and isinstance(kw.value, ast.Constant) and kw.value.value is True:
                return value_of(
                    "SEGMENT_OWNER",
                    (here, call.lineno,
                     "SharedMemory(create=True) allocated here"),
                )
            return BOTTOM
        if callee_name in ("Lock", "RLock"):
            return value_of(
                "LOCK_HELD", (here, call.lineno, f"{callee_name}() created here")
            )
        if callee_name == "partial":
            # partial(fn, *args): unpicklable fn or args poison the result.
            inner = join_all(
                self._eval(arg, env, state)
                for arg in (*call.args, *(kw.value for kw in call.keywords))
            )
            return extend(
                inner, (here, call.lineno, "wrapped in functools.partial here")
            ) if not inner.is_bottom() else BOTTOM
        if callee_name in STAGING_CALLS and call_keyword(call, "buffer") is not None:
            buffer_value = self._eval(call_keyword(call, "buffer").value, env, state)
            if buffer_value.has("SEGMENT_OWNER") or buffer_value.has("STAGED_VIEW"):
                return extend(
                    AbstractValue(
                        frozenset({"STAGED_VIEW"}),
                        (("STAGED_VIEW",
                          buffer_value.chain("SEGMENT_OWNER")
                          or buffer_value.chain("STAGED_VIEW")),),
                    ),
                    (here, call.lineno,
                     f"array view over the shared buffer built here "
                     f"({callee_name}(buffer=...))"),
                )

        # --- constructor of a segment-owner class --------------------
        if callee_name is not None and self.project.class_has_base(
            callee_name, SEGMENT_OWNER_CLASSES
        ):
            return value_of(
                "SEGMENT_OWNER",
                (here, call.lineno,
                 f"segment owner {callee_name}(...) constructed here"),
            )

        # --- project-function calls: instantiate the summary ---------
        targets = self.project.resolve_call(fn.module, call, fn.class_name)
        arg_values = [self._eval(arg, env, state) for arg in call.args]
        for kw in call.keywords:
            self._eval(kw.value, env, state)

        result = BOTTOM
        for target in targets:
            summary = self.summary(target)
            target_fn = self.project.function(target)
            label = target_fn.name if target_fn else str(target)
            if not summary.returns.is_bottom():
                result = join(
                    result,
                    extend(
                        summary.returns,
                        (here, call.lineno, f"returned by {label}() called here"),
                    ),
                )
            for index in summary.return_params:
                if index < len(arg_values) and not arg_values[index].is_bottom():
                    result = join(
                        result,
                        extend(
                            arg_values[index],
                            (here, call.lineno,
                             f"passed through {label}() and returned here"),
                        ),
                    )
            # Transitive release/mutation of our own names through the call.
            for index in summary.released_params:
                if index < len(call.args) and isinstance(call.args[index], ast.Name):
                    state.note_release(call.args[index].id, call.lineno)
            for index in summary.mutated_params:
                if index < len(call.args) and isinstance(call.args[index], ast.Name):
                    state.note_mutation(
                        call.args[index].id, call.lineno,
                        f"mutated inside {label}()",
                    )

        # --- method calls on our own names ---------------------------
        if isinstance(call.func, ast.Attribute):
            receiver = call.func.value
            receiver_name = (
                receiver.id if isinstance(receiver, ast.Name) else None
            )
            if receiver_name is not None:
                if call.func.attr in self.release_methods:
                    state.note_release(receiver_name, call.lineno)
                if call.func.attr in self.mutating_methods:
                    state.note_mutation(
                        receiver_name, call.lineno, f".{call.func.attr}(...)"
                    )
            if not targets:
                # Opaque method call: taint still flows receiver->result
                # for the picklability/staging facts.
                base = self._eval(receiver, env, state)
                kept = base.facts & {"UNPICKLABLE", "STAGED_VIEW"}
                kept |= {f for f in base.facts if f.startswith("PARAM")}
                if kept:
                    result = join(
                        result,
                        AbstractValue(
                            facts=frozenset(kept),
                            origins=tuple(
                                (f, c) for f, c in base.origins if f in kept
                            ),
                        ),
                    )
        return result


def _join_envs(into: dict[str, AbstractValue], other: dict[str, AbstractValue]) -> None:
    for name, value in other.items():
        into[name] = join(into.get(name, BOTTOM), value)


def render_chain(chain: tuple[ChainStep, ...]) -> str:
    """One-line rendering of a witness chain for finding messages."""
    return " -> ".join(f"{path}:{line} ({note})" for path, line, note in chain)


def chain_lines(chain: tuple[ChainStep, ...]) -> list[str]:
    """Multi-line rendering used by the text reporter."""
    return [f"  via {path}:{line}: {note}" for path, line, note in chain]
