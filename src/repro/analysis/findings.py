"""Structured findings emitted by the repro lint checkers.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately flat and JSON-able: the reporters serialize findings
verbatim, the baseline matches them by ``(file, rule)``, and tests
compare them structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def normalize_path(path: str) -> str:
    """Forward-slash form of *path* (findings compare across platforms)."""
    return str(path).replace("\\", "/")


@dataclass(frozen=True)
class Finding:
    """One rule violation: where it is, which rule, and why it matters."""

    rule: str  # "RPL001"..."RPL005"
    message: str
    path: str  # normalized (forward slashes), as scanned
    line: int  # 1-based
    col: int = 0  # 0-based, like ast
    #: True once the baseline grandfathers this finding (set by the runner).
    baselined: bool = field(default=False, compare=False)

    def located(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "baselined": self.baselined,
        }

    def __str__(self) -> str:
        return f"{self.located()}: {self.rule} {self.message}"
