"""Structured findings emitted by the repro lint checkers.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately flat and JSON-able: the reporters serialize findings
verbatim, the baseline matches them by ``(file, rule)``, and tests
compare them structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def normalize_path(path: str) -> str:
    """Forward-slash form of *path* (findings compare across platforms)."""
    return str(path).replace("\\", "/")


@dataclass(frozen=True)
class Finding:
    """One rule violation: where it is, which rule, and why it matters."""

    rule: str  # "RPL001"..."RPL013"
    message: str
    path: str  # normalized (forward slashes), as scanned
    line: int  # 1-based
    col: int = 0  # 0-based, like ast
    #: Witness call chain for flow (RPL01x) findings: ordered
    #: ``(path, line, note)`` steps from where the fact was born to the
    #: flagged site.  Empty for the syntactic RPL00x rules.
    chain: tuple[tuple[str, int, str], ...] = ()
    #: True once the baseline grandfathers this finding (set by the runner).
    baselined: bool = field(default=False, compare=False)

    def located(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def chain_text(self) -> list[str]:
        """The witness chain as indented reporter lines."""
        return [
            f"    via {normalize_path(path)}:{line}: {note}"
            for path, line, note in self.chain
        ]

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "message": self.message,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "chain": [
                {"file": normalize_path(path), "line": line, "note": note}
                for path, line, note in self.chain
            ],
            "baselined": self.baselined,
        }

    def __str__(self) -> str:
        body = f"{self.located()}: {self.rule} {self.message}"
        if self.chain:
            body = "\n".join([body, *self.chain_text()])
        return body
