"""Module model shared by all repro-lint checkers.

:class:`ModuleInfo` wraps one parsed source file and precomputes the
facts every checker needs: parent links on each AST node, the set of
module-level function names, imported names/modules, and helpers for
resolving attribute chains and local bindings.  Checkers stay small
because the structural queries live here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from functools import cached_property

from repro.analysis.findings import normalize_path

_PARENT = "_repro_parent"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNCTION_NODES + (ast.ClassDef, ast.Lambda)

#: Comprehension node types whose ``generators`` iterate a source.
COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def attach_parents(tree: ast.AST) -> None:
    """Link every node to its parent via a private attribute."""
    for parent_node in ast.walk(tree):
        for child in ast.iter_child_nodes(parent_node):
            setattr(child, _PARENT, parent_node)


def parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST):
    """Yield enclosing nodes from the immediate parent outward."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def enclosing_function(node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for anc in ancestors(node):
        if isinstance(anc, _FUNCTION_NODES):
            return anc
    return None


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    for anc in ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc
    return None


def terminal_name(expr: ast.AST) -> str | None:
    """The last identifier of an expression: ``a.b.c`` -> "c", ``f()`` -> "f"."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return terminal_name(expr.func)
    if isinstance(expr, ast.Await):
        return terminal_name(expr.value)
    return None


def dotted_name(expr: ast.AST) -> str | None:
    """Best-effort dotted form of a Name/Attribute chain, else ``None``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = dotted_name(expr.value)
        return f"{base}.{expr.attr}" if base else None
    return None


def call_keyword(call: ast.Call, name: str) -> ast.keyword | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw
    return None


def statements_of(scope: ast.AST):
    """Walk statements in *scope* without descending into nested defs."""
    stack = list(getattr(scope, "body", []))
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, _SCOPE_NODES):
            continue
        for child_field in ("body", "orelse", "finalbody"):
            extra = getattr(stmt, child_field, None)
            if extra:
                stack.extend(extra)
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(handler.body)


@dataclass
class ModuleInfo:
    """One parsed module plus the precomputed facts checkers query."""

    path: str
    source: str
    tree: ast.Module = field(repr=False)

    def __post_init__(self) -> None:
        self.path = normalize_path(self.path)
        attach_parents(self.tree)

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleInfo":
        return cls(path=path, source=source, tree=ast.parse(source))

    def matches(self, patterns) -> bool:
        """True when the module path matches any fnmatch *pattern*."""
        return any(fnmatch(self.path, pat) for pat in patterns)

    @cached_property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    @cached_property
    def module_functions(self) -> frozenset[str]:
        """Names bound to ``def`` at module top level (picklable targets)."""
        names = set()
        for stmt in self.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                names.add(stmt.name)
        return frozenset(names)

    @cached_property
    def imported_names(self) -> frozenset[str]:
        """Local names introduced by any ``import``/``from ... import``."""
        names = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.asname or alias.name)
        return frozenset(names)

    @cached_property
    def imported_modules(self) -> frozenset[str]:
        """Fully dotted modules this file imports (either import form)."""
        modules = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    modules.add(alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules.add(node.module)
                for alias in node.names:
                    modules.add(f"{node.module}.{alias.name}")
        return frozenset(modules)

    def imports_module(self, dotted: str) -> bool:
        return any(
            mod == dotted or mod.startswith(dotted + ".")
            for mod in self.imported_modules
        )

    def is_module_level_callable(self, name: str) -> bool:
        """Picklable by reference: a top-level ``def`` or an imported name."""
        return name in self.module_functions or name in self.imported_names

    def local_bindings(self, scope: ast.AST) -> dict[str, list[ast.AST]]:
        """Name -> values assigned within *scope* (no nested defs)."""
        bindings: dict[str, list[ast.AST]] = {}
        for stmt in statements_of(scope):
            targets: list[ast.AST] = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    bindings.setdefault(target.id, []).append(value)
        return bindings

    def local_function_defs(self, scope: ast.AST) -> frozenset[str]:
        """Names of functions defined *inside* a function (unpicklable)."""
        names = set()
        for stmt in getattr(scope, "body", []):
            if isinstance(stmt, _FUNCTION_NODES):
                names.add(stmt.name)
        return frozenset(names)
