"""Project-wide import and call graph for the flow-aware lint layer.

The syntactic RPL00x checkers judge one module at a time; the RPL01x
flow rules need to follow a value through calls that cross module
boundaries.  This module builds the substrate they share:

* :class:`Project` — every scanned module indexed by dotted name, with
  all module-level functions, classes, and methods registered as
  :class:`FunctionInfo` records keyed by :class:`FunctionId`.
* Per-module *import maps* (local name -> dotted target) so a call
  spelled ``sharding.ground_shards(...)`` in one file resolves to the
  ``def`` in another.
* :meth:`Project.resolve_call` — best-effort resolution of a call
  expression to candidate targets, with a **conservative fallback for
  dynamic dispatch**: an attribute call on an unknown receiver resolves
  to every same-named method in the project, provided that set is small
  enough to stay meaningful (bounded by
  :data:`DYNAMIC_DISPATCH_FANOUT`); past the bound the call is treated
  as opaque rather than guessing.

Resolution is deliberately *sound for the lattice we run on it*: when a
call cannot be resolved, the dataflow engine treats the result as
fact-free (bottom), so unresolved dynamic dispatch can hide a finding
but never invent one — the same "stay silent rather than cry wolf"
contract the syntactic layer follows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.visitor import ModuleInfo, terminal_name

#: Maximum number of same-named methods an attribute call on an unknown
#: receiver may resolve to.  Above this the name is too generic (think
#: ``close``/``map``) for "every method of that name" to approximate the
#: real callee set, and the call is treated as opaque instead.
DYNAMIC_DISPATCH_FANOUT = 6

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source *path*.

    ``src/repro/psl/admm.py`` -> ``repro.psl.admm``;
    ``benchmarks/bench_x.py`` -> ``benchmarks.bench_x``;
    ``pkg/__init__.py`` -> ``pkg``.  A leading ``src`` component (any
    depth of absolute prefix before it) is dropped, matching the
    repo's ``pythonpath=src`` layout.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # Absolute/relative prefixes outside the tree contribute noise
        # ("/root/repo/benchmarks/x" -> "benchmarks.x"): keep the suffix
        # from the last component that looks like a package root.
        for anchor in ("repro", "benchmarks", "tests"):
            if anchor in parts:
                parts = parts[parts.index(anchor) :]
                break
    return ".".join(p for p in parts if p)


@dataclass(frozen=True)
class FunctionId:
    """Stable identity of one function or method in the project."""

    module: str  # dotted module name
    qualname: str  # "fn" or "Cls.fn"

    def __str__(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass
class FunctionInfo:
    """One ``def`` plus the context the dataflow engine needs."""

    id: FunctionId
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: ModuleInfo
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names += [a.arg for a in args.kwonlyargs]
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class CallSite:
    """One call expression inside a function, with resolved targets."""

    caller: FunctionId
    call: ast.Call
    targets: tuple[FunctionId, ...]  # empty = unresolved/opaque


@dataclass
class Project:
    """Every scanned module plus the cross-module indexes."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[FunctionId, FunctionInfo] = field(default_factory=dict)
    #: method/function name -> every FunctionId carrying it (dispatch
    #: fallback index).
    by_name: dict[str, list[FunctionId]] = field(default_factory=dict)
    #: class name -> (module name, ClassDef) for constructor resolution.
    classes: dict[str, list[tuple[str, ast.ClassDef]]] = field(
        default_factory=dict
    )
    #: module name -> {local name: dotted target} import map.
    import_maps: dict[str, dict[str, str]] = field(default_factory=dict)
    #: dotted-name resolution memo (top-level lookups only).
    _lookup_cache: dict[str, "FunctionId | None"] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_modules(cls, modules: list[ModuleInfo]) -> "Project":
        project = cls()
        for module in modules:
            project._index_module(module)
        return project

    def _index_module(self, module: ModuleInfo) -> None:
        mod_name = module_name_for_path(module.path)
        self.modules[mod_name] = module
        self.import_maps[mod_name] = _import_map(module)
        for stmt in module.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                self._register(module, mod_name, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self.classes.setdefault(stmt.name, []).append((mod_name, stmt))
                for item in stmt.body:
                    if isinstance(item, _FUNCTION_NODES):
                        self._register(
                            module, mod_name, item, class_name=stmt.name
                        )

    def _register(
        self,
        module: ModuleInfo,
        mod_name: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        fid = FunctionId(module=mod_name, qualname=qualname)
        self.functions[fid] = FunctionInfo(
            id=fid, node=node, module=module, class_name=class_name
        )
        self.by_name.setdefault(node.name, []).append(fid)

    # ------------------------------------------------------------------
    # lookup

    def function(self, fid: FunctionId) -> FunctionInfo | None:
        return self.functions.get(fid)

    def lookup_dotted(
        self, dotted: str, _seen: frozenset[str] = frozenset()
    ) -> FunctionId | None:
        """Resolve ``pkg.mod.fn`` / ``pkg.mod.Cls.meth`` to a FunctionId.

        Also follows re-export hops through package ``__init__`` files
        (``from .sub import fn``), which is how ``repro.selection``
        republishes ``solve_collective``.  ``_seen`` breaks re-export
        cycles (``a`` imports from ``b`` which imports back from ``a``
        — real in circular-import workarounds).
        """
        # Aliased re-exports can *grow* the dotted name each hop, so the
        # seen-set alone does not terminate — cap the hop depth too.
        if dotted in _seen or len(_seen) > 16:
            return None
        top_level = not _seen
        if top_level and dotted in self._lookup_cache:
            return self._lookup_cache[dotted]
        _seen = _seen | {dotted}
        result: FunctionId | None = None
        for split in range(dotted.count(".") + 1, 0, -1):
            parts = dotted.split(".")
            mod, rest = ".".join(parts[:split]), ".".join(parts[split:])
            if mod not in self.modules or not rest:
                continue
            fid = FunctionId(module=mod, qualname=rest)
            if fid in self.functions:
                result = fid
                break
            # Re-export hop: the package __init__ imported the name.
            reexport = self.import_maps.get(mod, {}).get(rest.split(".")[0])
            if reexport is not None:
                tail = rest.split(".")[1:]
                target = ".".join([reexport, *tail]) if tail else reexport
                resolved = self.lookup_dotted(target, _seen)
                if resolved is not None:
                    result = resolved
                    break
        if top_level:
            self._lookup_cache[dotted] = result
        return result

    def constructor_of(self, class_name: str) -> FunctionId | None:
        """``Cls.__init__`` when the class (and its init) is in-project."""
        for mod_name, cls_node in self.classes.get(class_name, []):
            fid = FunctionId(module=mod_name, qualname=f"{class_name}.__init__")
            if fid in self.functions:
                return fid
        return None

    def class_has_base(self, class_name: str, base_names: frozenset[str]) -> bool:
        """True when *class_name* or any in-project ancestor is in *base_names*."""
        if class_name in base_names:
            return True
        seen = {class_name}
        stack = [class_name]
        while stack:
            for _mod, node in self.classes.get(stack.pop(), []):
                for base in node.bases:
                    name = terminal_name(base)
                    if name is None or name in seen:
                        continue
                    if name in base_names:
                        return True
                    seen.add(name)
                    stack.append(name)
        return False

    # ------------------------------------------------------------------
    # call resolution

    def resolve_call(
        self, module: ModuleInfo, call: ast.Call, class_name: str | None = None
    ) -> tuple[FunctionId, ...]:
        """Candidate targets of *call* as seen from *module*.

        Empty tuple means opaque: a builtin, an external library, or
        dynamic dispatch too wide to enumerate.
        """
        return self.resolve_callee_expr(module, call.func, class_name)

    def resolve_callee_expr(
        self,
        module: ModuleInfo,
        func: ast.AST,
        class_name: str | None = None,
    ) -> tuple[FunctionId, ...]:
        mod_name = module_name_for_path(module.path)
        import_map = self.import_maps.get(mod_name, {})

        if isinstance(func, ast.Name):
            name = func.id
            # Same-module def wins over a shadowed import.
            fid = FunctionId(module=mod_name, qualname=name)
            if fid in self.functions:
                return (fid,)
            if name in import_map:
                resolved = self.lookup_dotted(import_map[name])
                if resolved is not None:
                    return (resolved,)
                ctor = self.constructor_of(import_map[name].split(".")[-1])
                if ctor is not None:
                    return (ctor,)
            ctor = self.constructor_of(name)
            if ctor is not None and any(
                mod == mod_name for mod, _ in self.classes.get(name, [])
            ):
                return (ctor,)
            return ()

        if isinstance(func, ast.Attribute):
            attr = func.attr
            base = func.value
            # self.method() inside a class body.
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and class_name is not None
            ):
                resolved = self._resolve_method(class_name, attr)
                if resolved:
                    return resolved
            # module_alias.fn() through the import map.
            dotted = _dotted(base)
            if dotted is not None:
                root = dotted.split(".")[0]
                target_prefix = import_map.get(root)
                if target_prefix is not None:
                    full = ".".join(
                        [target_prefix, *dotted.split(".")[1:], attr]
                    )
                    resolved_fid = self.lookup_dotted(full)
                    if resolved_fid is not None:
                        return (resolved_fid,)
                if dotted in self.modules:
                    fid = FunctionId(module=dotted, qualname=attr)
                    if fid in self.functions:
                        return (fid,)
            # Conservative dynamic-dispatch fallback: every method of
            # that name, when the set is small enough to mean something.
            candidates = tuple(
                fid
                for fid in self.by_name.get(attr, ())
                if self.functions[fid].class_name is not None
            )
            if 0 < len(candidates) <= DYNAMIC_DISPATCH_FANOUT:
                return candidates
            return ()

        return ()

    def _resolve_method(
        self, class_name: str, attr: str
    ) -> tuple[FunctionId, ...]:
        """Resolve ``self.attr`` against *class_name* and its ancestors."""
        seen = set()
        stack = [class_name]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for mod_name, cls_node in self.classes.get(current, []):
                fid = FunctionId(
                    module=mod_name, qualname=f"{current}.{attr}"
                )
                if fid in self.functions:
                    return (fid,)
                for base in cls_node.bases:
                    name = terminal_name(base)
                    if name is not None:
                        stack.append(name)
        return ()

    # ------------------------------------------------------------------
    # iteration helpers

    def call_sites(self, fn: FunctionInfo) -> list[CallSite]:
        """Every call inside *fn*'s own body (nested defs excluded)."""
        sites = []
        for node in _walk_function_body(fn.node):
            if isinstance(node, ast.Call):
                sites.append(
                    CallSite(
                        caller=fn.id,
                        call=node,
                        targets=self.resolve_call(
                            fn.module, node, fn.class_name
                        ),
                    )
                )
        return sites


def _dotted(expr: ast.AST) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return f"{base}.{expr.attr}" if base else None
    return None


def _import_map(module: ModuleInfo) -> dict[str, str]:
    """Local name -> dotted target for every import in *module*."""
    mapping: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                # `import a.b.c` binds `a`; `import a.b.c as x` binds the
                # full dotted path to `x`.
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def _walk_function_body(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    """ast.walk over *fn* minus the bodies of nested function defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(node))
