"""Text, JSON, and GitHub-annotation reporters for repro-lint results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

REPORT_VERSION = 2
TOOL_NAME = "repro-lint"


@dataclass
class LintReport:
    """Everything one lint run produced, pre-partitioned by the runner."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)
    #: True when the whole-program RPL01x pass ran.
    flow: bool = False

    @property
    def exit_code(self) -> int:
        return 1 if self.new or self.parse_errors else 0

    def rule_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.new:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "tool": TOOL_NAME,
            "files_scanned": self.files_scanned,
            "flow": self.flow,
            "summary": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed_count,
                "by_rule": self.rule_counts(),
            },
            "parse_errors": list(self.parse_errors),
            "findings": [
                f.to_json()
                for f in sorted(
                    self.new + self.baselined,
                    key=lambda f: (f.path, f.line, f.rule),
                )
            ],
        }


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2) + "\n"


def render_text(report: LintReport) -> str:
    lines: list[str] = []
    for error in report.parse_errors:
        lines.append(f"error: {error}")
    for finding in sorted(report.new, key=lambda f: (f.path, f.line, f.rule)):
        lines.append(str(finding))
    summary = (
        f"{TOOL_NAME}: {len(report.new)} finding(s) "
        f"({len(report.baselined)} baselined, "
        f"{report.suppressed_count} suppressed) "
        f"in {report.files_scanned} file(s)"
    )
    if report.flow:
        summary += " [flow pass on]"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def _annotation_escape(text: str) -> str:
    """Escape per GitHub workflow-command rules (%, CR, LF in messages)."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(report: LintReport) -> str:
    """GitHub Actions annotation format: findings appear inline on PRs.

    One ``::error`` line per new finding (witness chain folded into the
    message), ``::warning`` for parse errors, then the human summary —
    GitHub ignores non-command lines, so the output stays readable in
    the raw log too.
    """
    lines: list[str] = []
    for error in report.parse_errors:
        lines.append(f"::warning title={TOOL_NAME}::{_annotation_escape(error)}")
    for finding in sorted(report.new, key=lambda f: (f.path, f.line, f.rule)):
        message = finding.message
        if finding.chain:
            steps = "; ".join(
                f"{path}:{line} {note}" for path, line, note in finding.chain
            )
            message = f"{message} [witness: {steps}]"
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title={TOOL_NAME} {finding.rule}::"
            f"{_annotation_escape(message)}"
        )
    lines.append(
        f"{TOOL_NAME}: {len(report.new)} finding(s) "
        f"({len(report.baselined)} baselined, "
        f"{report.suppressed_count} suppressed) "
        f"in {report.files_scanned} file(s)"
    )
    return "\n".join(lines) + "\n"
