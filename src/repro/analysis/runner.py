"""Drive the repro-lint pass: collect modules, run checkers, partition.

Two entry points:

* :func:`lint_paths` — files/directories on disk (the CLI path).
* :func:`lint_sources` — in-memory ``{path: source}`` mappings, used by
  the test fixtures so each checker can be exercised without touching
  the real tree.

Both take ``flow=True`` to stack the whole-program RPL01x pass (call
graph + dataflow engine, :mod:`repro.analysis.flow_rules`) on top of
the per-module syntactic rules.  Flow findings run through the same
suppression and baseline machinery as syntactic ones.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.checkers import Checker, default_checkers
from repro.analysis.findings import Finding
from repro.analysis.reporting import LintReport
from repro.analysis.suppressions import is_suppressed, parse_suppressions
from repro.analysis.visitor import ModuleInfo


def collect_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(str(path))
    # De-dup while keeping the sorted-within-argument order stable.
    seen: dict[Path, None] = {}
    for f in files:
        seen.setdefault(f, None)
    return list(seen)


def _run_flow(modules: list[ModuleInfo], flow_checkers_list) -> list[Finding]:
    """The whole-program pass: one Project + engine, every flow rule."""
    from repro.analysis.callgraph import Project
    from repro.analysis.dataflow import DataflowEngine

    project = Project.from_modules(modules)
    engine = DataflowEngine(project)
    findings: list[Finding] = []
    for checker in flow_checkers_list:
        findings.extend(checker.check_project(project, engine))
    return findings


def _run(
    modules: list[ModuleInfo],
    checkers: list[Checker],
    baseline: Baseline | None,
    parse_errors: list[str],
    flow: bool = False,
    flow_checkers: list | None = None,
) -> LintReport:
    raw: list[Finding] = []
    for module in modules:
        for checker in checkers:
            if checker.applies_to(module):
                raw.extend(checker.check(module))
    for checker in checkers:
        raw.extend(checker.finalize())

    if flow:
        if flow_checkers is None:
            from repro.analysis.flow_rules import flow_checkers as _default_flow

            flow_checkers = _default_flow()
        raw.extend(_run_flow(modules, flow_checkers))

    suppression_tables = {
        module.path: parse_suppressions(module.lines) for module in modules
    }
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        table = suppression_tables.get(finding.path, {})
        if is_suppressed(table, finding.line, finding.rule):
            suppressed += 1
        else:
            kept.append(finding)

    if baseline is not None:
        new, grandfathered = baseline.apply(kept)
    else:
        new, grandfathered = sorted(
            kept, key=lambda f: (f.path, f.line, f.rule)
        ), []

    return LintReport(
        new=new,
        baselined=grandfathered,
        suppressed_count=suppressed,
        files_scanned=len(modules),
        parse_errors=parse_errors,
        flow=flow,
    )


def lint_sources(
    sources: dict[str, str],
    checkers: list[Checker] | None = None,
    baseline: Baseline | None = None,
    flow: bool = False,
    flow_checkers: list | None = None,
) -> LintReport:
    """Lint in-memory sources keyed by (possibly fake) module paths."""
    modules = []
    parse_errors = []
    for path, source in sources.items():
        try:
            modules.append(ModuleInfo.from_source(path, source))
        except SyntaxError as exc:
            parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
    return _run(
        modules,
        checkers if checkers is not None else default_checkers(),
        baseline,
        parse_errors,
        flow=flow,
        flow_checkers=flow_checkers,
    )


def lint_paths(
    paths,
    checkers: list[Checker] | None = None,
    baseline: Baseline | None = None,
    flow: bool = False,
    flow_checkers: list | None = None,
) -> LintReport:
    """Lint files/directories on disk."""
    files = collect_files(paths)
    sources: dict[str, str] = {}
    for file in files:
        sources[str(file)] = file.read_text(encoding="utf-8")
    return lint_sources(
        sources,
        checkers=checkers,
        baseline=baseline,
        flow=flow,
        flow_checkers=flow_checkers,
    )
