"""The paper's running example, as fixed numerically by the appendix.

Source instance I (relation ``proj(pname, emp, company)``)::

    proj(BigData, Bob, IBM)
    proj(ML, Alice, SAP)

Target example J (relations ``task(pname, emp, oid)``, ``org(oid, company)``)::

    task(ML, Alice, 111)      org(111, SAP)
    task(Search, Carol, 222)  org(222, Oracle)   <- inert, beyond C's reach

Candidates (Figure 1(d) of the paper, reduced set C' = {theta1, theta3})::

    theta1: proj(P, E, C) -> task(P, E, O)
    theta3: proj(P, E, C) -> task(P, E, O) & org(O, C)

With these inputs the appendix reports objective Eq. (9) values
{} -> 4, {theta1} -> 7 1/3, {theta3} -> 8, {theta1, theta3} -> 12, and
after adding five more ML-like projects the optimum flips to {theta3}.
These exact numbers are regression-tested in
``tests/selection/test_appendix_example.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.instance import Instance, fact
from repro.datamodel.schema import ForeignKey, Schema, relation
from repro.mappings.parser import parse_tgd
from repro.mappings.tgd import StTgd


@dataclass(frozen=True)
class PaperExample:
    """All ingredients of the appendix's worked example."""

    source_schema: Schema
    target_schema: Schema
    source: Instance
    target: Instance
    theta1: StTgd
    theta3: StTgd

    @property
    def candidates(self) -> list[StTgd]:
        return [self.theta1, self.theta3]


def paper_example(extra_projects: int = 0) -> PaperExample:
    """Build the appendix example, optionally with *extra_projects* ML-like rows.

    Each extra project adds ``proj(ProjX<i>, Alice, SAP)`` to I and
    ``task(ProjX<i>, Alice, 111)`` to J — the appendix's device for
    flipping the optimal selection from {} to {theta3} (at >= 5 extras).
    """
    source_schema = Schema("S")
    source_schema.add(relation("proj", "pname", "emp", "company"))

    target_schema = Schema("T")
    target_schema.add(relation("task", "pname", "emp", "oid"))
    target_schema.add(relation("org", "oid", "company", key=("oid",)))
    target_schema.add_foreign_key(ForeignKey("task", ("oid",), "org", ("oid",)))

    source = Instance(
        [
            fact("proj", "BigData", "Bob", "IBM"),
            fact("proj", "ML", "Alice", "SAP"),
        ]
    )
    target = Instance(
        [
            fact("task", "ML", "Alice", 111),
            fact("org", 111, "SAP"),
            fact("task", "Search", "Carol", 222),
            fact("org", 222, "Oracle"),
        ]
    )
    for i in range(extra_projects):
        source.add(fact("proj", f"ProjX{i}", "Alice", "SAP"))
        target.add(fact("task", f"ProjX{i}", "Alice", 111))

    theta1 = parse_tgd("t1: proj(P, E, C) -> task(P, E, O)")
    theta3 = parse_tgd("t3: proj(P, E, C) -> task(P, E, O) & org(O, C)")
    return PaperExample(source_schema, target_schema, source, target, theta1, theta3)
