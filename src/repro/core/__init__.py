"""The paper-facing public API, re-exported in one namespace.

``repro.core`` is the recommended import surface for downstream users::

    from repro.core import (
        Instance, fact, parse_tgds,
        build_selection_problem, solve_collective,
        ScenarioConfig, generate_scenario, run_methods,
    )
"""

from repro.candidates import Correspondence, generate_candidates, logical_associations
from repro.candidates.matcher import correspondences_from_names, match_schemas
from repro.chase import chase, chase_single, chase_target, exchanged_instance
from repro.datamodel import (
    Constant,
    DataExample,
    Fact,
    ForeignKey,
    Instance,
    LabeledNull,
    NullFactory,
    Relation,
    Schema,
    fact,
    relation,
)
from repro.evaluation import (
    EvaluationEngine,
    GridResult,
    PrecisionRecall,
    ScenarioCache,
    data_quality,
    mapping_quality,
    run_methods,
    run_scenario,
)
from repro.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.homomorphism import CoverComputer, covers, creates, find_homomorphism
from repro.ibench import ScenarioConfig, generate_scenario
from repro.io import load_scenario, save_scenario
from repro.queries import (
    ConjunctiveQuery,
    certain_answers,
    parse_query,
    query_quality,
    workload_for_schema,
)
from repro.mappings import Atom, StTgd, Variable, atom, parse_tgd, parse_tgds, var
from repro.psl import AdmmSettings, PslProgram, TermPartition, build_partition, lit
from repro.selection.weight_learning import learn_weights, training_pairs_from_scenarios
from repro.selection import (
    CollectiveSettings,
    CollectiveWarmPayload,
    WarmStartedCollective,
    preprocess,
    problem_fingerprint,
    solve_independent,
    ObjectiveWeights,
    SelectionProblem,
    SelectionResult,
    build_selection_problem,
    objective_breakdown,
    objective_value,
    solve_branch_and_bound,
    solve_collective,
    solve_exhaustive,
    solve_greedy,
)

__all__ = [
    "AdmmSettings",
    "TermPartition",
    "build_partition",
    "Atom",
    "CollectiveSettings",
    "Constant",
    "Correspondence",
    "CoverComputer",
    "DataExample",
    "EvaluationEngine",
    "Fact",
    "ForeignKey",
    "GridResult",
    "Instance",
    "LabeledNull",
    "NullFactory",
    "ObjectiveWeights",
    "PrecisionRecall",
    "ProcessExecutor",
    "ThreadExecutor",
    "PslProgram",
    "Relation",
    "ScenarioCache",
    "SerialExecutor",
    "CollectiveWarmPayload",
    "WarmStartedCollective",
    "ScenarioConfig",
    "Schema",
    "SelectionProblem",
    "SelectionResult",
    "StTgd",
    "Variable",
    "atom",
    "build_selection_problem",
    "chase",
    "chase_single",
    "chase_target",
    "covers",
    "creates",
    "data_quality",
    "exchanged_instance",
    "fact",
    "find_homomorphism",
    "generate_candidates",
    "generate_scenario",
    "lit",
    "logical_associations",
    "mapping_quality",
    "objective_breakdown",
    "objective_value",
    "parse_tgd",
    "parse_tgds",
    "relation",
    "run_methods",
    "solve_branch_and_bound",
    "solve_collective",
    "solve_exhaustive",
    "solve_greedy",
    "var",
    "ConjunctiveQuery",
    "certain_answers",
    "correspondences_from_names",
    "learn_weights",
    "load_scenario",
    "match_schemas",
    "parse_query",
    "preprocess",
    "problem_fingerprint",
    "query_quality",
    "resolve_executor",
    "run_scenario",
    "save_scenario",
    "solve_independent",
    "training_pairs_from_scenarios",
    "workload_for_schema",
]
