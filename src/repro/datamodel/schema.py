"""Relational schemas: attributes, relations, foreign keys.

Schemas are deliberately lightweight — just enough structure for schema
mapping: named relations with ordered named attributes, optional primary
keys, and foreign keys.  Foreign keys drive the notion of *logical
association* used by Clio-style candidate generation
(:mod:`repro.candidates.associations`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named attribute (column) of a relation."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Relation:
    """A relation schema: a name, ordered attributes, and an optional key.

    ``key`` lists the names of the primary-key attributes (possibly empty).
    """

    name: str
    attributes: tuple[Attribute, ...]
    key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {self.name!r}: {names}")
        for k in self.key:
            if k not in names:
                raise SchemaError(f"key attribute {k!r} not in relation {self.name!r}")

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(a.name for a in self.attributes)

    def position_of(self, attribute_name: str) -> int:
        """Index of *attribute_name* within this relation.

        Raises :class:`SchemaError` if the attribute does not exist.
        """
        try:
            return self.attribute_names.index(attribute_name)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute_name!r}"
            ) from None

    def __repr__(self) -> str:
        cols = ", ".join(self.attribute_names)
        return f"{self.name}({cols})"


def relation(name: str, *attribute_names: str, key: tuple[str, ...] = ()) -> Relation:
    """Convenience constructor: ``relation("R", "a", "b")``."""
    return Relation(name, tuple(Attribute(n) for n in attribute_names), key)


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """A foreign key: attributes of *source* reference attributes of *target*.

    ``source_attributes`` and ``target_attributes`` are parallel tuples of
    attribute names.
    """

    source: str
    source_attributes: tuple[str, ...]
    target: str
    target_attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.source_attributes) != len(self.target_attributes):
            raise SchemaError(
                f"foreign key {self.source}->{self.target}: attribute lists differ in length"
            )
        if not self.source_attributes:
            raise SchemaError(f"foreign key {self.source}->{self.target}: empty attribute list")

    def __repr__(self) -> str:
        src = ",".join(self.source_attributes)
        dst = ",".join(self.target_attributes)
        return f"FK {self.source}({src}) -> {self.target}({dst})"


@dataclass(slots=True)
class Schema:
    """A named collection of relations plus foreign keys between them."""

    name: str
    relations: dict[str, Relation] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def add(self, rel: Relation) -> Relation:
        """Register *rel*; raises :class:`SchemaError` on duplicate names."""
        if rel.name in self.relations:
            raise SchemaError(f"schema {self.name!r} already has relation {rel.name!r}")
        self.relations[rel.name] = rel
        return rel

    def add_foreign_key(self, fk: ForeignKey) -> ForeignKey:
        """Register *fk*, validating both endpoints against the schema."""
        for rel_name, attrs in (
            (fk.source, fk.source_attributes),
            (fk.target, fk.target_attributes),
        ):
            rel = self.get(rel_name)
            for a in attrs:
                rel.position_of(a)
        self.foreign_keys.append(fk)
        return fk

    def get(self, relation_name: str) -> Relation:
        """Look up a relation by name; raises :class:`SchemaError` if absent."""
        try:
            return self.relations[relation_name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no relation {relation_name!r}"
            ) from None

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self.relations

    def __len__(self) -> int:
        return len(self.relations)

    def __repr__(self) -> str:
        rels = "; ".join(repr(r) for r in self.relations.values())
        return f"Schema {self.name}: {rels}"
