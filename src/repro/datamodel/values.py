"""Values that may appear in database facts: constants and labeled nulls.

The data-exchange literature distinguishes *constants* (ordinary data
values from the active domain) from *labeled nulls* (placeholders invented
by the chase for existentially quantified variables).  Homomorphisms may
map labeled nulls to any value but must fix constants.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Union


@dataclass(frozen=True, slots=True)
class Constant:
    """An ordinary data value.  Homomorphisms map constants to themselves."""

    value: object

    def __repr__(self) -> str:
        return f"{self.value}"


@dataclass(frozen=True, slots=True)
class LabeledNull:
    """A labeled null introduced by the chase for an existential variable.

    Nulls compare by label: two nulls with the same label are the same
    null.  Homomorphisms may map a null to a constant or to another null.
    """

    label: int

    def __repr__(self) -> str:
        return f"N{self.label}"


Value = Union[Constant, LabeledNull]


def is_null(value: Value) -> bool:
    """Return True iff *value* is a labeled null."""
    return isinstance(value, LabeledNull)


def is_constant(value: Value) -> bool:
    """Return True iff *value* is a constant."""
    return isinstance(value, Constant)


class NullFactory:
    """Generates fresh labeled nulls with unique, monotonically rising labels.

    A single factory is threaded through a chase run so that nulls created
    for different tgd firings never collide.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)

    def fresh(self) -> LabeledNull:
        """Return a labeled null never produced by this factory before."""
        return LabeledNull(next(self._counter))

    def fresh_many(self, count: int) -> list[LabeledNull]:
        """Return *count* distinct fresh nulls."""
        return [self.fresh() for _ in range(count)]


def constants_in(values: Iterable[Value]) -> set[Constant]:
    """The set of constants among *values*."""
    return {v for v in values if isinstance(v, Constant)}


def nulls_in(values: Iterable[Value]) -> set[LabeledNull]:
    """The set of labeled nulls among *values*."""
    return {v for v in values if isinstance(v, LabeledNull)}
