"""Database instances: sets of facts over a schema.

Facts hold :class:`~repro.datamodel.values.Constant` or
:class:`~repro.datamodel.values.LabeledNull` values.  Instances index facts
by relation name, which keeps homomorphism search and cover computation
close to linear in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.datamodel.values import Constant, LabeledNull, Value, is_null
from repro.errors import InstanceError


@dataclass(frozen=True, slots=True)
class Fact:
    """A single tuple ``relation(values...)``.

    Values are :class:`Constant` or :class:`LabeledNull`.  Facts are
    immutable and hashable, so instances can be modeled as sets.
    """

    relation: str
    values: tuple[Value, ...]

    @property
    def arity(self) -> int:
        return len(self.values)

    @property
    def nulls(self) -> tuple[LabeledNull, ...]:
        """Labeled nulls occurring in this fact, in position order."""
        return tuple(v for v in self.values if is_null(v))

    @property
    def is_ground(self) -> bool:
        """True iff the fact contains no labeled nulls."""
        return not any(is_null(v) for v in self.values)

    def substitute(self, mapping: Mapping[LabeledNull, Value]) -> "Fact":
        """Apply a null substitution, returning a new fact."""
        return Fact(
            self.relation,
            tuple(mapping.get(v, v) if is_null(v) else v for v in self.values),
        )

    def __repr__(self) -> str:
        # map() over a genexpr: fact reprs order the error-mediator
        # groups during grounding *and* store-key hashing, so this runs
        # hot on every cold start.
        inner = ", ".join(map(repr, self.values))
        return f"{self.relation}({inner})"


def fact(relation: str, *values: object) -> Fact:
    """Convenience constructor wrapping raw python values as constants.

    ``LabeledNull`` arguments are kept as-is; anything else becomes a
    :class:`Constant`.  Example: ``fact("task", "ML", "Alice", null)``.
    """
    wrapped = tuple(
        v if isinstance(v, (Constant, LabeledNull)) else Constant(v) for v in values
    )
    return Fact(relation, wrapped)


class Instance:
    """A set of facts, indexed by relation name.

    Supports set-like operations used throughout the library: membership,
    union, difference, iteration, and per-relation access.
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        # dict-as-ordered-set buckets so ``__iter__`` yields facts in
        # insertion order — set buckets leak the per-process hash seed
        # into anything enumerating an instance (e.g. the scenario
        # generator's skolem-constant assignment), making "deterministic"
        # generation differ across processes (RPL002-class bug).
        self._by_relation: dict[str, dict[Fact, None]] = {}
        for f in facts:
            self.add(f)

    def add(self, f: Fact) -> bool:
        """Add *f*; return True if it was not already present."""
        bucket = self._by_relation.setdefault(f.relation, {})
        if f in bucket:
            return False
        bucket[f] = None
        return True

    def discard(self, f: Fact) -> bool:
        """Remove *f* if present; return True if it was removed."""
        bucket = self._by_relation.get(f.relation)
        if bucket and f in bucket:
            del bucket[f]
            if not bucket:
                del self._by_relation[f.relation]
            return True
        return False

    def facts_of(self, relation_name: str) -> frozenset[Fact]:
        """All facts of one relation (empty frozenset if none)."""
        return frozenset(self._by_relation.get(relation_name, ()))

    @property
    def relation_names(self) -> frozenset[str]:
        """Names of relations with at least one fact."""
        return frozenset(self._by_relation)

    def __contains__(self, f: object) -> bool:
        if not isinstance(f, Fact):
            return False
        return f in self._by_relation.get(f.relation, ())

    def __iter__(self) -> Iterator[Fact]:
        for bucket in self._by_relation.values():
            yield from bucket

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_relation.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self) == set(other)

    def __or__(self, other: "Instance") -> "Instance":
        return Instance(list(self) + list(other))

    def __sub__(self, other: "Instance") -> "Instance":
        return Instance(f for f in self if f not in other)

    def copy(self) -> "Instance":
        return Instance(self)

    @property
    def nulls(self) -> set[LabeledNull]:
        """All labeled nulls occurring anywhere in the instance."""
        found: set[LabeledNull] = set()
        for f in self:
            found.update(f.nulls)
        return found

    @property
    def is_ground(self) -> bool:
        """True iff no fact contains a labeled null."""
        return all(f.is_ground for f in self)

    def validate_against(self, schema) -> None:
        """Check every fact names a schema relation with matching arity.

        Raises :class:`InstanceError` on the first violation.
        """
        for f in self:
            if f.relation not in schema:
                raise InstanceError(f"fact {f} uses unknown relation {f.relation!r}")
            expected = schema.get(f.relation).arity
            if f.arity != expected:
                raise InstanceError(
                    f"fact {f} has arity {f.arity}, relation {f.relation!r} expects {expected}"
                )

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._by_relation):
            for f in sorted(self._by_relation[name], key=repr):
                parts.append(repr(f))
        return "{" + ", ".join(parts) + "}"


@dataclass(frozen=True)
class DataExample:
    """A data example (I, J): a source instance and a target instance.

    The target instance J is the user's (possibly noisy, possibly partial)
    assertion of what migrating I should produce.  J is normally ground.
    """

    source: Instance
    target: Instance
