"""Relational data model: values, schemas, facts, instances, data examples."""

from repro.datamodel.instance import DataExample, Fact, Instance, fact
from repro.datamodel.schema import Attribute, ForeignKey, Relation, Schema, relation
from repro.datamodel.values import (
    Constant,
    LabeledNull,
    NullFactory,
    Value,
    constants_in,
    is_constant,
    is_null,
    nulls_in,
)

__all__ = [
    "Attribute",
    "Constant",
    "DataExample",
    "Fact",
    "ForeignKey",
    "Instance",
    "LabeledNull",
    "NullFactory",
    "Relation",
    "Schema",
    "Value",
    "constants_in",
    "fact",
    "is_constant",
    "is_null",
    "nulls_in",
    "relation",
]
