"""The Scenario container: one generated schema-mapping selection task."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.candidates.correspondence import Correspondence
from repro.datamodel.instance import Instance
from repro.datamodel.schema import Schema
from repro.ibench.config import ScenarioConfig
from repro.ibench.primitives import PrimitiveOutput
from repro.mappings.tgd import StTgd
from repro.selection.metrics import SelectionProblem, build_selection_problem


@dataclass
class Scenario:
    """A generated scenario: schemas, data example, candidates, gold truth.

    Attributes:
        config: the generation parameters.
        primitives: the primitive invocations the scenario was built from.
        source_schema / target_schema: the generated schemas.
        source: the source instance I.
        target: the target example J *after* noise injection.
        reference_target: the grounded gold exchange (J before noise) —
            the evaluation's ground truth for data-level F1.
        correspondences: gold plus noise correspondences.
        candidates: the Clio-generated candidate set C.
        gold_indices: positions of the gold mapping MG within C.
        deleted_facts / added_facts: the data-noise edits applied to J.
    """

    config: ScenarioConfig
    primitives: list[PrimitiveOutput]
    source_schema: Schema
    target_schema: Schema
    source: Instance
    target: Instance
    reference_target: Instance
    correspondences: list[Correspondence]
    candidates: list[StTgd]
    gold_indices: list[int]
    deleted_facts: list = field(default_factory=list)
    added_facts: list = field(default_factory=list)

    @property
    def gold_mapping(self) -> list[StTgd]:
        """The gold tgds MG, as members of the candidate set."""
        return [self.candidates[i] for i in self.gold_indices]

    def selection_problem(self, executor=None) -> SelectionProblem:
        """Materialize the covers/creates/size tables for this scenario.

        *executor* is forwarded to
        :func:`~repro.selection.metrics.build_selection_problem` —
        ``None``/``"serial"`` or ``"process[:N]"``.
        """
        return build_selection_problem(
            self.source, self.target, self.candidates, executor=executor
        )

    def summary(self) -> str:
        """One-line description used by the benchmark harness."""
        kinds = ",".join(p.kind for p in self.primitives)
        return (
            f"primitives=[{kinds}] |I|={len(self.source)} |J|={len(self.target)} "
            f"|C|={len(self.candidates)} |MG|={len(self.gold_indices)} "
            f"noise=(corr={self.config.pi_corresp}, err={self.config.pi_errors}, "
            f"unexpl={self.config.pi_unexplained})"
        )
