"""Scenario-generation parameters (the paper's Table I knobs).

``pi_corresp``, ``pi_errors`` and ``pi_unexplained`` are percentages in
[0, 100], matching the appendix's description of how metadata and data
evidence are perturbed.  ``add_remove_range`` is the iBench range
parameter for ADD/DL/ADL attribute counts, set to (2, 4) as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScenarioError

ALL_PRIMITIVES = ("CP", "ADD", "DL", "ADL", "ME", "VP", "VNM")


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to deterministically generate one scenario."""

    num_primitives: int = 4
    primitive_kinds: tuple[str, ...] = ALL_PRIMITIVES
    rows_per_relation: int = 10
    value_pool: int = 8
    pi_corresp: float = 0.0
    pi_errors: float = 0.0
    pi_unexplained: float = 0.0
    add_remove_range: tuple[int, int] = (2, 4)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_primitives < 1:
            raise ScenarioError("num_primitives must be >= 1")
        if self.rows_per_relation < 1:
            raise ScenarioError("rows_per_relation must be >= 1")
        unknown = set(self.primitive_kinds) - set(ALL_PRIMITIVES)
        if unknown:
            raise ScenarioError(f"unknown primitive kinds: {sorted(unknown)}")
        if not self.primitive_kinds:
            raise ScenarioError("primitive_kinds must not be empty")
        for label, value in (
            ("pi_corresp", self.pi_corresp),
            ("pi_errors", self.pi_errors),
            ("pi_unexplained", self.pi_unexplained),
        ):
            if not 0.0 <= value <= 100.0:
                raise ScenarioError(f"{label} must be a percentage in [0, 100]")
        low, high = self.add_remove_range
        if not 1 <= low <= high:
            raise ScenarioError("add_remove_range must satisfy 1 <= low <= high")
