"""Source-instance population for generated scenarios.

Relations are filled in foreign-key topological order (parents first) so
referencing attributes can draw from the referenced key values, which
guarantees the joins of ME-style primitives actually produce tuples.
Non-key attributes draw from a bounded per-attribute value pool so some
values repeat (realistic duplication without violating keys).
"""

from __future__ import annotations

import random

from repro.datamodel.instance import Instance, fact
from repro.datamodel.schema import Relation, Schema
from repro.errors import ScenarioError


def _topological_order(schema: Schema) -> list[Relation]:
    """Relations sorted so every FK target precedes its sources."""
    incoming: dict[str, set[str]] = {name: set() for name in schema.relations}
    for fk in schema.foreign_keys:
        incoming[fk.source].add(fk.target)
    ordered: list[Relation] = []
    placed: set[str] = set()
    remaining = dict(incoming)
    while remaining:
        ready = sorted(name for name, deps in remaining.items() if deps <= placed)
        if not ready:
            raise ScenarioError(f"cyclic foreign keys among {sorted(remaining)}")
        for name in ready:
            ordered.append(schema.get(name))
            placed.add(name)
            del remaining[name]
    return ordered


def populate(
    schema: Schema,
    rows_per_relation: int,
    rng: random.Random,
    value_pool: int = 8,
) -> Instance:
    """Generate a ground instance of *schema*.

    Key attributes get unique values; FK attributes sample the referenced
    key's generated values; everything else draws from a pool of
    ``value_pool`` relation/attribute-specific strings.
    """
    instance = Instance()
    generated: dict[tuple[str, str], list[str]] = {}

    fk_of: dict[tuple[str, str], tuple[str, str]] = {}
    for fk in schema.foreign_keys:
        for sa, ta in zip(fk.source_attributes, fk.target_attributes):
            fk_of[(fk.source, sa)] = (fk.target, ta)

    for rel in _topological_order(schema):
        for attr in rel.attribute_names:
            generated[(rel.name, attr)] = []
        row = 0
        attempts = 0
        # Retry on duplicate rows (set semantics) so the relation really
        # holds rows_per_relation distinct facts; give up gracefully when
        # the value domain is too small to support that many.
        while row < rows_per_relation and attempts < rows_per_relation * 10:
            attempts += 1
            values = []
            for attr in rel.attribute_names:
                position = (rel.name, attr)
                if position in fk_of:
                    parent_values = generated[fk_of[position]]
                    if not parent_values:
                        raise ScenarioError(
                            f"foreign key {rel.name}.{attr} references an empty relation"
                        )
                    value = rng.choice(parent_values)
                elif attr in rel.key:
                    value = f"{rel.name}.{attr}.{row}"
                else:
                    value = f"{rel.name}.{attr}.v{rng.randrange(value_pool)}"
                values.append(value)
            if instance.add(fact(rel.name, *values)):
                for attr, value in zip(rel.attribute_names, values):
                    generated[(rel.name, attr)].append(value)
                row += 1
    return instance
