"""Primitive-level mutation chains over generated scenarios.

Incremental-grounding workloads need *edit chains*: a scenario whose
data changes a few tuples at a time, each revision solved against the
previous one.  This module supplies the edit primitives —
:class:`AddTargetTuple` / :class:`RemoveTargetTuple` /
:class:`AddSourceTuple` / :class:`RemoveSourceTuple` /
:class:`FlipCandidate` — and :class:`MutableSelection`, which replays
them as *deltas*: per-candidate chases are reused whenever the edit
cannot change them (target-side edits never re-chase; source-side edits
re-chase only candidates whose body mentions the touched relation), and
the merged :class:`~repro.selection.metrics.SelectionProblem` is
**byte-identical** (:func:`~repro.selection.metrics.problem_fingerprint`)
to a from-scratch :func:`~repro.selection.metrics.
build_selection_problem` of the mutated data — the equivalence suite
asserts it.

Cover degrees and error sets are *whole-target* functions (cover
corroboration searches homomorphisms into all of J; ``creates`` tests
membership against J), so they are recomputed for every candidate on any
target edit — only the chase, the expensive half, is reused.  All stored
tables keep candidate-*local* null labels; the merge shifts them into
the global label space exactly as a serial build would, so equivalence
survives any mix of reused and re-chased candidates.

Every revision carries a :class:`~repro.selection.metrics.
ProblemLineage` linking it to its parent, which is what lets the
collective grounding cache *patch* the parent's compiled structure
instead of re-grounding (see ``docs/incremental.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterable, Iterator, Union

from repro.datamodel.instance import Fact, Instance
from repro.errors import SelectionError
from repro.executors import MapExecutor, resolve_executor
from repro.homomorphism.covers import CoverComputer, creates
from repro.mappings.tgd import StTgd
from repro.selection.metrics import (
    CandidateTables,
    SelectionProblem,
    _evaluate_indexed,
    evaluate_candidate,
    merge_candidate_tables,
    next_lineage,
)


@dataclass(frozen=True)
class AddTargetTuple:
    """Add *fact* to the target example J."""

    fact: Fact


@dataclass(frozen=True)
class RemoveTargetTuple:
    """Remove *fact* from the target example J."""

    fact: Fact


@dataclass(frozen=True)
class AddSourceTuple:
    """Add *fact* to the source instance I (re-chases touching candidates)."""

    fact: Fact


@dataclass(frozen=True)
class RemoveSourceTuple:
    """Remove *fact* from the source instance I (re-chases touching candidates)."""

    fact: Fact


@dataclass(frozen=True)
class FlipCandidate:
    """Replace the candidate at *index* with *candidate*.

    The primitive-level "flip a correspondence": correspondence noise
    manifests at the selection layer as one candidate tgd swapped for a
    variant targeting a different attribute.
    """

    index: int
    candidate: StTgd


Mutation = Union[
    AddTargetTuple, RemoveTargetTuple, AddSourceTuple, RemoveSourceTuple, FlipCandidate
]


class MutableSelection:
    """A selection problem that absorbs edits incrementally.

    Keeps the per-candidate :class:`~repro.selection.metrics.
    CandidateTables` in their candidate-local null-label space plus
    private copies of the source/target instances.  :meth:`apply`
    recomputes only what an edit can touch and re-merges; the resulting
    problems form a lineage chain consumable by the incremental
    grounding tier.

    ``rechased_candidates`` counts the chases actually rerun across the
    chain's lifetime — the work the delta replay saved is the chain
    length times the candidate count, minus it.
    """

    def __init__(
        self,
        source: Instance,
        target: Instance,
        candidates: Iterable[StTgd],
        executor: MapExecutor | str | None = None,
    ):
        self.source = source.copy()
        self.target = target.copy()
        self.candidates = list(candidates)
        if not all(isinstance(c, StTgd) for c in self.candidates):
            raise SelectionError("candidates must be StTgd objects")
        self.executor = executor
        resolved = resolve_executor(executor)
        evaluate = partial(_evaluate_indexed, self.source, self.target)
        self._tables: list[CandidateTables] = list(
            resolved.map(evaluate, list(enumerate(self.candidates)))
        )
        self._tables.sort(key=lambda t: t.index)
        self.rechased_candidates = 0
        self.problem = self._merge(parent=None)

    def _merge(self, parent) -> SelectionProblem:
        problem = merge_candidate_tables(
            self.source.copy(), self.target.copy(), list(self.candidates), self._tables
        )
        problem.lineage = next_lineage(parent)
        return problem

    def _rechase(self, index: int) -> CandidateTables:
        self.rechased_candidates += 1
        return evaluate_candidate(
            self.source, self.target, self.candidates[index], index
        )

    def _retable(self, table: CandidateTables) -> CandidateTables:
        """Recompute covers/errors against the current target, reusing the chase.

        Cover degrees and ``creates`` are invariant under null
        relabeling, so computing them on the local-label chase facts
        yields exactly what a from-scratch evaluation would.
        """
        k_theta = Instance(table.chase_facts)
        computer = CoverComputer(k_theta, self.target)
        covers = {}
        for t in sorted(self.target, key=repr):
            degree = computer.degree(t)
            if degree > 0:
                covers[t] = degree
        return CandidateTables(
            index=table.index,
            chase_facts=table.chase_facts,
            covers=covers,
            error_facts=frozenset(
                f for f in table.chase_facts if creates(f, self.target)
            ),
            nulls_used=table.nulls_used,
        )

    def _body_relations(self, index: int) -> frozenset[str]:
        return frozenset(a.relation for a in self.candidates[index].body)

    def apply(self, mutation: Mutation) -> SelectionProblem:
        """Apply one edit; returns the new (lineage-linked) problem."""
        if isinstance(mutation, AddTargetTuple):
            if not self.target.add(mutation.fact):
                raise SelectionError(f"{mutation.fact} already in target")
            self._tables = [self._retable(t) for t in self._tables]
        elif isinstance(mutation, RemoveTargetTuple):
            if not self.target.discard(mutation.fact):
                raise SelectionError(f"{mutation.fact} not in target")
            self._tables = [self._retable(t) for t in self._tables]
        elif isinstance(mutation, (AddSourceTuple, RemoveSourceTuple)):
            if isinstance(mutation, AddSourceTuple):
                if not self.source.add(mutation.fact):
                    raise SelectionError(f"{mutation.fact} already in source")
            else:
                if not self.source.discard(mutation.fact):
                    raise SelectionError(f"{mutation.fact} not in source")
            # Re-chase exactly the candidates whose body reads the
            # touched relation; everyone else's chase — and, with the
            # target untouched, covers and errors too — stands as-is.
            touched = mutation.fact.relation
            for i in range(len(self.candidates)):
                if touched in self._body_relations(i):
                    self._tables[i] = self._rechase(i)
        elif isinstance(mutation, FlipCandidate):
            if not 0 <= mutation.index < len(self.candidates):
                raise SelectionError(f"no candidate at index {mutation.index}")
            self.candidates[mutation.index] = mutation.candidate
            self._tables[mutation.index] = self._rechase(mutation.index)
        else:
            raise SelectionError(f"unknown mutation {mutation!r}")
        self.problem = self._merge(parent=self.problem.lineage)
        return self.problem


def mutation_chain(
    source: Instance,
    target: Instance,
    candidates: Iterable[StTgd],
    mutations: Iterable[Mutation],
    executor: MapExecutor | str | None = None,
) -> Iterator[tuple[Mutation | None, SelectionProblem]]:
    """Replay *mutations* as a lineage-linked chain of selection problems.

    Yields ``(None, base_problem)`` first, then ``(mutation, problem)``
    per applied edit.  Each yielded problem's ``lineage.parent`` names
    the previous revision, so solving them in order through the
    collective grounding cache exercises the patch tier at every step.
    """
    state = MutableSelection(source, target, candidates, executor=executor)
    yield None, state.problem
    for mutation in mutations:
        yield mutation, state.apply(mutation)
