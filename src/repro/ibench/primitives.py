"""The seven iBench mapping primitives used in the paper's evaluation.

Each primitive invocation contributes fresh source/target relations, the
gold st tgd(s) relating them, the implied attribute correspondences, and
any foreign keys (which drive Clio's logical associations):

=====  ==============================================================
CP     copy a source relation to the target under a new name
ADD    copy and append 2-4 fresh (existential) attributes
DL     copy and drop 2-4 attributes
ADL    copy, drop 2-4 attributes and append 2-4 fresh ones
ME     merge: join two source relations into one target relation
VP     vertical partition: split one source relation into two joined
       target relations sharing an invented key
VNM    like VP but through an N-to-M bridge relation
=====  ==============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.candidates.correspondence import Correspondence
from repro.datamodel.schema import ForeignKey, Relation, relation
from repro.errors import ScenarioError
from repro.mappings.atoms import Atom
from repro.mappings.terms import Variable
from repro.mappings.tgd import StTgd


@dataclass
class PrimitiveOutput:
    """Everything one primitive invocation adds to a scenario."""

    kind: str
    index: int
    source_relations: list[Relation] = field(default_factory=list)
    target_relations: list[Relation] = field(default_factory=list)
    source_fks: list[ForeignKey] = field(default_factory=list)
    target_fks: list[ForeignKey] = field(default_factory=list)
    gold_tgds: list[StTgd] = field(default_factory=list)
    correspondences: list[Correspondence] = field(default_factory=list)

    @property
    def relation_names(self) -> set[str]:
        return {r.name for r in self.source_relations} | {
            r.name for r in self.target_relations
        }


def _vars(prefix: str, count: int) -> list[Variable]:
    return [Variable(f"{prefix}{i}") for i in range(count)]


def _copy_like(
    kind: str,
    index: int,
    rng: random.Random,
    removed: int,
    added: int,
) -> PrimitiveOutput:
    """Shared implementation of CP / ADD / DL / ADL."""
    prefix = f"{kind.lower()}{index}"
    kept = rng.randint(2, 4)
    source_arity = kept + removed
    source = relation(prefix + "_s", *[f"a{i}" for i in range(source_arity)])
    target = relation(prefix + "_t", *[f"b{i}" for i in range(kept + added)])

    xs = _vars("X", source_arity)
    ys = _vars("Y", added)
    gold = StTgd(
        (Atom(source.name, tuple(xs)),),
        (Atom(target.name, tuple(xs[:kept] + ys)),),
        name=f"g_{prefix}",
    )
    correspondences = [
        Correspondence(source.name, f"a{i}", target.name, f"b{i}") for i in range(kept)
    ]
    out = PrimitiveOutput(kind, index)
    out.source_relations.append(source)
    out.target_relations.append(target)
    out.gold_tgds.append(gold)
    out.correspondences.extend(correspondences)
    return out


def make_cp(index: int, rng: random.Random, add_remove: tuple[int, int]) -> PrimitiveOutput:
    """CP: plain copy under a new relation name."""
    return _copy_like("CP", index, rng, removed=0, added=0)


def make_add(index: int, rng: random.Random, add_remove: tuple[int, int]) -> PrimitiveOutput:
    """ADD: copy plus 2-4 invented target attributes."""
    return _copy_like("ADD", index, rng, removed=0, added=rng.randint(*add_remove))


def make_dl(index: int, rng: random.Random, add_remove: tuple[int, int]) -> PrimitiveOutput:
    """DL: copy minus 2-4 source attributes."""
    return _copy_like("DL", index, rng, removed=rng.randint(*add_remove), added=0)


def make_adl(index: int, rng: random.Random, add_remove: tuple[int, int]) -> PrimitiveOutput:
    """ADL: drop 2-4 source attributes and invent 2-4 target ones."""
    return _copy_like(
        "ADL", index, rng, removed=rng.randint(*add_remove), added=rng.randint(*add_remove)
    )


def make_me(index: int, rng: random.Random, add_remove: tuple[int, int]) -> PrimitiveOutput:
    """ME: join two source relations on a key into one target relation."""
    prefix = f"me{index}"
    na, nb = rng.randint(1, 3), rng.randint(1, 3)
    s1 = relation(prefix + "_s1", "k", *[f"a{i}" for i in range(na)], key=("k",))
    s2 = relation(prefix + "_s2", "k", *[f"b{i}" for i in range(nb)])
    target = relation(
        prefix + "_t", "k", *[f"a{i}" for i in range(na)], *[f"b{i}" for i in range(nb)]
    )

    key = Variable("K")
    avars, bvars = _vars("A", na), _vars("B", nb)
    gold = StTgd(
        (
            Atom(s1.name, (key, *avars)),
            Atom(s2.name, (key, *bvars)),
        ),
        (Atom(target.name, (key, *avars, *bvars)),),
        name=f"g_{prefix}",
    )
    out = PrimitiveOutput("ME", index)
    out.source_relations.extend([s1, s2])
    out.target_relations.append(target)
    out.source_fks.append(ForeignKey(s2.name, ("k",), s1.name, ("k",)))
    out.gold_tgds.append(gold)
    out.correspondences.append(Correspondence(s1.name, "k", target.name, "k"))
    out.correspondences.extend(
        Correspondence(s1.name, f"a{i}", target.name, f"a{i}") for i in range(na)
    )
    out.correspondences.extend(
        Correspondence(s2.name, f"b{i}", target.name, f"b{i}") for i in range(nb)
    )
    return out


def make_vp(index: int, rng: random.Random, add_remove: tuple[int, int]) -> PrimitiveOutput:
    """VP: split one source relation into two target relations joined on an invented key."""
    prefix = f"vp{index}"
    na, nb = rng.randint(1, 3), rng.randint(1, 3)
    source = relation(
        prefix + "_s", *[f"a{i}" for i in range(na)], *[f"b{i}" for i in range(nb)]
    )
    t1 = relation(prefix + "_t1", *[f"a{i}" for i in range(na)], "f")
    t2 = relation(prefix + "_t2", "f", *[f"b{i}" for i in range(nb)], key=("f",))

    avars, bvars = _vars("A", na), _vars("B", nb)
    fvar = Variable("F")
    gold = StTgd(
        (Atom(source.name, (*avars, *bvars)),),
        (
            Atom(t1.name, (*avars, fvar)),
            Atom(t2.name, (fvar, *bvars)),
        ),
        name=f"g_{prefix}",
    )
    out = PrimitiveOutput("VP", index)
    out.source_relations.append(source)
    out.target_relations.extend([t1, t2])
    out.target_fks.append(ForeignKey(t1.name, ("f",), t2.name, ("f",)))
    out.gold_tgds.append(gold)
    out.correspondences.extend(
        Correspondence(source.name, f"a{i}", t1.name, f"a{i}") for i in range(na)
    )
    out.correspondences.extend(
        Correspondence(source.name, f"b{i}", t2.name, f"b{i}") for i in range(nb)
    )
    return out


def make_vnm(index: int, rng: random.Random, add_remove: tuple[int, int]) -> PrimitiveOutput:
    """VNM: VP through a bridge relation establishing an N-to-M relationship."""
    prefix = f"vnm{index}"
    na, nb = rng.randint(1, 3), rng.randint(1, 3)
    source = relation(
        prefix + "_s", *[f"a{i}" for i in range(na)], *[f"b{i}" for i in range(nb)]
    )
    t1 = relation(prefix + "_t1", *[f"a{i}" for i in range(na)], "f", key=("f",))
    t2 = relation(prefix + "_t2", "g", *[f"b{i}" for i in range(nb)], key=("g",))
    bridge = relation(prefix + "_m", "f", "g")

    avars, bvars = _vars("A", na), _vars("B", nb)
    f, g = Variable("F"), Variable("G")
    gold = StTgd(
        (Atom(source.name, (*avars, *bvars)),),
        (
            Atom(t1.name, (*avars, f)),
            Atom(bridge.name, (f, g)),
            Atom(t2.name, (g, *bvars)),
        ),
        name=f"g_{prefix}",
    )
    out = PrimitiveOutput("VNM", index)
    out.source_relations.append(source)
    out.target_relations.extend([t1, t2, bridge])
    out.target_fks.append(ForeignKey(bridge.name, ("f",), t1.name, ("f",)))
    out.target_fks.append(ForeignKey(bridge.name, ("g",), t2.name, ("g",)))
    out.gold_tgds.append(gold)
    out.correspondences.extend(
        Correspondence(source.name, f"a{i}", t1.name, f"a{i}") for i in range(na)
    )
    out.correspondences.extend(
        Correspondence(source.name, f"b{i}", t2.name, f"b{i}") for i in range(nb)
    )
    return out


PRIMITIVE_MAKERS = {
    "CP": make_cp,
    "ADD": make_add,
    "DL": make_dl,
    "ADL": make_adl,
    "ME": make_me,
    "VP": make_vp,
    "VNM": make_vnm,
}


def make_primitive(
    kind: str, index: int, rng: random.Random, add_remove: tuple[int, int]
) -> PrimitiveOutput:
    """Dispatch to the maker of *kind*; raises on unknown kinds."""
    try:
        maker = PRIMITIVE_MAKERS[kind]
    except KeyError:
        raise ScenarioError(f"unknown primitive kind {kind!r}") from None
    return maker(index, rng, add_remove)
