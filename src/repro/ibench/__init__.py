"""iBench-style scenario generation for the paper's evaluation."""

from repro.ibench.config import ALL_PRIMITIVES, ScenarioConfig
from repro.ibench.datagen import populate
from repro.ibench.generator import generate_scenario
from repro.ibench.primitives import PRIMITIVE_MAKERS, PrimitiveOutput, make_primitive
from repro.ibench.scenario import Scenario

__all__ = [
    "ALL_PRIMITIVES",
    "PRIMITIVE_MAKERS",
    "PrimitiveOutput",
    "Scenario",
    "ScenarioConfig",
    "generate_scenario",
    "make_primitive",
    "populate",
]
