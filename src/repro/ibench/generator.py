"""End-to-end scenario generation (Section VI-A of the paper).

Pipeline:

1. draw ``num_primitives`` iBench primitive invocations;
2. assemble source/target schemas and populate the source instance I;
3. chase I with the gold mapping MG and ground the resulting nulls with
   fresh constants — this grounded gold exchange is the initial J (and
   stays available as the evaluation's ``reference_target``);
4. metadata noise: for ``pi_corresp`` percent of the target relations,
   add correspondences from a random source relation of a *different*
   primitive (so Clio still generates MG as part of C);
5. run Clio-style candidate generation, locating MG inside C;
6. data noise: delete ``pi_errors`` percent of the *non-certain error*
   tuples (J facts only MG generates) and add ``pi_unexplained`` percent
   of the *non-certain unexplained* tuples (facts only C - MG generates,
   grounded with fresh constants), homomorphism-aware in both directions.
"""

from __future__ import annotations

import random

from repro.candidates.cliogen import generate_candidates
from repro.candidates.correspondence import Correspondence
from repro.chase.engine import chase
from repro.datamodel.instance import Fact, Instance
from repro.datamodel.schema import Schema
from repro.datamodel.values import Constant, NullFactory, is_null
from repro.errors import ScenarioError
from repro.homomorphism.search import fact_matches, has_fact_homomorphism
from repro.ibench.config import ScenarioConfig
from repro.ibench.datagen import populate
from repro.ibench.primitives import PrimitiveOutput, make_primitive
from repro.ibench.scenario import Scenario
from repro.mappings.tgd import StTgd


def generate_scenario(config: ScenarioConfig) -> Scenario:
    """Deterministically generate one scenario from *config*."""
    rng = random.Random(config.seed)

    primitives = [
        make_primitive(rng.choice(config.primitive_kinds), i, rng, config.add_remove_range)
        for i in range(config.num_primitives)
    ]

    source_schema, target_schema = _assemble_schemas(primitives)
    source = populate(source_schema, config.rows_per_relation, rng, config.value_pool)

    gold_tgds = [t for p in primitives for t in p.gold_tgds]
    reference_target = _grounded_gold_exchange(source, gold_tgds)
    target = reference_target.copy()

    correspondences = [c for p in primitives for c in p.correspondences]
    correspondences += _random_correspondences(
        primitives, config.pi_corresp, rng
    )

    candidates = generate_candidates(source_schema, target_schema, correspondences)
    gold_indices = _locate_gold(candidates, gold_tgds)

    deleted, added = _apply_data_noise(
        source, target, candidates, gold_indices, config, rng
    )

    return Scenario(
        config=config,
        primitives=primitives,
        source_schema=source_schema,
        target_schema=target_schema,
        source=source,
        target=target,
        reference_target=reference_target,
        correspondences=correspondences,
        candidates=candidates,
        gold_indices=gold_indices,
        deleted_facts=deleted,
        added_facts=added,
    )


def _assemble_schemas(primitives: list[PrimitiveOutput]) -> tuple[Schema, Schema]:
    source_schema, target_schema = Schema("source"), Schema("target")
    for p in primitives:
        for rel in p.source_relations:
            source_schema.add(rel)
        for rel in p.target_relations:
            target_schema.add(rel)
    for p in primitives:
        for fk in p.source_fks:
            source_schema.add_foreign_key(fk)
        for fk in p.target_fks:
            target_schema.add_foreign_key(fk)
    return source_schema, target_schema


def _grounded_gold_exchange(source: Instance, gold_tgds: list[StTgd]) -> Instance:
    """Chase with MG, then replace every null by a fresh constant."""
    result = chase(source, gold_tgds, NullFactory())
    null_to_constant: dict = {}
    grounded = Instance()
    for f in result.instance:
        values = []
        for v in f.values:
            if is_null(v):
                if v not in null_to_constant:
                    null_to_constant[v] = Constant(f"sk{len(null_to_constant)}")
                values.append(null_to_constant[v])
            else:
                values.append(v)
        grounded.add(Fact(f.relation, tuple(values)))
    return grounded


def _random_correspondences(
    primitives: list[PrimitiveOutput],
    pi_corresp: float,
    rng: random.Random,
) -> list[Correspondence]:
    """The appendix's metadata noise: random correspondences onto target relations."""
    if pi_corresp <= 0:
        return []
    target_relations = [
        (p, rel) for p in primitives for rel in p.target_relations
    ]
    count = round(len(target_relations) * pi_corresp / 100.0)
    chosen = rng.sample(target_relations, min(count, len(target_relations)))
    extra: list[Correspondence] = []
    for owner, target_rel in chosen:
        donors = [
            rel
            for p in primitives
            if p is not owner
            for rel in p.source_relations
        ]
        if not donors:
            continue  # single-primitive scenarios have no foreign donor
        donor = rng.choice(donors)
        for attr in target_rel.attribute_names:
            extra.append(
                Correspondence(
                    donor.name,
                    rng.choice(donor.attribute_names),
                    target_rel.name,
                    attr,
                )
            )
    return extra


def _locate_gold(candidates: list[StTgd], gold_tgds: list[StTgd]) -> list[int]:
    """Indices of the gold tgds inside C (matching up to variable renaming)."""
    canonical_to_index = {c.canonical(): i for i, c in enumerate(candidates)}
    indices = []
    for g in gold_tgds:
        idx = canonical_to_index.get(g.canonical())
        if idx is None:
            raise ScenarioError(
                f"candidate generation failed to reproduce gold tgd {g}"
            )
        indices.append(idx)
    return indices


def _apply_data_noise(
    source: Instance,
    target: Instance,
    candidates: list[StTgd],
    gold_indices: list[int],
    config: ScenarioConfig,
    rng: random.Random,
) -> tuple[list[Fact], list[Fact]]:
    """Delete non-certain error tuples / add non-certain unexplained tuples."""
    if config.pi_errors <= 0 and config.pi_unexplained <= 0:
        return [], []

    gold_set = set(gold_indices)
    non_gold = [c for i, c in enumerate(candidates) if i not in gold_set]
    non_gold_chase = chase(source, non_gold, NullFactory())

    # Non-certain error tuples: J facts no non-gold candidate generates
    # (homomorphism-aware — a chase fact with nulls may still "generate" a
    # ground J fact).
    deletable = []
    for t in sorted(target, key=repr):
        generated_by_non_gold = any(
            fact_matches(f, t) is not None
            for f in non_gold_chase.instance.facts_of(t.relation)
        )
        if not generated_by_non_gold:
            deletable.append(t)

    # Non-certain unexplained tuples: non-gold chase facts with no
    # homomorphic image in J.
    addable = [
        f
        for f in sorted(non_gold_chase.instance, key=repr)
        if not has_fact_homomorphism(f, target)
    ]

    deleted = rng.sample(deletable, round(len(deletable) * config.pi_errors / 100.0))
    added_raw = rng.sample(addable, round(len(addable) * config.pi_unexplained / 100.0))

    for t in deleted:
        target.discard(t)

    null_to_constant: dict = {}
    added: list[Fact] = []
    for f in added_raw:
        values = []
        for v in f.values:
            if is_null(v):
                if v not in null_to_constant:
                    null_to_constant[v] = Constant(f"nz{len(null_to_constant)}")
                values.append(null_to_constant[v])
            else:
                values.append(v)
        grounded = Fact(f.relation, tuple(values))
        if target.add(grounded):
            added.append(grounded)
    return list(deleted), added
