"""repro — A Collective, Probabilistic Approach to Schema Mapping.

Reproduction of Kimmig, Memory, Miller & Getoor (ICDE 2017): selecting a
schema mapping (a set of st tgds) from Clio-generated candidates by
minimizing a coverage/error/size objective, relaxed into a hinge-loss
MRF (probabilistic soft logic) and solved collectively with ADMM.

See :mod:`repro.core` for the public API, ``DESIGN.md`` for the system
inventory, and ``EXPERIMENTS.md`` for the reproduced evaluation.
"""

__version__ = "1.0.0"
