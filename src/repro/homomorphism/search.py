"""Homomorphism search between instances with labeled nulls.

A homomorphism h maps labeled nulls to values (constants or nulls) and is
the identity on constants; it maps an instance K into an instance J if
h(f) is a fact of J for every fact f of K.  Homomorphisms are the standard
tool for comparing instances with incomplete information and underpin the
paper's graded ``covers``/``creates`` semantics.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.datamodel.instance import Fact, Instance
from repro.datamodel.values import LabeledNull, Value, is_null


def fact_matches(
    f: Fact,
    target: Fact,
    fixed: Mapping[LabeledNull, Value] | None = None,
) -> dict[LabeledNull, Value] | None:
    """Match fact *f* onto *target* under an optional pre-bound null map.

    Returns the (minimal) null assignment extending *fixed* that maps *f*
    exactly onto *target*, or None if no such assignment exists.  Constants
    must agree position-wise; a null may bind to any value but must bind
    consistently across positions.
    """
    if f.relation != target.relation or f.arity != target.arity:
        return None
    binding: dict[LabeledNull, Value] = {}
    for mine, theirs in zip(f.values, target.values):
        if is_null(mine):
            bound = (fixed or {}).get(mine, binding.get(mine))
            if bound is None:
                binding[mine] = theirs
            elif bound != theirs:
                return None
        elif mine != theirs:
            return None
    return binding


def fact_homomorphisms(
    f: Fact,
    instance: Instance,
    fixed: Mapping[LabeledNull, Value] | None = None,
) -> Iterator[dict[LabeledNull, Value]]:
    """All ways of mapping the single fact *f* into *instance*.

    Yields the null bindings (excluding the entries of *fixed*).
    """
    # repro-lint: disable=RPL002 -- existential enumeration: callers
    # consume all bindings or test emptiness, never the order.
    for candidate in instance.facts_of(f.relation):
        binding = fact_matches(f, candidate, fixed)
        if binding is not None:
            yield binding


def has_fact_homomorphism(
    f: Fact,
    instance: Instance,
    fixed: Mapping[LabeledNull, Value] | None = None,
) -> bool:
    """True iff the single fact *f* maps into *instance* (given *fixed*)."""
    return next(fact_homomorphisms(f, instance, fixed), None) is not None


def find_homomorphism(
    source: Instance,
    target: Instance,
) -> dict[LabeledNull, Value] | None:
    """Find a homomorphism mapping *all* of *source* into *target*.

    Backtracking over source facts, most-constrained (fewest candidate
    images) first.  Returns the null assignment or None.  This is the
    decision procedure behind universality checks: a canonical chase
    result must map into every solution of the data-exchange problem.
    """
    facts = sorted(source, key=lambda f: len(target.facts_of(f.relation)))

    def extend(index: int, binding: dict[LabeledNull, Value]) -> dict[LabeledNull, Value] | None:
        if index == len(facts):
            return dict(binding)
        f = facts[index]
        # repro-lint: disable=RPL002 -- backtracking existence search:
        # any satisfying homomorphism is as good as any other.
        for candidate in target.facts_of(f.relation):
            local = fact_matches(f, candidate, binding)
            if local is None:
                continue
            binding.update(local)
            result = extend(index + 1, binding)
            if result is not None:
                return result
            for null in local:
                del binding[null]
        return None

    return extend(0, {})


def is_homomorphic(source: Instance, target: Instance) -> bool:
    """True iff some homomorphism maps *source* into *target*."""
    return find_homomorphism(source, target) is not None
