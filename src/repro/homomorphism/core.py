"""Cores of instances with labeled nulls.

The *core* is the smallest instance homomorphically equivalent to a given
instance — the canonical, redundancy-free data-exchange result (Fagin,
Kolaitis, Popa).  Canonical chase solutions routinely contain redundancy:
two candidates copying the same source tuple yield isomorphic facts that
fold onto each other.  The core folds them away.

Computation: greedily look for a *proper retraction* — a homomorphism
from the instance into itself minus one fact — and replace the instance
by its image; repeat to a fixpoint.  Each fold strictly shrinks the
instance, and at the fixpoint no fact is redundant, which for finite
instances is exactly the core (up to isomorphism).
"""

from __future__ import annotations

from repro.datamodel.instance import Instance
from repro.homomorphism.search import find_homomorphism


def _image(instance: Instance, binding) -> Instance:
    return Instance(f.substitute(binding) for f in instance)


def core_of(instance: Instance, max_folds: int | None = None) -> Instance:
    """The core of *instance* (the instance itself when already a core).

    ``max_folds`` optionally caps the number of folding steps (each step
    removes at least one fact), for callers that only want cheap partial
    minimization.
    """
    current = instance.copy()
    folds = 0
    changed = True
    while changed:
        changed = False
        for f in sorted(current, key=repr):
            if f.is_ground:
                continue  # ground facts are in every retract
            without = Instance(g for g in current if g != f)
            binding = find_homomorphism(current, without)
            if binding is None:
                continue
            current = _image(current, binding)
            folds += 1
            changed = True
            if max_folds is not None and folds >= max_folds:
                return current
            break
    return current


def is_core(instance: Instance) -> bool:
    """True iff *instance* admits no proper retraction."""
    for f in instance:
        if f.is_ground:
            continue
        without = Instance(g for g in instance if g != f)
        if find_homomorphism(instance, without) is not None:
            return False
    return True


def fold_count(instance: Instance) -> int:
    """Number of facts the core computation removes (redundancy measure)."""
    return len(instance) - len(core_of(instance))
