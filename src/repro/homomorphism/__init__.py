"""Homomorphisms and the graded covers/creates semantics of Eq. (9)."""

from repro.homomorphism.core import core_of, fold_count, is_core
from repro.homomorphism.covers import CoverComputer, covers, creates, error_facts
from repro.homomorphism.search import (
    fact_homomorphisms,
    fact_matches,
    find_homomorphism,
    has_fact_homomorphism,
    is_homomorphic,
)

__all__ = [
    "CoverComputer",
    "core_of",
    "covers",
    "creates",
    "fold_count",
    "is_core",
    "error_facts",
    "fact_homomorphisms",
    "fact_matches",
    "find_homomorphism",
    "has_fact_homomorphism",
    "is_homomorphic",
]
