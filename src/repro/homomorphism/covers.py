"""Graded ``covers`` and Boolean ``creates`` — the Eq. (9) building blocks.

Reconstructed from the paper's appendix (Section I), which fixes the
semantics numerically:

* ``creates(theta, t) = 1`` for a chase fact t of K_theta iff t has **no**
  homomorphic image in J — the candidate invents a fact the data example
  cannot justify at all.

* ``covers(theta, t') in [0,1]`` for a target-example fact t' in J is the
  best *fraction of attribute positions of t'* explained by some chase
  fact t with h(t) = t':

  - a position holding a **constant** counts iff it equals t' there;
  - a position holding a **null** n counts iff n is *corroborated*: n also
    occurs in another chase fact u of K_theta that itself maps into J by a
    homomorphism consistent with n -> t'[position].

  This reproduces the appendix exactly: theta1's lone null Null2 is not
  corroborated, so task(ML, Alice, Null2) covers task(ML, Alice, 111) to
  degree 2/3, while theta3's Null4 is corroborated through
  org(Null4, SAP) -> org(111, SAP), lifting the degree to 3/3.
"""

from __future__ import annotations

from fractions import Fraction

from repro.datamodel.instance import Fact, Instance
from repro.datamodel.values import LabeledNull, Value, is_null
from repro.homomorphism.search import fact_matches, has_fact_homomorphism


class CoverComputer:
    """Computes cover degrees of J-facts by one candidate's chase instance.

    Construction indexes the chase instance by null so corroboration
    checks touch only the facts sharing the null; results of the
    corroboration subquery are memoized.
    """

    def __init__(self, chase_instance: Instance, target_example: Instance):
        self._chase = chase_instance
        self._j = target_example
        self._facts_with_null: dict[LabeledNull, list[Fact]] = {}
        for f in chase_instance:
            # dict.fromkeys dedups while keeping first-appearance order,
            # so _facts_with_null's key order is chase-order stable.
            for n in dict.fromkeys(f.nulls):
                self._facts_with_null.setdefault(n, []).append(f)
        self._corroboration_cache: dict[tuple[Fact, LabeledNull, Value], bool] = {}

    def _is_corroborated(self, origin: Fact, null: LabeledNull, image: Value) -> bool:
        """Does *null* (bound to *image*) occur in another chase fact mapping into J?"""
        key = (origin, null, image)
        cached = self._corroboration_cache.get(key)
        if cached is not None:
            return cached
        result = False
        for witness in self._facts_with_null.get(null, ()):
            if witness == origin:
                continue
            if has_fact_homomorphism(witness, self._j, fixed={null: image}):
                result = True
                break
        self._corroboration_cache[key] = result
        return result

    def degree_via(self, chase_fact: Fact, target_fact: Fact) -> Fraction:
        """Cover degree of *target_fact* via the single *chase_fact* (0 if no hom)."""
        binding = fact_matches(chase_fact, target_fact)
        if binding is None:
            return Fraction(0)
        explained = 0
        for value, image in zip(chase_fact.values, target_fact.values):
            if not is_null(value):
                explained += 1
            elif self._is_corroborated(chase_fact, value, image):
                explained += 1
        return Fraction(explained, target_fact.arity)

    def degree(self, target_fact: Fact) -> Fraction:
        """Best cover degree of *target_fact* over all chase facts (the paper's covers)."""
        best = Fraction(0)
        # repro-lint: disable=RPL002 -- max over all chase facts with a
        # strict improvement test: the result is order-independent.
        for chase_fact in self._chase.facts_of(target_fact.relation):
            d = self.degree_via(chase_fact, target_fact)
            if d > best:
                best = d
                if best == 1:
                    break
        return best


def covers(chase_instance: Instance, target_fact: Fact, target_example: Instance) -> Fraction:
    """One-shot cover degree; prefer :class:`CoverComputer` for many queries."""
    return CoverComputer(chase_instance, target_example).degree(target_fact)


def creates(chase_fact: Fact, target_example: Instance) -> bool:
    """True iff *chase_fact* has no homomorphic image in the target example.

    Such a fact is a (potential) error of any selection containing the
    candidate that produced it.
    """
    return not has_fact_homomorphism(chase_fact, target_example)


def error_facts(chase_instance: Instance, target_example: Instance) -> list[Fact]:
    """All facts of *chase_instance* that :func:`creates` flags as errors."""
    return [f for f in chase_instance if creates(f, target_example)]
