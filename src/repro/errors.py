"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class SchemaError(ReproError):
    """A schema, relation, or attribute is malformed or unknown."""


class InstanceError(ReproError):
    """A fact or instance violates its schema."""


class MappingError(ReproError):
    """An st tgd is malformed (unsafe variables, unknown relations, ...)."""


class ParseError(MappingError):
    """A textual mapping or atom could not be parsed."""


class ChaseError(ReproError):
    """The chase could not be executed on the given input."""


class GroundingError(ReproError):
    """A PSL rule could not be grounded against the database."""


class InferenceError(ReproError):
    """MAP inference failed to produce a usable solution."""


class SelectionError(ReproError):
    """Mapping selection was invoked on inconsistent inputs."""


class ScenarioError(ReproError):
    """Scenario generation received invalid parameters."""
