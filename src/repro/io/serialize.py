"""JSON (de)serialization of schemas, instances, tgds, and scenarios.

A stable on-disk format so scenarios can be generated once and re-used
across runs, and so real-world inputs can be authored by hand:

* values: constants as-is; labeled nulls as ``{"null": <label>}``;
* facts: ``[relation, [values...]]``;
* tgds: the textual format of :mod:`repro.mappings.parser`;
* scenarios: one JSON object carrying schemas, instances, candidates,
  gold indices, and the generation config.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.candidates.correspondence import Correspondence
from repro.datamodel.instance import Fact, Instance
from repro.datamodel.schema import Attribute, ForeignKey, Relation, Schema
from repro.datamodel.values import Constant, LabeledNull, Value
from repro.errors import ReproError
from repro.ibench.config import ScenarioConfig
from repro.ibench.scenario import Scenario
from repro.mappings.parser import parse_tgd
from repro.mappings.tgd import StTgd


class SerializationError(ReproError):
    """The payload does not match the expected format."""


# -- values -------------------------------------------------------------------


def value_to_json(value: Value) -> object:
    if isinstance(value, LabeledNull):
        return {"null": value.label}
    return value.value


def value_from_json(payload: object) -> Value:
    if isinstance(payload, dict):
        if set(payload) != {"null"}:
            raise SerializationError(f"bad value payload: {payload!r}")
        return LabeledNull(int(payload["null"]))
    return Constant(payload)


# -- instances ----------------------------------------------------------------


def instance_to_json(instance: Instance) -> list:
    return [
        [f.relation, [value_to_json(v) for v in f.values]]
        for f in sorted(instance, key=repr)
    ]


def instance_from_json(payload: list) -> Instance:
    facts = []
    for entry in payload:
        if not isinstance(entry, list) or len(entry) != 2:
            raise SerializationError(f"bad fact payload: {entry!r}")
        relation, values = entry
        facts.append(Fact(relation, tuple(value_from_json(v) for v in values)))
    return Instance(facts)


# -- schemas ------------------------------------------------------------------


def schema_to_json(schema: Schema) -> dict:
    return {
        "name": schema.name,
        "relations": [
            {
                "name": rel.name,
                "attributes": list(rel.attribute_names),
                "key": list(rel.key),
            }
            for rel in schema.relations.values()
        ],
        "foreign_keys": [
            {
                "source": fk.source,
                "source_attributes": list(fk.source_attributes),
                "target": fk.target,
                "target_attributes": list(fk.target_attributes),
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_json(payload: dict) -> Schema:
    schema = Schema(payload["name"])
    for rel in payload["relations"]:
        schema.add(
            Relation(
                rel["name"],
                tuple(Attribute(a) for a in rel["attributes"]),
                tuple(rel.get("key", ())),
            )
        )
    for fk in payload.get("foreign_keys", ()):
        schema.add_foreign_key(
            ForeignKey(
                fk["source"],
                tuple(fk["source_attributes"]),
                fk["target"],
                tuple(fk["target_attributes"]),
            )
        )
    return schema


# -- tgds and correspondences ---------------------------------------------------


def tgd_to_json(tgd: StTgd) -> str:
    return repr(tgd)


def tgd_from_json(payload: str) -> StTgd:
    return parse_tgd(payload)


def correspondence_to_json(c: Correspondence) -> list:
    return [c.source_relation, c.source_attribute, c.target_relation, c.target_attribute]


def correspondence_from_json(payload: list) -> Correspondence:
    return Correspondence(*payload)


# -- scenarios -----------------------------------------------------------------


def scenario_to_json(scenario: Scenario) -> dict:
    return {
        "config": {
            "num_primitives": scenario.config.num_primitives,
            "primitive_kinds": list(scenario.config.primitive_kinds),
            "rows_per_relation": scenario.config.rows_per_relation,
            "value_pool": scenario.config.value_pool,
            "pi_corresp": scenario.config.pi_corresp,
            "pi_errors": scenario.config.pi_errors,
            "pi_unexplained": scenario.config.pi_unexplained,
            "add_remove_range": list(scenario.config.add_remove_range),
            "seed": scenario.config.seed,
        },
        "source_schema": schema_to_json(scenario.source_schema),
        "target_schema": schema_to_json(scenario.target_schema),
        "source": instance_to_json(scenario.source),
        "target": instance_to_json(scenario.target),
        "reference_target": instance_to_json(scenario.reference_target),
        "correspondences": [correspondence_to_json(c) for c in scenario.correspondences],
        "candidates": [tgd_to_json(c) for c in scenario.candidates],
        "gold_indices": list(scenario.gold_indices),
        "deleted_facts": instance_to_json(Instance(scenario.deleted_facts)),
        "added_facts": instance_to_json(Instance(scenario.added_facts)),
    }


def scenario_from_json(payload: dict) -> Scenario:
    cfg = payload["config"]
    config = ScenarioConfig(
        num_primitives=cfg["num_primitives"],
        primitive_kinds=tuple(cfg["primitive_kinds"]),
        rows_per_relation=cfg["rows_per_relation"],
        value_pool=cfg["value_pool"],
        pi_corresp=cfg["pi_corresp"],
        pi_errors=cfg["pi_errors"],
        pi_unexplained=cfg["pi_unexplained"],
        add_remove_range=tuple(cfg["add_remove_range"]),
        seed=cfg["seed"],
    )
    return Scenario(
        config=config,
        primitives=[],  # primitive objects are generation artifacts, not persisted
        source_schema=schema_from_json(payload["source_schema"]),
        target_schema=schema_from_json(payload["target_schema"]),
        source=instance_from_json(payload["source"]),
        target=instance_from_json(payload["target"]),
        reference_target=instance_from_json(payload["reference_target"]),
        correspondences=[
            correspondence_from_json(c) for c in payload["correspondences"]
        ],
        candidates=[tgd_from_json(c) for c in payload["candidates"]],
        gold_indices=list(payload["gold_indices"]),
        deleted_facts=list(instance_from_json(payload["deleted_facts"])),
        added_facts=list(instance_from_json(payload["added_facts"])),
    )


def save_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write *scenario* as JSON to *path*."""
    Path(path).write_text(json.dumps(scenario_to_json(scenario), indent=1))


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario previously written by :func:`save_scenario`."""
    return scenario_from_json(json.loads(Path(path).read_text()))
