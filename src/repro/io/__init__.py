"""Persistence: JSON serialization of instances, schemas, and scenarios."""

from repro.io.serialize import (
    SerializationError,
    instance_from_json,
    instance_to_json,
    load_scenario,
    save_scenario,
    scenario_from_json,
    scenario_to_json,
    schema_from_json,
    schema_to_json,
    tgd_from_json,
    tgd_to_json,
)

__all__ = [
    "SerializationError",
    "instance_from_json",
    "instance_to_json",
    "load_scenario",
    "save_scenario",
    "scenario_from_json",
    "scenario_to_json",
    "schema_from_json",
    "schema_to_json",
    "tgd_from_json",
    "tgd_to_json",
]
