"""Clio-style candidate generation from attribute correspondences."""

from repro.candidates.associations import Association, logical_associations
from repro.candidates.correspondence import Correspondence, validate_correspondences
from repro.candidates.cliogen import generate_candidates

__all__ = [
    "Association",
    "Correspondence",
    "generate_candidates",
    "logical_associations",
    "validate_correspondences",
]
