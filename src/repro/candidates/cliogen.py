"""Clio-style candidate generation from correspondences.

For every pair (source association, target association) connected by at
least one correspondence, emit a candidate st tgd: the body is the source
association's join pattern, the head the target association's, and each
corresponded target position receives the matching source variable while
the remaining head positions become existentially quantified.

This reproduces the behaviour the paper relies on: with the gold
correspondences present, the gold mapping's tgds are generated (MG is a
subset of the candidate set C), and noisy extra correspondences produce
plausible-but-wrong additional candidates for the selector to reject.

When several correspondences claim the same target position (e.g. a
random correspondence colliding with a gold one inside the same
association pair), one candidate per combination is generated, up to
``variant_cap`` variants per pair.
"""

from __future__ import annotations

from itertools import islice, product
from typing import Iterable, Sequence

from repro.candidates.associations import Association, logical_associations
from repro.candidates.correspondence import Correspondence, validate_correspondences
from repro.datamodel.schema import Schema
from repro.mappings.terms import Variable
from repro.mappings.tgd import StTgd


def generate_candidates(
    source_schema: Schema,
    target_schema: Schema,
    correspondences: Sequence[Correspondence],
    variant_cap: int = 8,
) -> list[StTgd]:
    """All candidate st tgds implied by *correspondences* (deduplicated)."""
    validate_correspondences(correspondences, source_schema, target_schema)
    source_associations = logical_associations(source_schema)
    target_associations = logical_associations(target_schema)

    candidates: list[StTgd] = []
    seen: set[StTgd] = set()
    for assoc_s in source_associations:
        for assoc_t in target_associations:
            for tgd in _candidates_for_pair(
                assoc_s,
                assoc_t,
                source_schema,
                target_schema,
                correspondences,
                variant_cap,
            ):
                canonical = tgd.canonical()
                if canonical not in seen:
                    seen.add(canonical)
                    candidates.append(tgd)
    return candidates


def _candidates_for_pair(
    assoc_s: Association,
    assoc_t: Association,
    source_schema: Schema,
    target_schema: Schema,
    correspondences: Sequence[Correspondence],
    variant_cap: int,
) -> Iterable[StTgd]:
    relevant = [
        c
        for c in correspondences
        if c.source_relation in assoc_s.relations
        and c.target_relation in assoc_t.relations
    ]
    if not relevant:
        return

    body_atoms = assoc_s.atoms(source_schema, prefix="Src_")
    head_atoms = assoc_t.atoms(target_schema, prefix="Tgt_")

    # Source variable for each (relation, attribute) position of the body.
    source_var: dict[tuple[str, str], Variable] = {}
    for rel_name, atom in body_atoms.items():
        for attr, term in zip(source_schema.get(rel_name).attribute_names, atom.terms):
            source_var[(rel_name, attr)] = term

    # Head variable for each (relation, attribute): may be shared via joins.
    head_var: dict[tuple[str, str], Variable] = {}
    for rel_name, atom in head_atoms.items():
        for attr, term in zip(target_schema.get(rel_name).attribute_names, atom.terms):
            head_var[(rel_name, attr)] = term

    # Group correspondences by the *head variable* they would bind, so two
    # join-unified positions hit by one correspondence stay consistent.
    options: dict[Variable, list[Variable]] = {}
    for c in sorted(relevant, key=repr):
        hv = head_var[(c.target_relation, c.target_attribute)]
        sv = source_var[(c.source_relation, c.source_attribute)]
        bucket = options.setdefault(hv, [])
        if sv not in bucket:
            bucket.append(sv)

    head_vars = sorted(options, key=lambda v: v.name)
    choice_lists = [options[hv] for hv in head_vars]
    for combo in islice(product(*choice_lists), variant_cap):
        substitution = dict(zip(head_vars, combo))
        head = tuple(head_atoms[r].rename(substitution) for r in sorted(head_atoms))
        body = tuple(body_atoms[r] for r in sorted(body_atoms))
        yield StTgd(body, head)
