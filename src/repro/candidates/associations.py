"""Logical associations: join-connected groups of relations.

Clio interprets a schema's foreign keys as join paths and generates
mappings between *logical associations* — a relation together with the
relations it references, transitively, each pair joined on its foreign
key.  For every relation R we build the association obtained by chasing
R's outgoing foreign keys (to the referenced parents); single relations
are their own (trivial) associations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.schema import Schema
from repro.mappings.atoms import Atom
from repro.mappings.terms import Variable


@dataclass(frozen=True)
class Association:
    """A set of relations plus the FK join conditions linking them.

    ``joins`` holds (relation_a, attribute_a, relation_b, attribute_b)
    equalities.  ``root`` is the relation whose FK closure produced the
    association.
    """

    root: str
    relations: frozenset[str]
    joins: tuple[tuple[str, str, str, str], ...] = ()

    def atoms(self, schema: Schema, prefix: str = "") -> dict[str, Atom]:
        """Build one atom per relation with join-unified variables.

        Every (relation, attribute) position gets variable
        ``{prefix}{relation}_{attribute}``; join equalities then merge
        variables via a union-find so joined positions share one variable.
        """
        parent: dict[tuple[str, str], tuple[str, str]] = {}

        def find(x: tuple[str, str]) -> tuple[str, str]:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: tuple[str, str], y: tuple[str, str]) -> None:
            parent[find(x)] = find(y)

        for rel_a, attr_a, rel_b, attr_b in self.joins:
            union((rel_a, attr_a), (rel_b, attr_b))

        atoms: dict[str, Atom] = {}
        for rel_name in sorted(self.relations):
            rel = schema.get(rel_name)
            terms = []
            for attr in rel.attribute_names:
                canonical_rel, canonical_attr = find((rel_name, attr))
                terms.append(Variable(f"{prefix}{canonical_rel}_{canonical_attr}"))
            atoms[rel_name] = Atom(rel_name, tuple(terms))
        return atoms

    def __repr__(self) -> str:
        rels = ", ".join(sorted(self.relations))
        return f"Assoc[{self.root}: {rels}]"


def _fk_closure(root: str, schema: Schema) -> Association:
    """Association of *root*: follow outgoing FKs to referenced relations."""
    relations = {root}
    joins: list[tuple[str, str, str, str]] = []
    frontier = [root]
    while frontier:
        current = frontier.pop()
        for fk in schema.foreign_keys:
            if fk.source != current:
                continue
            for sa, ta in zip(fk.source_attributes, fk.target_attributes):
                joins.append((fk.source, sa, fk.target, ta))
            if fk.target not in relations:
                relations.add(fk.target)
                frontier.append(fk.target)
    return Association(root, frozenset(relations), tuple(sorted(set(joins))))


def logical_associations(schema: Schema) -> list[Association]:
    """All logical associations of *schema*, one per root relation, deduped.

    Associations with identical relation sets and joins are reported once
    (keeping the lexicographically first root).
    """
    seen: dict[tuple, Association] = {}
    for root in sorted(schema.relations):
        assoc = _fk_closure(root, schema)
        key = (assoc.relations, assoc.joins)
        if key not in seen:
            seen[key] = assoc
    return list(seen.values())
