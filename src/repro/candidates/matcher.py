"""A simple schema matcher: correspondences from attribute-name similarity.

The paper assumes correspondences are given (drawn by a user or produced
by a matcher).  For end-to-end use on real schemas this module provides
the standard baseline matcher: attribute names are compared by character
n-gram Jaccard similarity (with relation names as context), and pairs
above a threshold become :class:`~repro.candidates.correspondence.Correspondence`s.

This is intentionally the *noisy* front end the selection method is
designed to clean up after: near-synonym attributes in unrelated
relations produce exactly the spurious correspondences the evaluation
injects synthetically via ``pi_corresp``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.candidates.correspondence import Correspondence
from repro.datamodel.schema import Schema


def ngrams(text: str, n: int = 3) -> frozenset[str]:
    """Character n-grams of *text*, lowercased and padded."""
    padded = f"^{text.lower()}$"
    if len(padded) <= n:
        return frozenset({padded})
    return frozenset(padded[i : i + n] for i in range(len(padded) - n + 1))


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """Jaccard similarity of two sets (1.0 when both are empty)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def name_similarity(
    source_relation: str,
    source_attribute: str,
    target_relation: str,
    target_attribute: str,
    attribute_weight: float = 0.8,
) -> float:
    """Blend of attribute-name and relation-name n-gram similarity."""
    attribute_score = jaccard(ngrams(source_attribute), ngrams(target_attribute))
    relation_score = jaccard(ngrams(source_relation), ngrams(target_relation))
    return attribute_weight * attribute_score + (1 - attribute_weight) * relation_score


@dataclass(frozen=True)
class ScoredCorrespondence:
    """A correspondence plus its matcher score."""

    correspondence: Correspondence
    score: float


def match_schemas(
    source_schema: Schema,
    target_schema: Schema,
    threshold: float = 0.5,
    attribute_weight: float = 0.8,
) -> list[ScoredCorrespondence]:
    """All attribute pairs scoring at least *threshold*, best first.

    Within one target attribute, every source attribute above the
    threshold is reported — downstream selection, not the matcher, is
    responsible for resolving the ambiguity.
    """
    scored: list[ScoredCorrespondence] = []
    for source_relation in source_schema.relations.values():
        for source_attribute in source_relation.attribute_names:
            for target_relation in target_schema.relations.values():
                for target_attribute in target_relation.attribute_names:
                    score = name_similarity(
                        source_relation.name,
                        source_attribute,
                        target_relation.name,
                        target_attribute,
                        attribute_weight,
                    )
                    if score >= threshold:
                        scored.append(
                            ScoredCorrespondence(
                                Correspondence(
                                    source_relation.name,
                                    source_attribute,
                                    target_relation.name,
                                    target_attribute,
                                ),
                                score,
                            )
                        )
    scored.sort(key=lambda s: (-s.score, repr(s.correspondence)))
    return scored


def correspondences_from_names(
    source_schema: Schema,
    target_schema: Schema,
    threshold: float = 0.5,
) -> list[Correspondence]:
    """Convenience wrapper returning bare correspondences."""
    return [s.correspondence for s in match_schemas(source_schema, target_schema, threshold)]
