"""Attribute correspondences — the metadata evidence driving candidates.

A correspondence asserts that a source attribute matches a target
attribute (the output of a schema matcher, or hand-drawn lines in a
mapping GUI).  Clio-style generation turns sets of correspondences into
candidate st tgds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datamodel.schema import Schema
from repro.errors import SchemaError


@dataclass(frozen=True, slots=True)
class Correspondence:
    """``source_relation.source_attribute  ~  target_relation.target_attribute``."""

    source_relation: str
    source_attribute: str
    target_relation: str
    target_attribute: str

    def validate_against(self, source_schema: Schema, target_schema: Schema) -> None:
        """Raise :class:`SchemaError` unless both endpoints exist."""
        source_schema.get(self.source_relation).position_of(self.source_attribute)
        target_schema.get(self.target_relation).position_of(self.target_attribute)

    def __repr__(self) -> str:
        return (
            f"{self.source_relation}.{self.source_attribute}"
            f" ~ {self.target_relation}.{self.target_attribute}"
        )


def validate_correspondences(
    correspondences,
    source_schema: Schema,
    target_schema: Schema,
) -> None:
    """Validate a whole collection, reporting the first offender."""
    for c in correspondences:
        try:
            c.validate_against(source_schema, target_schema)
        except SchemaError as exc:
            raise SchemaError(f"invalid correspondence {c}: {exc}") from exc
