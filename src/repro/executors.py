"""Pluggable map-style executors for embarrassingly parallel work.

The selection pipeline and the evaluation engine both fan out over
independent, picklable work units (one per candidate, one per grid cell).
This module gives them a common, minimal execution abstraction:

* :class:`SerialExecutor` — in-process ``map``; zero overhead, always
  available, shares in-process caches with the caller;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  with chunked dispatch; true multi-core parallelism for CPU-bound pure
  Python work.

Both preserve input order, so callers get deterministic merges for free.
``resolve_executor`` turns user-facing specs (``"serial"``, ``"process"``,
``"process:8"``) into executor objects — the form the CLI exposes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, Protocol, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")
R = TypeVar("R")


class MapExecutor(Protocol):
    """Anything that maps a picklable function over work units in order."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        ...


class SerialExecutor:
    """Run work units one after another in the calling process."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        return map(fn, list(items))

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ProcessExecutor:
    """Run work units in a pool of worker processes.

    A fresh pool is created per :meth:`map` call, so the executor object
    itself stays picklable and stateless.  Work is dispatched in chunks to
    amortize IPC; results come back in submission order.
    """

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or os.cpu_count() or 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        items = list(items)
        if len(items) <= 1 or self.max_workers <= 1:
            return map(fn, items)
        chunksize = max(1, len(items) // (self.max_workers * 4))
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            # Materialize inside the context manager so the pool is not
            # torn down while results are still streaming.
            return iter(list(pool.map(fn, items, chunksize=chunksize)))

    def __repr__(self) -> str:
        return f"ProcessExecutor(max_workers={self.max_workers})"


def resolve_executor(spec: object | None) -> MapExecutor:
    """Resolve an executor spec into an executor instance.

    Accepts ``None`` / ``"serial"`` (serial), ``"process"`` (one worker
    per CPU), ``"process:N"`` (N workers), or any object that already has
    a ``map`` method (returned as-is).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        if name == "serial":
            return SerialExecutor()
        if name == "process":
            if arg:
                try:
                    workers = int(arg)
                except ValueError:
                    raise ReproError(f"bad worker count in executor spec {spec!r}")
                if workers < 1:
                    raise ReproError(f"worker count must be >= 1 in {spec!r}")
                return ProcessExecutor(workers)
            return ProcessExecutor()
        raise ReproError(f"unknown executor spec {spec!r} (use 'serial' or 'process[:N]')")
    if hasattr(spec, "map"):
        return spec  # type: ignore[return-value]
    raise ReproError(f"cannot interpret {spec!r} as an executor")
