"""Pluggable map-style executors for embarrassingly parallel work.

The selection pipeline, the evaluation engine, sharded grounding, and
the partitioned ADMM solver all fan out over independent, picklable work
units (one per candidate, per grid cell, per grounding shard, per solver
block).  This module gives them a common, minimal execution abstraction:

* :class:`SerialExecutor` — in-process ``map``; zero overhead, always
  available, shares in-process caches with the caller;
* :class:`ThreadExecutor` — a shared ``ThreadPoolExecutor``; cheap
  per-call dispatch and shared memory, a good backend for numpy-heavy
  steps (which release the GIL) mapped many times, e.g. the per-block
  ADMM local updates;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  with chunked dispatch; true multi-core parallelism for CPU-bound pure
  Python work.  In **persistent** mode the worker pool outlives
  individual ``map`` calls (created lazily, initializer applied once per
  worker), so a caller that maps thousands of times — the per-iteration
  ADMM block updates — pays the pool spawn once, not per map.

All executors preserve input order, so callers get deterministic merges
for free.  The parallel ``map`` paths *stream*: they return a generator
that keeps only a bounded window of work in flight, so a caller that
merges results one by one (sharded grounding) holds O(window) results,
not O(all work units).  ``resolve_executor`` turns user-facing specs
(``"serial"``, ``"thread[:N]"``, ``"process[:8]"``) into executor
objects — the form the CLI exposes — handing out one shared (and, for
processes, persistent) instance per backend and worker count.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from itertools import islice
from typing import Callable, Iterator, Protocol, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")
R = TypeVar("R")

_SENTINEL = object()


class MapExecutor(Protocol):
    """Anything that maps a picklable function over work units in order."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        ...


class SerialExecutor:
    """Run work units one after another in the calling process."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        return map(fn, list(items))

    def __repr__(self) -> str:
        return "SerialExecutor()"


#: Every live ThreadExecutor / ProcessExecutor, so a forked child can
#: discard inherited pools: the pool's worker threads/processes do not
#: survive fork, but the pool object does — submitting to it in the
#: child would hang forever.
_LIVE_THREAD_EXECUTORS: "weakref.WeakSet[ThreadExecutor]" = weakref.WeakSet()
_LIVE_PROCESS_EXECUTORS: "weakref.WeakSet[ProcessExecutor]" = weakref.WeakSet()


def _reset_executors_after_fork() -> None:
    for executor in list(_LIVE_THREAD_EXECUTORS):
        executor._discard_pool()
    for executor in list(_LIVE_PROCESS_EXECUTORS):
        executor._discard_pool()


if hasattr(os, "register_at_fork"):  # not on Windows
    os.register_at_fork(after_in_child=_reset_executors_after_fork)


def _close_process_executors_at_exit(force: bool = False) -> None:
    """Shut down every live persistent process pool before exit joins.

    Two exit paths need this, and neither runs the other's hooks:

    * a normal interpreter exit runs ``threading._shutdown``, whose
      first registered callbacks fire *before* non-daemon threads are
      joined — closing the pools here lets ``concurrent.futures``' own
      exit hook find everything already shut down instead of joining
      worker processes that still hold open grandchild pools;
    * a *pool worker* process exits through ``os._exit`` after
      ``multiprocessing.util._exit_function``, skipping
      ``threading._shutdown`` entirely — but running util finalizers.
      Without this hook, a worker that resolved ``"process:N"`` for its
      own nested maps (an engine cell grounding/solving through process
      executors) would join its inner pool's processes at exit while
      nothing ever told them to stop: a deadlock that freezes the whole
      grid at shutdown.

    *force* (the multiprocessing-finalizer path, where no thread will
    ever consume a registered stream again) shuts pools down even with
    live stream registrations; the threading path stays graceful so a
    still-running consumer thread can drain first.
    """
    for executor in list(_LIVE_PROCESS_EXECUTORS):
        try:
            executor.close(force=force)
        except Exception:
            pass


if hasattr(threading, "_register_atexit"):
    # Runs at the START of threading._shutdown, last-registered first —
    # i.e. before concurrent.futures' _python_exit joins anything.
    threading._register_atexit(_close_process_executors_at_exit)


_EXIT_CLOSE_PID: int | None = None


def _register_exit_close() -> None:
    """Register the exit hook with *this process's* multiprocessing util.

    ``util.Finalize`` entries are pid-guarded AND the registry is
    cleared by ``BaseProcess._bootstrap`` in every multiprocessing
    child, so registering at import or at fork time is useless inside a
    pool worker — the registration must happen lazily, after bootstrap,
    in whichever process actually creates a persistent pool
    (:meth:`ProcessExecutor._ensure_pool` calls this).  The hook also
    runs a second time in the driver via multiprocessing's atexit;
    ``close`` is idempotent, so that is harmless.
    """
    global _EXIT_CLOSE_PID
    if _EXIT_CLOSE_PID == os.getpid():
        return
    try:
        from multiprocessing import util as _mp_util

        _mp_util.Finalize(
            None, _close_process_executors_at_exit, args=(True,), exitpriority=50
        )
        _EXIT_CLOSE_PID = os.getpid()
    except Exception:  # pragma: no cover - multiprocessing always importable
        pass


class ThreadExecutor:
    """Run work units on a shared thread pool (created lazily, reused).

    Threads share the caller's memory, so work units need not be
    picklable and large arrays travel for free — but pure-Python work
    still serializes on the GIL.  The sweet spot is numpy-dominated
    steps mapped many times (the partitioned ADMM local updates: one
    ``map`` per iteration), where per-call pool reuse matters and the
    heavy ops release the GIL.  Instances pickle as their configuration
    only; the pool is rebuilt lazily wherever they land.

    The pool is kept for the instance's lifetime (idle threads are
    joined at interpreter exit); :func:`resolve_executor` hands out one
    shared instance per worker count, so resolving ``"thread:N"`` once
    per solver does not accumulate pools.  Because instances are shared,
    a :meth:`map` issued *from one of the pool's own worker threads*
    (e.g. an engine grid on ``thread:2`` whose cells solve with
    ``thread:2``) runs inline instead of queueing: the nested tasks
    would otherwise wait behind the very jobs occupying every worker —
    a deadlock, not a slowdown.
    """

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or os.cpu_count() or 1
        self._discard_pool()
        _LIVE_THREAD_EXECUTORS.add(self)

    def _discard_pool(self) -> None:
        """Forget the pool and its worker bookkeeping (fresh state)."""
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._worker_idents: set[int] = set()

    def _register_worker(self) -> None:
        self._worker_idents.add(threading.get_ident())

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        items = list(items)
        if len(items) <= 1 or self.max_workers <= 1:
            return map(fn, items)
        if threading.get_ident() in self._worker_idents:
            # Nested map from our own pool: run inline (see class doc).
            return map(fn, items)
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, initializer=self._register_worker
                )
        return self._stream(fn, items, self._pool)

    def _stream(
        self, fn: Callable[[T], R], items: list[T], pool: ThreadPoolExecutor
    ) -> Iterator[R]:
        # Same bounded in-flight window as ProcessExecutor: submitting
        # everything up front would buffer completed results without
        # bound whenever workers outpace the consumer — exactly the
        # O(whole program) peak a streaming merge exists to avoid.
        pending: deque = deque()
        try:
            remaining = iter(items)
            for item in islice(remaining, 2 * self.max_workers):
                pending.append(pool.submit(fn, item))
            while pending:
                result = pending.popleft().result()
                nxt = next(remaining, _SENTINEL)
                if nxt is not _SENTINEL:
                    pending.append(pool.submit(fn, nxt))
                yield result
        finally:
            # A raising work unit or an abandoned consumer must not
            # leave the in-flight window running on the shared pool:
            # cancel whatever has not started yet.
            for future in pending:
                future.cancel()

    def __getstate__(self) -> dict:
        return {"max_workers": self.max_workers}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["max_workers"])

    def __repr__(self) -> str:
        return f"ThreadExecutor(max_workers={self.max_workers})"


def _run_chunk(fn: Callable[[T], R], chunk: list[T]) -> list[R]:
    """Worker-side adapter: evaluate one chunk of work units in order."""
    return [fn(item) for item in chunk]


def initializer_scope(initializer: Callable[..., None], initargs: tuple):
    """Run *initializer* for the calling thread, scoped when possible.

    The one place the initializer scope-hook protocol lives: an
    initializer exposing a ``scope`` attribute (a context-manager
    factory taking *initargs*, e.g.
    :func:`repro.psl.program.install_shared_database`) is entered so the
    state it installs is restored on exit; one without the hook is
    called bare and keeps the classic run-once contract.  Used by the
    process executor's serial fallback and by any caller that must run a
    worker initializer on the calling thread
    (:func:`repro.psl.sharding.ground_shards`).
    """
    scope = getattr(initializer, "scope", None)
    if scope is not None:
        return scope(*initargs)
    initializer(*initargs)
    return nullcontext()


def _initarg_tokens(initargs: tuple) -> tuple:
    """Current state tokens of initializer arguments (None when untracked).

    Identity comparison alone cannot see *in-place mutation* of a
    payload between maps; arguments may expose a ``state_token()``
    method (e.g. :meth:`repro.psl.database.Database.state_token`) whose
    value changes with their contents, and a persistent pool is only
    reused while the tokens recorded at pool creation still match.
    """
    tokens = []
    for arg in initargs:
        token = getattr(arg, "state_token", None)
        tokens.append(token() if callable(token) else None)
    return tuple(tokens)


#: Upper bound on items per dispatched chunk.  Deriving chunk size only
#: from ``len(items)`` would make the streaming window's memory O(n)
#: in disguise (2×workers chunks of n/(4×workers) items each is half the
#: input); the cap keeps the in-flight result buffer a true constant,
#: at most ``2 * max_workers * _CHUNK_CAP`` results.
_CHUNK_CAP = 64


class ProcessExecutor:
    """Run work units in a pool of worker processes, streaming results.

    Two pool-lifecycle modes:

    * ``persistent=False`` (default for direct construction) — a fresh
      pool per :meth:`map` call, torn down when the returned generator
      is exhausted, closed, or garbage-collected.  Stateless and simple,
      but a caller that maps many times pays a pool spawn each time.
    * ``persistent=True`` (what :func:`resolve_executor` hands out for
      ``"process[:N]"`` specs) — a long-lived pool owned by the
      executor: created lazily on the first parallel ``map``, reused
      across calls, discarded in forked children (like
      :class:`ThreadExecutor`), shut down by :meth:`close` (the executor
      is a context manager) or at interpreter exit.  This is what makes
      process-backed per-iteration maps (the ADMM block updates) and
      repeated sharded grounds actually fast.

    Work is dispatched in chunks to amortize IPC.  The returned
    generator keeps a bounded window of chunks in flight (submitting the
    next chunk as each one completes) and yields results in submission
    order, so the driver's peak result memory is O(window × chunk), not
    O(all items).  If a work unit raises or the consumer abandons the
    generator early, in-flight chunks are cancelled (and, in fresh-pool
    mode, the pool is shut down) — nothing keeps running unobserved.

    *initializer*/*initargs* run once per worker process — the hook for
    shipping a large shared payload (e.g. a grounding database) once per
    worker instead of once per work unit.  A persistent pool remembers
    the initializer it was built with: later maps with the same
    initializer (or none) reuse the warm workers, a *different*
    initializer recycles the pool so stale worker state can never leak
    between programs.  On the serial fallback (one item or one worker)
    the initializer runs in the calling process — scoped, when it
    exposes a ``scope`` context-manager attribute (e.g.
    :func:`repro.psl.program.install_shared_database`), so the driver's
    globals are restored once the map completes.

    Instances pickle as their configuration only; the pool is rebuilt
    lazily wherever they land.
    """

    def __init__(self, max_workers: int | None = None, persistent: bool = False):
        self.max_workers = max_workers or os.cpu_count() or 1
        self.persistent = persistent
        self._discard_pool()
        _LIVE_PROCESS_EXECUTORS.add(self)

    def _discard_pool(self) -> None:
        """Forget the pool without shutdown (fresh state / after fork)."""
        self._pool: ProcessPoolExecutor | None = None
        self._pool_initializer: Callable[..., None] | None = None
        self._pool_initargs: tuple = ()
        self._pool_init_tokens: tuple = ()
        #: Live streaming maps per pool — a pool displaced by an
        #: initializer recycle (or close()) while another thread's
        #: stream is still submitting to it must not be shut down under
        #: that stream; the last stream to finish retires it instead.
        self._active: dict[ProcessPoolExecutor, int] = {}
        #: Pools whose stream slot was released from GC context (a
        #: collected never-started generator), where taking the executor
        #: lock or blocking on a shutdown could deadlock the triggering
        #: thread; drained on the next map()/close() in normal context.
        self._zombies: deque = deque()
        self._lock = threading.Lock()

    def close(self, force: bool = False) -> None:
        """Shut down the persistent pool (if any); the executor stays
        usable — a later :meth:`map` lazily builds a fresh pool.

        A pool with registered live streams is normally retired by the
        last stream's exit rather than shut down under it; *force*
        (used by the process-exit hook, where no stream will ever run
        again) shuts it down regardless — ``shutdown`` is idempotent,
        so a zombie stream's later retire attempt is harmless.
        """
        self._drain_zombies()
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_initializer = None
            self._pool_initargs = ()
            self._pool_init_tokens = ()
            defer = (
                not force and pool is not None and self._active.get(pool, 0) > 0
            )
        if pool is not None and not defer:
            pool.shutdown(wait=True, cancel_futures=True)

    def _release_stream(self, pool: ProcessPoolExecutor, released: list) -> None:
        """Deregister one stream exactly once (the generator's finally).

        ``released`` is shared with the GC finalizer; only one of the
        two paths runs (the finalizer fires after the generator dies,
        the finally only while it is alive), so a plain flag suffices.
        """
        if released[0]:
            return
        released[0] = True
        self._exit_stream(pool)

    def _release_stream_from_gc(
        self, pool: ProcessPoolExecutor, released: list
    ) -> None:
        """GC-finalizer twin of :meth:`_release_stream`, lock-free.

        Runs during garbage collection, which can trigger on any
        allocation — including on a thread currently holding
        ``self._lock`` (the lock is not reentrant) or inside a pool
        operation.  So: flip the flag, enqueue the pool (atomic deque
        append), and let the next map()/close() in normal context do
        the actual deregistration/retirement.
        """
        if released[0]:
            return
        released[0] = True
        self._zombies.append(pool)

    def _drain_zombies(self) -> None:
        while True:
            try:
                pool = self._zombies.popleft()
            except IndexError:
                return
            self._exit_stream(pool)

    def _exit_stream(self, pool: ProcessPoolExecutor) -> None:
        with self._lock:
            count = self._active.get(pool, 1) - 1
            if count > 0:
                self._active[pool] = count
                return
            self._active.pop(pool, None)
            retire = pool is not self._pool  # displaced while we streamed
        if retire:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> Iterator[R]:
        items = list(items)
        if len(items) <= 1 or self.max_workers <= 1:
            return self._serial(fn, items, initializer, initargs)
        # Ceil-divide so a small map fills one in-flight window (about
        # 2×workers chunks) instead of degenerating to one item per
        # chunk: every chunk is an IPC round trip, and a latency-bound
        # per-iteration map (the ADMM block updates) lives or dies by
        # the round-trip count.  Large maps still hit the _CHUNK_CAP.
        chunksize = max(
            1, min(_CHUNK_CAP, -(-len(items) // (self.max_workers * 2)))
        )
        chunks = [items[lo : lo + chunksize] for lo in range(0, len(items), chunksize)]
        if not self.persistent:
            return self._stream_fresh(fn, chunks, initializer, initargs)
        self._drain_zombies()
        pool = self._ensure_pool(initializer, initargs)
        released = [False]
        stream = self._stream_persistent(fn, chunks, pool, released)
        # A generator that is never started never runs its finally; the
        # GC finalizer releases its stream slot instead, so an abandoned
        # unstarted map cannot defer the pool's retirement forever.
        weakref.finalize(stream, self._release_stream_from_gc, pool, released)
        return stream

    def _stream_persistent(
        self,
        fn: Callable[[T], R],
        chunks: list[list[T]],
        pool: ProcessPoolExecutor,
        released: list,
    ) -> Iterator[R]:
        # _ensure_pool registered this stream on the pool (atomically
        # with the reuse-vs-recycle decision); deregistering in a finally
        # lets a concurrent initializer recycle defer the old pool's
        # shutdown until the last stream on it drains.
        try:
            yield from self._windowed(fn, chunks, pool)
        except GeneratorExit:
            # close() on the generator — possibly the GC collecting an
            # abandoned stream, which can run on a thread already
            # holding the executor lock: release via the lock-free
            # queue, like the never-started finalizer.
            self._release_stream_from_gc(pool, released)
            raise
        finally:
            # Normal exhaustion or a work-unit exception surfaces on the
            # consuming thread, where locking inline is safe (and the
            # released flag makes this a no-op after the except above).
            self._release_stream(pool, released)

    def _serial(
        self,
        fn: Callable[[T], R],
        items: list[T],
        initializer: Callable[..., None] | None,
        initargs: tuple,
    ) -> Iterator[R]:
        """The in-driver fallback, with the initializer scoped if possible.

        :func:`initializer_scope` enters the initializer's ``scope``
        context manager (when it has one) around the map instead of
        calling it bare, so whatever it installs into the driver's
        globals is restored once the map completes — running it bare
        would leave worker-targeted state (e.g. a shared grounding
        database) permanently installed in the driver.
        """
        if initializer is None:
            yield from map(fn, items)
            return
        with initializer_scope(initializer, initargs):
            yield from map(fn, items)

    def _same_initializer(
        self, initializer: Callable[..., None], initargs: tuple
    ) -> bool:
        return (
            initializer is self._pool_initializer
            and len(initargs) == len(self._pool_initargs)
            and all(a is b for a, b in zip(initargs, self._pool_initargs))
            and _initarg_tokens(initargs) == self._pool_init_tokens
        )

    def _ensure_pool(
        self, initializer: Callable[..., None] | None, initargs: tuple
    ) -> ProcessPoolExecutor:
        """The persistent pool, recycled when unusable for this map.

        A map without an initializer runs on whatever pool exists (worker
        state is irrelevant to it); a map *with* one gets a pool whose
        workers ran exactly that initializer — reusing the warm pool when
        it already did, rebuilding otherwise.  "The same initializer"
        means same callable and argument identities AND unchanged
        argument :func:`state tokens <_initarg_tokens>` — a payload
        mutated in place (a re-grounded program's database after new
        ``observe``/``add_target`` calls) changes its token, so warm
        workers holding a stale pickled snapshot are never reused.  A
        pool whose worker died (``BrokenProcessPool``) is recycled too:
        the fresh-pool-per-map design self-healed from crashed workers,
        and a shared registry instance must not stay poisoned forever.
        A displaced pool that another thread's stream is still consuming
        is retired by that stream's exit instead of being shut down
        under it.

        The returned pool is registered as carrying one live stream —
        under the same lock acquisition that decided reuse-vs-recycle,
        so a concurrent recycle/close cannot shut the pool down in the
        gap before the caller's generator starts.  The stream generator
        deregisters via :meth:`_exit_stream`.
        """
        stale: ProcessPoolExecutor | None = None
        with self._lock:
            pool = self._pool
            broken = pool is not None and getattr(pool, "_broken", False)
            if (
                pool is not None
                and not broken
                and (
                    initializer is None
                    or self._same_initializer(initializer, initargs)
                )
            ):
                self._active[pool] = self._active.get(pool, 0) + 1
                return pool
            stale, self._pool = pool, None
            if stale is not None and self._active.get(stale, 0) > 0:
                stale = None  # live streams retire it on exit
            _register_exit_close()
            pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=initializer,
                initargs=initargs,
            )
            self._pool = pool
            self._pool_initializer = initializer
            self._pool_initargs = tuple(initargs)
            self._pool_init_tokens = _initarg_tokens(initargs)
            self._active[pool] = 1
        if stale is not None:
            # Outside the lock: draining a displaced pool (its running
            # chunks finish, pending ones are cancelled) must not stall
            # every other thread's map()/close() on this executor.
            stale.shutdown(wait=True, cancel_futures=True)
        return pool

    def _stream_fresh(
        self,
        fn: Callable[[T], R],
        chunks: list[list[T]],
        initializer: Callable[..., None] | None,
        initargs: tuple,
    ) -> Iterator[R]:
        pool = ProcessPoolExecutor(
            max_workers=self.max_workers, initializer=initializer, initargs=initargs
        )
        try:
            yield from self._windowed(fn, chunks, pool)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def _windowed(
        self, fn: Callable[[T], R], chunks: list[list[T]], pool: ProcessPoolExecutor
    ) -> Iterator[R]:
        pending: deque = deque()
        try:
            remaining = iter(chunks)
            for chunk in islice(remaining, 2 * self.max_workers):
                pending.append(pool.submit(_run_chunk, fn, chunk))
            while pending:
                results = pending.popleft().result()
                nxt = next(remaining, None)
                if nxt is not None:
                    pending.append(pool.submit(_run_chunk, fn, nxt))
                yield from results
        finally:
            # On a worker exception or an abandoned consumer, unstarted
            # chunks must not keep a (possibly shared, persistent) pool
            # busy; fresh-mode shutdown in _stream_fresh handles the rest.
            for future in pending:
                future.cancel()

    def __getstate__(self) -> dict:
        return {"max_workers": self.max_workers, "persistent": self.persistent}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["max_workers"], state.get("persistent", False))

    def __repr__(self) -> str:
        return (
            f"ProcessExecutor(max_workers={self.max_workers}, "
            f"persistent={self.persistent})"
        )


#: Shared executors by worker count — ``resolve_executor`` hands these
#: out so repeated "thread:N" / "process:N" resolutions (one per
#: AdmmSolver, one per sweep cell...) reuse one pool instead of leaking
#: one each.  The process instances are persistent-mode: their worker
#: pool survives across maps, which is what makes per-iteration
#: process dispatch viable.
_THREAD_EXECUTORS: dict[int, ThreadExecutor] = {}
_PROCESS_EXECUTORS: dict[int, ProcessExecutor] = {}


def _shared_thread_executor(max_workers: int | None) -> ThreadExecutor:
    # Normalize the count and look up the registry BEFORE constructing:
    # building a throwaway ThreadExecutor per resolution would churn the
    # at-fork WeakSet and a lock on every resolve.
    workers = max_workers or os.cpu_count() or 1
    executor = _THREAD_EXECUTORS.get(workers)
    if executor is None:
        executor = _THREAD_EXECUTORS.setdefault(workers, ThreadExecutor(workers))
    return executor


def _shared_process_executor(max_workers: int | None) -> ProcessExecutor:
    workers = max_workers or os.cpu_count() or 1
    executor = _PROCESS_EXECUTORS.get(workers)
    if executor is None:
        executor = _PROCESS_EXECUTORS.setdefault(
            workers, ProcessExecutor(workers, persistent=True)
        )
    return executor


def _worker_count(spec: str, arg: str) -> int:
    try:
        workers = int(arg)
    except ValueError:
        raise ReproError(f"bad worker count in executor spec {spec!r}")
    if workers < 1:
        raise ReproError(f"worker count must be >= 1 in {spec!r}")
    return workers


def resolve_executor(spec: object | None) -> MapExecutor:
    """Resolve an executor spec into an executor instance.

    Accepts ``None`` / ``"serial"`` (serial), ``"thread"`` /
    ``"thread:N"`` (the process-wide shared thread executor for that
    worker count), ``"process"`` / ``"process:N"`` (the process-wide
    shared *persistent* process executor for that worker count — its
    pool outlives individual maps), or any object that already has a
    ``map`` method (returned as-is).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        if name == "serial":
            return SerialExecutor()
        if name == "thread":
            return _shared_thread_executor(_worker_count(spec, arg) if arg else None)
        if name == "process":
            return _shared_process_executor(_worker_count(spec, arg) if arg else None)
        raise ReproError(
            f"unknown executor spec {spec!r} (use 'serial', 'thread[:N]' or 'process[:N]')"
        )
    if hasattr(spec, "map"):
        return spec  # type: ignore[return-value]
    raise ReproError(f"cannot interpret {spec!r} as an executor")
