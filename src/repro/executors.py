"""Pluggable map-style executors for embarrassingly parallel work.

The selection pipeline, the evaluation engine, sharded grounding, and
the partitioned ADMM solver all fan out over independent, picklable work
units (one per candidate, per grid cell, per grounding shard, per solver
block).  This module gives them a common, minimal execution abstraction:

* :class:`SerialExecutor` — in-process ``map``; zero overhead, always
  available, shares in-process caches with the caller;
* :class:`ThreadExecutor` — a shared ``ThreadPoolExecutor``; cheap
  per-call dispatch and shared memory, the right backend for numpy-heavy
  steps (which release the GIL) mapped many times, e.g. the per-block
  ADMM local updates;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  with chunked dispatch; true multi-core parallelism for CPU-bound pure
  Python work.

All executors preserve input order, so callers get deterministic merges
for free.  :meth:`ProcessExecutor.map` *streams*: it returns a generator
that owns the pool's lifetime and keeps only a bounded window of chunks
in flight, so a caller that merges results one by one (sharded
grounding) holds O(window) results, not O(all work units).
``resolve_executor`` turns user-facing specs (``"serial"``,
``"thread[:N]"``, ``"process[:8]"``) into executor objects — the form
the CLI exposes.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from itertools import islice
from typing import Callable, Iterator, Protocol, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")
R = TypeVar("R")

_SENTINEL = object()


class MapExecutor(Protocol):
    """Anything that maps a picklable function over work units in order."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        ...


class SerialExecutor:
    """Run work units one after another in the calling process."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        return map(fn, list(items))

    def __repr__(self) -> str:
        return "SerialExecutor()"


#: Every live ThreadExecutor, so a forked child can discard inherited
#: pools: the pool's worker *threads* do not survive fork, but the pool
#: object does — submitting to it in the child would hang forever.
_LIVE_THREAD_EXECUTORS: "weakref.WeakSet[ThreadExecutor]" = weakref.WeakSet()


def _reset_thread_executors_after_fork() -> None:
    for executor in list(_LIVE_THREAD_EXECUTORS):
        executor._discard_pool()


if hasattr(os, "register_at_fork"):  # not on Windows
    os.register_at_fork(after_in_child=_reset_thread_executors_after_fork)


class ThreadExecutor:
    """Run work units on a shared thread pool (created lazily, reused).

    Threads share the caller's memory, so work units need not be
    picklable and large arrays travel for free — but pure-Python work
    still serializes on the GIL.  The sweet spot is numpy-dominated
    steps mapped many times (the partitioned ADMM local updates: one
    ``map`` per iteration), where per-call pool reuse matters and the
    heavy ops release the GIL.  Instances pickle as their configuration
    only; the pool is rebuilt lazily wherever they land.

    The pool is kept for the instance's lifetime (idle threads are
    joined at interpreter exit); :func:`resolve_executor` hands out one
    shared instance per worker count, so resolving ``"thread:N"`` once
    per solver does not accumulate pools.  Because instances are shared,
    a :meth:`map` issued *from one of the pool's own worker threads*
    (e.g. an engine grid on ``thread:2`` whose cells solve with
    ``thread:2``) runs inline instead of queueing: the nested tasks
    would otherwise wait behind the very jobs occupying every worker —
    a deadlock, not a slowdown.
    """

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or os.cpu_count() or 1
        self._discard_pool()
        _LIVE_THREAD_EXECUTORS.add(self)

    def _discard_pool(self) -> None:
        """Forget the pool and its worker bookkeeping (fresh state)."""
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._worker_idents: set[int] = set()

    def _register_worker(self) -> None:
        self._worker_idents.add(threading.get_ident())

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        items = list(items)
        if len(items) <= 1 or self.max_workers <= 1:
            return map(fn, items)
        if threading.get_ident() in self._worker_idents:
            # Nested map from our own pool: run inline (see class doc).
            return map(fn, items)
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, initializer=self._register_worker
                )
        return self._stream(fn, items, self._pool)

    def _stream(
        self, fn: Callable[[T], R], items: list[T], pool: ThreadPoolExecutor
    ) -> Iterator[R]:
        # Same bounded in-flight window as ProcessExecutor: submitting
        # everything up front would buffer completed results without
        # bound whenever workers outpace the consumer — exactly the
        # O(whole program) peak a streaming merge exists to avoid.
        pending: deque = deque()
        remaining = iter(items)
        for item in islice(remaining, 2 * self.max_workers):
            pending.append(pool.submit(fn, item))
        while pending:
            result = pending.popleft().result()
            nxt = next(remaining, _SENTINEL)
            if nxt is not _SENTINEL:
                pending.append(pool.submit(fn, nxt))
            yield result

    def __getstate__(self) -> dict:
        return {"max_workers": self.max_workers}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["max_workers"])

    def __repr__(self) -> str:
        return f"ThreadExecutor(max_workers={self.max_workers})"


def _run_chunk(fn: Callable[[T], R], chunk: list[T]) -> list[R]:
    """Worker-side adapter: evaluate one chunk of work units in order."""
    return [fn(item) for item in chunk]


#: Upper bound on items per dispatched chunk.  Deriving chunk size only
#: from ``len(items)`` would make the streaming window's memory O(n)
#: in disguise (2×workers chunks of n/(4×workers) items each is half the
#: input); the cap keeps the in-flight result buffer a true constant,
#: at most ``2 * max_workers * _CHUNK_CAP`` results.
_CHUNK_CAP = 64


class ProcessExecutor:
    """Run work units in a pool of worker processes, streaming results.

    A fresh pool is created per :meth:`map` call, so the executor object
    itself stays picklable and stateless.  Work is dispatched in chunks
    to amortize IPC.  The returned generator owns the pool: it keeps a
    bounded window of chunks in flight (submitting the next chunk as
    each one completes) and yields results in submission order, so the
    driver's peak result memory is O(window × chunk), not O(all items) —
    what lets sharded grounding merge-as-it-goes on the parallel path
    too.  The pool is torn down when the generator is exhausted (or
    garbage-collected, if abandoned early).

    *initializer*/*initargs* run once per worker process — the hook for
    shipping a large shared payload (e.g. a grounding database) once per
    worker instead of once per work unit.  On the serial fallback (one
    item or one worker) the initializer runs in the calling process.
    """

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers or os.cpu_count() or 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> Iterator[R]:
        items = list(items)
        if len(items) <= 1 or self.max_workers <= 1:
            if initializer is not None:
                initializer(*initargs)
            return map(fn, items)
        chunksize = max(1, min(_CHUNK_CAP, len(items) // (self.max_workers * 4)))
        chunks = [items[lo : lo + chunksize] for lo in range(0, len(items), chunksize)]
        return self._stream(fn, chunks, initializer, initargs)

    def _stream(
        self,
        fn: Callable[[T], R],
        chunks: list[list[T]],
        initializer: Callable[..., None] | None,
        initargs: tuple,
    ) -> Iterator[R]:
        with ProcessPoolExecutor(
            max_workers=self.max_workers, initializer=initializer, initargs=initargs
        ) as pool:
            pending: deque = deque()
            remaining = iter(chunks)
            for chunk in islice(remaining, 2 * self.max_workers):
                pending.append(pool.submit(_run_chunk, fn, chunk))
            while pending:
                results = pending.popleft().result()
                nxt = next(remaining, None)
                if nxt is not None:
                    pending.append(pool.submit(_run_chunk, fn, nxt))
                yield from results

    def __repr__(self) -> str:
        return f"ProcessExecutor(max_workers={self.max_workers})"


#: Shared thread executors by worker count — ``resolve_executor`` hands
#: these out so repeated "thread:N" resolutions (one per AdmmSolver, one
#: per sweep cell...) reuse one pool instead of leaking one each.
_THREAD_EXECUTORS: dict[int, ThreadExecutor] = {}


def _shared_thread_executor(max_workers: int | None) -> ThreadExecutor:
    executor = ThreadExecutor(max_workers)
    return _THREAD_EXECUTORS.setdefault(executor.max_workers, executor)


def _worker_count(spec: str, arg: str) -> int:
    try:
        workers = int(arg)
    except ValueError:
        raise ReproError(f"bad worker count in executor spec {spec!r}")
    if workers < 1:
        raise ReproError(f"worker count must be >= 1 in {spec!r}")
    return workers


def resolve_executor(spec: object | None) -> MapExecutor:
    """Resolve an executor spec into an executor instance.

    Accepts ``None`` / ``"serial"`` (serial), ``"thread"`` /
    ``"thread:N"`` (the process-wide shared thread executor for that
    worker count), ``"process"`` (one worker per CPU), ``"process:N"``
    (N workers), or any object that already has a ``map`` method
    (returned as-is).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        if name == "serial":
            return SerialExecutor()
        if name == "thread":
            return _shared_thread_executor(_worker_count(spec, arg) if arg else None)
        if name == "process":
            return ProcessExecutor(_worker_count(spec, arg) if arg else None)
        raise ReproError(
            f"unknown executor spec {spec!r} (use 'serial', 'thread[:N]' or 'process[:N]')"
        )
    if hasattr(spec, "map"):
        return spec  # type: ignore[return-value]
    raise ReproError(f"cannot interpret {spec!r} as an executor")
