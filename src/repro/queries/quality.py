"""Query-level quality: certain-answer F1 over a workload.

An alternative, consumer-centric view of exchange quality: instead of
comparing tuples, compare the *certain answers* each instance yields for
a workload of conjunctive queries.  Complements the tuple-level F1 of
:mod:`repro.evaluation.metrics` — a mapping can score well on tuples yet
lose join answers (or vice versa) when invented keys break joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.datamodel.instance import Instance
from repro.evaluation.metrics import PrecisionRecall
from repro.evaluation.reporting import mean
from repro.queries.cq import ConjunctiveQuery, certain_answers


@dataclass(frozen=True)
class QueryQuality:
    """Per-query P/R plus the workload mean F1."""

    per_query: tuple[tuple[str, PrecisionRecall], ...]

    @property
    def mean_f1(self) -> float:
        return mean([pr.f1 for _, pr in self.per_query])


def answer_precision_recall(
    result: set, reference: set
) -> PrecisionRecall:
    """Set P/R with the empty-result conventions of the tuple metric."""
    if not result:
        return PrecisionRecall(1.0, 0.0 if reference else 1.0)
    if not reference:
        return PrecisionRecall(0.0, 1.0)
    hits = len(result & reference)
    return PrecisionRecall(hits / len(result), hits / len(reference))


def query_quality(
    result_instance: Instance,
    reference_instance: Instance,
    workload: Sequence[ConjunctiveQuery],
) -> QueryQuality:
    """Certain-answer P/R of *result_instance* per workload query."""
    rows = []
    for query in workload:
        rows.append(
            (
                query.name,
                answer_precision_recall(
                    certain_answers(query, result_instance),
                    certain_answers(query, reference_instance),
                ),
            )
        )
    return QueryQuality(tuple(rows))
