"""Conjunctive queries and certain answers over instances with nulls.

Data exchange judges a materialized target instance by the *certain
answers* it yields: the answers of a query that hold in **every** possible
world of the incomplete instance.  For unions of conjunctive queries the
classic result applies: evaluate the query naively on the (universal)
instance and discard answers containing labeled nulls.

Query text format::

    ans(X, Y) <- r(X, Z) & s(Z, Y)

Head variables must occur in the body.  Constants follow the tgd parser's
conventions (lowercase / numbers / quoted strings).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.chase.engine import match_body
from repro.datamodel.instance import Instance
from repro.datamodel.values import Value, is_null
from repro.errors import ParseError, ReproError
from repro.mappings.atoms import Atom
from repro.mappings.parser import _parse_atom_list
from repro.mappings.terms import Variable


class QueryError(ReproError):
    """The query is malformed (unsafe head, bad syntax, ...)."""


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``ans(head) <- body`` with set semantics."""

    head: tuple[Variable, ...]
    body: tuple[Atom, ...]
    name: str = "ans"

    def __post_init__(self) -> None:
        body_vars = {v for a in self.body for v in a.variables}
        missing = set(self.head) - body_vars
        if missing:
            raise QueryError(f"unsafe query: head variables {missing} not in body")
        if not self.body:
            raise QueryError("query body must not be empty")

    @cached_property
    def is_boolean(self) -> bool:
        return not self.head

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = " & ".join(repr(a) for a in self.body)
        return f"{self.name}({head}) <- {body}"


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse the ``ans(X) <- r(X, Y)`` format."""
    parts = text.split("<-")
    if len(parts) != 2:
        raise ParseError(f"query must contain exactly one '<-': {text!r}")
    head_text, body_text = parts
    head_atoms = _parse_atom_list(head_text, "query head")
    if len(head_atoms) != 1:
        raise ParseError("query head must be a single atom")
    head_atom = head_atoms[0]
    head_vars = []
    for term in head_atom.terms:
        if not isinstance(term, Variable):
            raise ParseError(f"query head terms must be variables, got {term!r}")
        head_vars.append(term)
    return ConjunctiveQuery(
        tuple(head_vars), _parse_atom_list(body_text, "query body"), head_atom.relation
    )


def evaluate(query: ConjunctiveQuery, instance: Instance) -> set[tuple[Value, ...]]:
    """All (possibly null-containing) answers of *query* on *instance*."""
    answers: set[tuple[Value, ...]] = set()
    for assignment in match_body(query.body, instance):
        answers.add(tuple(assignment[v] for v in query.head))
    return answers


def certain_answers(query: ConjunctiveQuery, instance: Instance) -> set[tuple[Value, ...]]:
    """Null-free answers — the certain answers when *instance* is universal."""
    return {a for a in evaluate(query, instance) if not any(is_null(v) for v in a)}


def workload_for_schema(schema) -> list[ConjunctiveQuery]:
    """A canonical query workload for a target schema.

    One identity (full-projection) query per relation, plus one join query
    per foreign key projecting the non-join attributes of both relations —
    the queries a downstream consumer of the exchanged data would ask.
    """
    queries: list[ConjunctiveQuery] = []
    for rel in schema.relations.values():
        variables = tuple(Variable(f"X{i}") for i in range(rel.arity))
        queries.append(
            ConjunctiveQuery(variables, (Atom(rel.name, variables),), f"all_{rel.name}")
        )
    for fk in schema.foreign_keys:
        source_rel = schema.get(fk.source)
        target_rel = schema.get(fk.target)
        source_terms: list[Variable] = []
        for i, attr in enumerate(source_rel.attribute_names):
            if attr in fk.source_attributes:
                j = fk.source_attributes.index(attr)
                source_terms.append(Variable(f"J{j}"))
            else:
                source_terms.append(Variable(f"S{i}"))
        target_terms: list[Variable] = []
        for i, attr in enumerate(target_rel.attribute_names):
            if attr in fk.target_attributes:
                j = fk.target_attributes.index(attr)
                target_terms.append(Variable(f"J{j}"))
            else:
                target_terms.append(Variable(f"T{i}"))
        head = tuple(
            v
            for v in (*source_terms, *target_terms)
            if not v.name.startswith("J")
        )
        queries.append(
            ConjunctiveQuery(
                head,
                (
                    Atom(source_rel.name, tuple(source_terms)),
                    Atom(target_rel.name, tuple(target_terms)),
                ),
                f"join_{fk.source}_{fk.target}",
            )
        )
    return queries
