"""Conjunctive queries, certain answers, and query-level quality."""

from repro.queries.cq import (
    ConjunctiveQuery,
    QueryError,
    certain_answers,
    evaluate,
    parse_query,
    workload_for_schema,
)
from repro.queries.quality import QueryQuality, answer_precision_recall, query_quality

__all__ = [
    "ConjunctiveQuery",
    "QueryError",
    "QueryQuality",
    "answer_precision_recall",
    "certain_answers",
    "evaluate",
    "parse_query",
    "query_quality",
    "workload_for_schema",
]
