"""Relational atoms ``R(t1, ..., tk)`` over variables and constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.datamodel.values import Constant, Value
from repro.datamodel.instance import Fact
from repro.errors import MappingError
from repro.mappings.terms import Term, Variable, is_variable


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom over a relation, with variable or constant terms."""

    relation: str
    terms: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """Variables occurring in this atom, in position order (with repeats)."""
        return tuple(t for t in self.terms if is_variable(t))

    def rename(self, substitution: Mapping[Variable, Term]) -> "Atom":
        """Apply a variable substitution, returning a new atom."""
        return Atom(
            self.relation,
            tuple(substitution.get(t, t) if is_variable(t) else t for t in self.terms),
        )

    def instantiate(self, assignment: Mapping[Variable, Value]) -> Fact:
        """Build a fact by assigning every variable a value.

        Raises :class:`MappingError` if any variable is unassigned.
        """
        values: list[Value] = []
        for t in self.terms:
            if is_variable(t):
                if t not in assignment:
                    raise MappingError(f"unassigned variable {t} in atom {self}")
                values.append(assignment[t])
            else:
                values.append(t)
        return Fact(self.relation, tuple(values))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


def atom(relation: str, *terms: object) -> Atom:
    """Convenience constructor: strings become variables, others constants.

    ``atom("proj", "P", "E", 7)`` builds ``proj(P, E, 7)`` with variables
    P, E and constant 7.  Pass :class:`Constant`/:class:`Variable` objects
    directly to override the heuristic (e.g. string-valued constants).
    """
    wrapped: list[Term] = []
    for t in terms:
        if isinstance(t, (Variable, Constant)):
            wrapped.append(t)
        elif isinstance(t, str):
            wrapped.append(Variable(t))
        else:
            wrapped.append(Constant(t))
    return Atom(relation, tuple(wrapped))
