"""Source-to-target tuple-generating dependencies (st tgds).

An st tgd has the form::

    forall x:  phi(x)  ->  exists y:  psi(x, y)

where ``phi`` (the *body*) is a conjunction of atoms over the source
schema and ``psi`` (the *head*) is a conjunction of atoms over the target
schema.  A tgd is *full* when the head uses no existential variables.

``size`` follows the paper's complexity measure, reconstructed from the
appendix example (size(theta1)=3, size(theta3)=4): number of atoms plus
number of existential variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Mapping

from repro.errors import MappingError
from repro.mappings.atoms import Atom
from repro.mappings.terms import Term, Variable, is_variable


@dataclass(frozen=True)
class StTgd:
    """An st tgd ``body -> head`` with an optional human-readable name."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.body:
            raise MappingError(f"tgd {self.name!r} has an empty body")
        if not self.head:
            raise MappingError(f"tgd {self.name!r} has an empty head")

    # -- variable classification ------------------------------------------

    @cached_property
    def universal_variables(self) -> frozenset[Variable]:
        """Variables occurring in the body (universally quantified)."""
        found: set[Variable] = set()
        for a in self.body:
            found.update(a.variables)
        return frozenset(found)

    @cached_property
    def existential_variables(self) -> frozenset[Variable]:
        """Head variables that do not occur in the body."""
        found: set[Variable] = set()
        for a in self.head:
            found.update(a.variables)
        return frozenset(found - self.universal_variables)

    @cached_property
    def exported_variables(self) -> frozenset[Variable]:
        """Universal variables that actually reach the head."""
        found: set[Variable] = set()
        for a in self.head:
            found.update(a.variables)
        return frozenset(found & self.universal_variables)

    @property
    def is_full(self) -> bool:
        """True iff the tgd has no existential variables."""
        return not self.existential_variables

    # -- measures ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Paper's size measure: #atoms + #existential variables."""
        return len(self.body) + len(self.head) + len(self.existential_variables)

    # -- structural operations ----------------------------------------------

    def rename(self, substitution: Mapping[Variable, Term]) -> "StTgd":
        """Apply a variable substitution to body and head."""
        return StTgd(
            tuple(a.rename(substitution) for a in self.body),
            tuple(a.rename(substitution) for a in self.head),
            self.name,
        )

    def canonical(self) -> "StTgd":
        """Rename variables and order atoms canonically for structural dedup.

        Atoms are sorted by a variable-name-independent signature (relation
        name, arity, constant positions), variables are then renamed
        ``v0, v1, ...`` in order of first occurrence scanning sorted body
        atoms then sorted head atoms, and the name is dropped.  Two tgds
        that differ only in variable names or in the order of conjuncts
        become equal.  (If the same relation occurs several times within
        one conjunction the form is not guaranteed to be unique; the
        library's generators never produce such tgds.)
        """

        def signature(a: Atom) -> tuple:
            return (
                a.relation,
                a.arity,
                tuple(
                    repr(t) if not is_variable(t) else "?" for t in a.terms
                ),
            )

        body = tuple(sorted(self.body, key=signature))
        head = tuple(sorted(self.head, key=signature))
        order: dict[Variable, Variable] = {}
        for a in (*body, *head):
            for t in a.terms:
                if is_variable(t) and t not in order:
                    order[t] = Variable(f"V{len(order)}")
        return StTgd(
            tuple(a.rename(order) for a in body),
            tuple(a.rename(order) for a in head),
            "",
        )

    def source_relations(self) -> frozenset[str]:
        """Names of relations used in the body."""
        return frozenset(a.relation for a in self.body)

    def target_relations(self) -> frozenset[str]:
        """Names of relations used in the head."""
        return frozenset(a.relation for a in self.head)

    def validate_against(self, source_schema, target_schema) -> None:
        """Check all atoms name schema relations with correct arities."""
        for a in self.body:
            rel = source_schema.get(a.relation)
            if rel.arity != a.arity:
                raise MappingError(f"body atom {a} has arity {a.arity}, expected {rel.arity}")
        for a in self.head:
            rel = target_schema.get(a.relation)
            if rel.arity != a.arity:
                raise MappingError(f"head atom {a} has arity {a.arity}, expected {rel.arity}")

    def __repr__(self) -> str:
        body = " & ".join(repr(a) for a in self.body)
        head = " & ".join(repr(a) for a in self.head)
        label = f"{self.name}: " if self.name else ""
        return f"{label}{body} -> {head}"


def total_size(tgds: Iterable[StTgd]) -> int:
    """Sum of :attr:`StTgd.size` over a collection of tgds."""
    return sum(t.size for t in tgds)
