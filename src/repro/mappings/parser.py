"""Textual format for st tgds.

Grammar (whitespace-insensitive)::

    tgd      :=  [name ":"] atomlist "->" atomlist
    atomlist :=  atom ("&" atom)*
    atom     :=  ident "(" term ("," term)* ")"
    term     :=  variable | constant

Terms starting with an uppercase letter or underscore are **variables**;
everything else is a constant (integers become ``int`` constants, quoted
strings and bare lowercase words become string constants).  Example::

    t3: proj(P, E, C) -> task(P, E, O) & org(O, C)

Multiple tgds may be given separated by newlines or semicolons.
"""

from __future__ import annotations

import re

from repro.datamodel.values import Constant
from repro.errors import ParseError
from repro.mappings.atoms import Atom
from repro.mappings.terms import Term, Variable
from repro.mappings.tgd import StTgd

_ATOM_RE = re.compile(r"\s*([A-Za-z_][\w.]*)\s*\(([^()]*)\)\s*")


def _parse_term(token: str) -> Term:
    token = token.strip()
    if not token:
        raise ParseError("empty term")
    if token[0] == '"' and token[-1] == '"' and len(token) >= 2:
        return Constant(token[1:-1])
    if token[0].isupper() or token[0] == "_":
        return Variable(token)
    try:
        return Constant(int(token))
    except ValueError:
        return Constant(token)


def _parse_atom_list(text: str, where: str) -> tuple[Atom, ...]:
    atoms: list[Atom] = []
    pos = 0
    text = text.strip()
    while pos < len(text):
        match = _ATOM_RE.match(text, pos)
        if not match:
            raise ParseError(f"cannot parse {where} at: {text[pos:]!r}")
        relation, args = match.group(1), match.group(2)
        terms = tuple(_parse_term(t) for t in args.split(",")) if args.strip() else ()
        if not terms:
            raise ParseError(f"atom {relation!r} has no terms")
        atoms.append(Atom(relation, terms))
        pos = match.end()
        if pos < len(text):
            if text[pos] != "&":
                raise ParseError(f"expected '&' between atoms at: {text[pos:]!r}")
            pos += 1
    if not atoms:
        raise ParseError(f"empty {where}")
    return tuple(atoms)


def parse_tgd(text: str) -> StTgd:
    """Parse a single st tgd from *text*."""
    text = text.strip()
    name = ""
    head_split = text.split("->")
    if len(head_split) != 2:
        raise ParseError(f"tgd must contain exactly one '->': {text!r}")
    body_text, head_text = head_split
    if ":" in body_text.split("(")[0]:
        name, body_text = body_text.split(":", 1)
        name = name.strip()
    return StTgd(
        _parse_atom_list(body_text, "body"),
        _parse_atom_list(head_text, "head"),
        name,
    )


def parse_tgds(text: str) -> list[StTgd]:
    """Parse several tgds separated by newlines or semicolons."""
    chunks = [c for c in re.split(r"[;\n]", text) if c.strip()]
    return [parse_tgd(c) for c in chunks]
