"""Mapping language: variables, atoms, st tgds, and a textual parser."""

from repro.mappings.atoms import Atom, atom
from repro.mappings.parser import parse_tgd, parse_tgds
from repro.mappings.terms import Term, Variable, is_variable, var
from repro.mappings.tgd import StTgd, total_size

__all__ = [
    "Atom",
    "StTgd",
    "Term",
    "Variable",
    "atom",
    "is_variable",
    "parse_tgd",
    "parse_tgds",
    "total_size",
    "var",
]
