"""Terms of mapping atoms: variables and (shared) constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.datamodel.values import Constant


@dataclass(frozen=True, slots=True)
class Variable:
    """A first-order variable appearing in an st tgd."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """True iff *term* is a variable (rather than a constant)."""
    return isinstance(term, Variable)


def var(name: str) -> Variable:
    """Convenience constructor for a variable."""
    return Variable(name)
