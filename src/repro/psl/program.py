"""PSL programs: predicates + rules + data, compiled to a HL-MRF.

:class:`PslProgram` is the user-facing entry point of the mini-PSL
engine.  Typical use::

    program = PslProgram()
    friend = program.predicate("friend", 2)
    votes = program.predicate("votes", 2, closed=False)
    program.rule([lit(friend, "A", "B"), lit(votes, "A", "P")],
                 [lit(votes, "B", "P")], weight=0.5)
    program.observe(friend("alice", "bob"))
    program.target(votes("alice", "left"))
    ...
    result = program.infer()
    result.truth(votes("alice", "left"))
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import GroundingError, InferenceError
from repro.executors import MapExecutor, ProcessExecutor, resolve_executor
from repro.psl.admm import AdmmResult, AdmmSettings, AdmmSolver, AdmmWarmState
from repro.psl.database import Database
from repro.psl.grounding import ground_rule, linearize
from repro.psl.hlmrf import HingeLossMRF
from repro.psl.predicate import GroundAtom, Predicate
from repro.psl.rule import LinearConstraintSpec, Literal, Rule
from repro.psl.sharding import (
    GroundingShard,
    GroundingStats,
    ShardResult,
    TermBlockBuilder,
    ground_shards,
    iter_slices,
)


@dataclass
class InferenceResult:
    """MAP assignment over the target atoms, plus solver diagnostics."""

    assignment: dict[GroundAtom, float]
    admm: AdmmResult
    num_potentials: int
    num_constraints: int

    def truth(self, atom: GroundAtom) -> float:
        try:
            return self.assignment[atom]
        except KeyError:
            raise InferenceError(f"{atom} was not a target of inference") from None

    @property
    def converged(self) -> bool:
        return self.admm.converged


#: Per-thread shared-database handle installed by
#: :func:`install_shared_database` — what rule shards fall back to when
#: their own ``database`` field was stripped for shipping.  Thread-local
#: rather than a plain global so concurrent grounds from different
#: threads (each installing its own database on the executor's serial
#: fallback) cannot read each other's handle and silently ground
#: against the wrong program's data.  Process-pool workers are
#: single-threaded, so the pool initializer and the shard builds see
#: the same slot.
_SHARED = threading.local()


def _shared_database() -> Database | None:
    return getattr(_SHARED, "database", None)


def install_shared_database(database: Database | None) -> None:
    """Pool-initializer hook: make *database* this thread's shared handle.

    Grounding a many-rule program through a process pool used to pickle
    the whole database into every :class:`RuleGroundingShard` —
    O(rules × database) IPC.  Installing it once per worker (via
    ``ProcessExecutor.map(initializer=...)``) lets the shards travel as
    just rule + weight.  In the *driving* process use the scoped
    :func:`shared_database` instead, so the handle cannot outlive the
    grounding run it belongs to.
    """
    _SHARED.database = database


@contextmanager
def shared_database(database: Database) -> "Iterator[None]":
    """Scope *database* as this thread's shared handle, then restore.

    The driver-side counterpart of :func:`install_shared_database`: the
    executor's serial fallback may run stripped shards (and their
    initializer) in the calling process, and without a scope the handle
    would leak across grounding runs — a later stripped shard belonging
    to a *different* program would silently ground against the stale
    database instead of raising.
    """
    previous = _shared_database()
    _SHARED.database = database
    try:
        yield
    finally:
        _SHARED.database = previous


#: Scope hook consumed by :meth:`repro.executors.ProcessExecutor.map`'s
#: serial fallback: instead of calling the initializer bare — which
#: would permanently install the grounding database into the *driver's*
#: shared slot — the fallback enters ``initializer.scope(*initargs)``
#: around the map, restoring the previous handle once it completes.
install_shared_database.scope = shared_database


@dataclass(frozen=True)
class RuleGroundingShard:
    """One rule's groundings as a sharded work unit.

    ``database`` is the grounding data (observations + targets) — either
    embedded in the shard (in-process executors, where "shipping" is a
    reference copy) or ``None``, meaning the executing process's shared
    handle installed by :func:`install_shared_database` (process pools,
    where embedding would pickle the database once per rule).
    :func:`~repro.psl.grounding.ground_rule` enumerates in canonical
    order, so the emitted block is reproducible anywhere either way.
    """

    order: int
    rule: Rule
    weight: float | None
    database: Database | None = None

    def content_key(self):
        """Spec identity for incremental grounding (rule + weight).

        Deliberately excludes the database: a rule shard's *output* also
        depends on the grounding data, so key-equal rule shards are
        reusable only under a data-level gate — exactly what
        :class:`repro.psl.delta.IncrementalProgramGrounding` establishes
        through the database change journal before pairing shards.
        """
        return ("rule-shard", self.rule, self.weight)

    def build(self) -> ShardResult:
        database = self.database if self.database is not None else _shared_database()
        if database is None:
            raise GroundingError(
                "RuleGroundingShard has no database: embed one in the shard or "
                "install a shared one via install_shared_database()"
            )
        builder = TermBlockBuilder()
        for grounding in ground_rule(self.rule, database):
            coefficients, constant = linearize(grounding, database)
            targets = [
                (a, c) for a, c in coefficients.items() if database.is_target(a)
            ]
            if self.rule.is_hard:
                builder.add_constraint(targets, constant)
            else:
                builder.add_potential(
                    targets, constant, self.weight, self.rule.squared, group=self.rule
                )
        atoms, block = builder.finish()
        return ShardResult(self.order, atoms, block)


@dataclass(frozen=True)
class RawPotentialShard:
    """A slice of a program's raw potentials as a sharded work unit."""

    #: items: ((atom, coeff) pairs, offset, weight, squared) per potential.
    order: int
    items: tuple[tuple[tuple[tuple[GroundAtom, float], ...], float, float, bool], ...]

    def build(self) -> ShardResult:
        builder = TermBlockBuilder()
        for pairs, offset, weight, squared in self.items:
            builder.add_potential(pairs, offset, weight, squared)
        atoms, block = builder.finish()
        return ShardResult(self.order, atoms, block)


@dataclass(frozen=True)
class RawConstraintShard:
    """A slice of a program's raw linear constraints as a sharded work unit."""

    #: items: ((atom, coeff) pairs, offset, equality) per constraint.
    order: int
    items: tuple[tuple[tuple[tuple[GroundAtom, float], ...], float, bool], ...]

    def build(self) -> ShardResult:
        builder = TermBlockBuilder()
        for pairs, offset, equality in self.items:
            builder.add_constraint(pairs, offset, equality)
        atoms, block = builder.finish()
        return ShardResult(self.order, atoms, block)


class PslProgram:
    """A PSL model: predicate declarations, rules, and grounding data."""

    def __init__(self) -> None:
        self._predicates: dict[str, Predicate] = {}
        self._rules: list[Rule] = []
        self._raw_potentials: list[tuple[dict[GroundAtom, float], float, float, bool]] = []
        self._raw_constraints: list[LinearConstraintSpec] = []
        self.database = Database()
        #: Full groundings performed so far (serial or sharded).  The
        #: regression counter behind the one-grounding-per-call contract
        #: of :func:`repro.psl.learning.learn_rule_weights`.
        self.grounding_count = 0

    # -- model construction --------------------------------------------------

    def predicate(self, name: str, arity: int, closed: bool = True) -> Predicate:
        """Declare (or fetch) a predicate."""
        existing = self._predicates.get(name)
        if existing is not None:
            if existing.arity != arity or existing.closed != closed:
                raise GroundingError(f"predicate {name} re-declared inconsistently")
            return existing
        p = Predicate(name, arity, closed)
        self._predicates[name] = p
        return p

    def rule(
        self,
        body: Sequence[Literal],
        head: Sequence[Literal],
        weight: float | None = 1.0,
        squared: bool = False,
        name: str = "",
    ) -> Rule:
        """Add a first-order rule (``weight=None`` makes it hard)."""
        r = Rule(tuple(body), tuple(head), weight, squared, name)
        self._rules.append(r)
        return r

    def observe(self, atom: GroundAtom, truth: float = 1.0) -> None:
        self.database.observe(atom, truth)

    def target(self, atom: GroundAtom) -> None:
        self.database.add_target(atom)

    def add_raw_potential(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        weight: float,
        squared: bool = False,
    ) -> None:
        """Attach ``weight*max(0, sum coeff*atom + offset)`` directly.

        Used for potentials that are unnatural as logical rules, e.g.
        per-candidate size priors with grounding-specific weights.
        """
        self._raw_potentials.append((dict(coefficients), offset, weight, squared))

    def add_linear_constraint(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        equality: bool = False,
    ) -> None:
        """Attach an arithmetic constraint ``sum coeff*atom + offset <= 0``."""
        self._raw_constraints.append(
            LinearConstraintSpec(dict(coefficients), offset, equality)
        )

    # -- compilation and inference -------------------------------------------

    def ground(
        self,
        weight_overrides: Mapping[Rule, float] | None = None,
        executor: MapExecutor | str | None = None,
        shard_size: int | None = None,
    ) -> HingeLossMRF:
        """Ground all rules and compile the HL-MRF.

        ``weight_overrides`` substitutes rule weights at grounding time
        without mutating the (frozen) rules — the hook weight learning
        uses to re-ground cheaply between epochs.

        With *executor* and/or *shard_size* set, grounding runs through
        the sharded path of :mod:`repro.psl.sharding`: one shard per
        rule plus sliced raw potentials/constraints, merged back
        deterministically into an MRF fingerprint-identical to the
        serial one.  The default (both ``None``) is the serial in-process
        path.
        """
        if executor is None and shard_size is None:
            mrf, _ = self.ground_with_origins(weight_overrides)
            return mrf
        mrf, _ = self.ground_sharded(
            weight_overrides, executor=executor, shard_size=shard_size
        )
        return mrf

    def grounding_shards(
        self,
        weight_overrides: Mapping[Rule, float] | None = None,
        shard_size: int | None = None,
        embed_database: bool = True,
    ) -> list[GroundingShard]:
        """The program's grounding work as picklable shard specs.

        Shard order (rules, then raw-potential slices, then raw-
        constraint slices) matches the serial compilation order of
        :meth:`ground_with_origins`, so merging the specs in order
        reproduces the serial potential/constraint sequences exactly.

        With ``embed_database=False`` the rule shards carry only rule +
        weight and resolve their data through the per-process shared
        handle of :func:`install_shared_database` — the payload diet the
        process-pool path uses so a many-rule program ships its database
        once per worker, not once per rule.
        """
        overrides = weight_overrides or {}
        database = self.database if embed_database else None
        shards: list[GroundingShard] = []
        for rule in self._rules:
            shards.append(
                RuleGroundingShard(
                    len(shards), rule, overrides.get(rule, rule.weight), database
                )
            )
        for lo, hi in iter_slices(len(self._raw_potentials), shard_size):
            items = tuple(
                (tuple(coefficients.items()), offset, weight, squared)
                for coefficients, offset, weight, squared in self._raw_potentials[lo:hi]
            )
            shards.append(RawPotentialShard(len(shards), items))
        for lo, hi in iter_slices(len(self._raw_constraints), shard_size):
            items = tuple(
                (tuple(spec.coefficients.items()), spec.offset, spec.equality)
                for spec in self._raw_constraints[lo:hi]
            )
            shards.append(RawConstraintShard(len(shards), items))
        return shards

    def ground_sharded(
        self,
        weight_overrides: Mapping[Rule, float] | None = None,
        executor: MapExecutor | str | None = None,
        shard_size: int | None = None,
        observer=None,
    ) -> tuple[HingeLossMRF, GroundingStats]:
        """Ground through executor-mapped shards; also returns merge stats.

        Target atoms are interned up front in insertion order — the same
        variable order the serial path produces — then shard term blocks
        are merged in spec order.  On a process executor the database is
        shipped once per worker (pool initializer) instead of being
        pickled into every rule shard; in-process executors keep it
        embedded, where it costs nothing.
        """
        self.grounding_count += 1
        mrf = HingeLossMRF()
        for atom in self.database.targets_in_order:
            mrf.variable_index(atom)
        executor = resolve_executor(executor)
        strip_database = isinstance(executor, ProcessExecutor) and bool(self._rules)
        shards = self.grounding_shards(
            weight_overrides, shard_size, embed_database=not strip_database
        )
        if not strip_database:
            return ground_shards(shards, executor=executor, mrf=mrf, observer=observer)
        # The scope covers the executor's serial fallback, which runs
        # stripped shards in this process.  Workers get the handle through
        # the pool initializer; on a persistent executor they (and their
        # database snapshot) outlive this ground so the next ground of
        # the same unchanged program reuses warm workers — the snapshot
        # is replaced when a ground ships a different or mutated
        # database (state_token), and freed by executor.close().
        with shared_database(self.database):
            return ground_shards(
                shards,
                executor=executor,
                mrf=mrf,
                initializer=(install_shared_database, (self.database,)),
                observer=observer,
            )

    def ground_with_origins(
        self,
        weight_overrides: Mapping[Rule, float] | None = None,
    ) -> tuple[HingeLossMRF, list[Rule | None]]:
        """Like :meth:`ground`, also reporting each potential's source rule.

        The returned list is parallel to ``mrf.potentials``; raw potentials
        map to None.
        """
        overrides = weight_overrides or {}
        self.grounding_count += 1
        mrf = HingeLossMRF()
        origins: list[Rule | None] = []
        for atom in self.database.targets_in_order:
            mrf.variable_index(atom)
        for rule in self._rules:
            weight = overrides.get(rule, rule.weight)
            for grounding in ground_rule(rule, self.database):
                coefficients, constant = linearize(grounding, self.database)
                targets = {a: c for a, c in coefficients.items() if self.database.is_target(a)}
                # contributions of observed atoms are already in `constant`
                # via linearize; drop zero-coefficient leftovers.  Fully
                # observed groundings fold into mrf.constant_energy.
                if rule.is_hard:
                    mrf.add_constraint(targets, constant)
                else:
                    before = len(mrf.potentials)
                    mrf.add_potential(targets, constant, weight, rule.squared, group=rule)
                    origins.extend([rule] * (len(mrf.potentials) - before))
        for coefficients, offset, weight, squared in self._raw_potentials:
            before = len(mrf.potentials)
            mrf.add_potential(coefficients, offset, weight, squared)
            origins.extend([None] * (len(mrf.potentials) - before))
        for spec in self._raw_constraints:
            mrf.add_constraint(spec.coefficients, spec.offset, spec.equality)
        return mrf, origins

    def infer(
        self,
        settings: AdmmSettings | None = None,
        warm_start: Mapping[GroundAtom, float] | None = None,
        weight_overrides: Mapping[Rule, float] | None = None,
        warm_state: "AdmmWarmState | None" = None,
        executor: MapExecutor | str | None = None,
        shard_size: int | None = None,
    ) -> InferenceResult:
        """Ground, solve MAP by ADMM, and read back target truths.

        *warm_start* seeds consensus values per atom; *warm_state* (a
        previous result's ``admm.state``) restores the full ADMM state
        and is only honoured when the grounding structure is unchanged
        (the solver checks the shapes).  *executor*/*shard_size* select
        the sharded grounding path (see :meth:`ground`).
        """
        mrf = self.ground(weight_overrides, executor=executor, shard_size=shard_size)
        start = None
        if warm_start:
            start = np.full(mrf.num_variables, 0.5)
            for atom, value in warm_start.items():
                try:
                    start[mrf.index_of(atom)] = value
                except InferenceError:
                    pass
        result = AdmmSolver(mrf, settings).solve(start, warm_state=warm_state)
        assignment = {
            atom: float(result.x[mrf.index_of(atom)])
            for atom in self.database.targets_in_order
        }
        return InferenceResult(
            assignment=assignment,
            admm=result,
            num_potentials=len(mrf.potentials),
            num_constraints=len(mrf.constraints),
        )

    def ground_program(
        self,
        weight_overrides: Mapping[Rule, float] | None = None,
        settings: AdmmSettings | None = None,
        executor: MapExecutor | str | None = None,
        shard_size: int | None = None,
    ) -> "GroundedProgram":
        """Ground once into a reusable weight-mutable artifact.

        The returned :class:`GroundedProgram` owns the compiled HL-MRF
        *structure* and treats the rule weights as a mutable vector:
        :meth:`GroundedProgram.set_rule_weights` rewrites them in place
        and :meth:`GroundedProgram.solve` reuses one compiled ADMM
        partition across every reweighted solve.  This is the artifact
        weight learning iterates on — one grounding per learning run,
        not three per epoch.
        """
        mrf = self.ground(weight_overrides, executor=executor, shard_size=shard_size)
        return GroundedProgram(self, mrf, settings)

    # -- introspection ---------------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(self._rules)

    def predicates(self) -> Iterable[Predicate]:
        return self._predicates.values()


class GroundedProgram:
    """One grounding of a :class:`PslProgram`, with mutable rule weights.

    The HL-MRF energy is linear in the rule weights, so iterative
    reweighting schemes (perceptron weight learning, MM/EM-style
    algorithms) never need to re-ground: this artifact fixes the ground
    *structure* once and exposes

    * :meth:`set_rule_weights` — in-place weight writes, valid while no
      weight crosses zero (the MRF rejects zero crossings, since
      zero-weight potentials are dropped at grounding time);
    * :meth:`solve` — MAP inference on one lazily compiled, persistently
      reused ADMM partition (pass ``warm_state`` from the previous
      epoch's result to also reuse the dual state);
    * :meth:`rule_features` — Phi_r, the per-rule unweighted hinge
      masses at an assignment, read from the recorded per-potential
      origin groups instead of a fresh grounding.

    A reweighted artifact is element-for-element identical to a fresh
    grounding at the same weights, so solves from it are bit-identical
    to the re-grounding path they replace.
    """

    def __init__(
        self,
        program: PslProgram,
        mrf: HingeLossMRF,
        settings: AdmmSettings | None = None,
    ):
        self.program = program
        self.mrf = mrf
        self._settings = settings
        self._solver: AdmmSolver | None = None

    @property
    def solver(self) -> AdmmSolver:
        """The artifact's persistent solver (partition compiled once)."""
        if self._solver is None:
            self._solver = AdmmSolver(self.mrf, self._settings)
        return self._solver

    def set_rule_weights(self, weights: Mapping[Rule, float]) -> None:
        """Rewrite the weights of every grounding of each rule in place."""
        self.mrf.set_group_weights(weights)

    def solve(
        self,
        warm_start: np.ndarray | None = None,
        warm_state: AdmmWarmState | None = None,
    ) -> AdmmResult:
        """MAP-solve the current weights on the reused compiled partition."""
        return self.solver.solve(warm_start, warm_state=warm_state)

    def assignment_vector(self, assignment: Mapping[GroundAtom, float]) -> np.ndarray:
        """A full MRF-variable vector from a per-target-atom assignment."""
        x = np.empty(self.mrf.num_variables)
        for atom in self.program.database.targets_in_order:
            try:
                x[self.mrf.index_of(atom)] = assignment[atom]
            except KeyError:
                raise InferenceError(
                    f"assignment missing target atom {atom}"
                ) from None
        return x

    def rule_features(
        self, assignment: Mapping[GroundAtom, float]
    ) -> dict[Rule, float]:
        """Phi_r: per-rule unweighted hinge mass at *assignment*.

        Computed from the grounded structure's recorded origin groups —
        no re-grounding.  Arithmetic matches the historical
        ``value/weight`` evaluation exactly, so learning trajectories
        are bit-identical to the re-grounding path.
        """
        x = self.assignment_vector(assignment)
        features: dict[Rule, float] = {}
        group_keys = self.mrf.group_keys
        for potential, gid in zip(self.mrf.potentials, self.mrf.potential_groups):
            if gid < 0:
                continue
            key = group_keys[gid]
            if not isinstance(key, Rule):
                continue
            weighted = potential.value(x)
            features[key] = features.get(key, 0.0) + (
                weighted / potential.weight if potential.weight > 0 else 0.0
            )
        return features

    def close(self) -> None:
        """Release solver-held resources (shared-memory staging)."""
        if self._solver is not None:
            self._solver.close()

    def __enter__(self) -> "GroundedProgram":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
