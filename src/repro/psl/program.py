"""PSL programs: predicates + rules + data, compiled to a HL-MRF.

:class:`PslProgram` is the user-facing entry point of the mini-PSL
engine.  Typical use::

    program = PslProgram()
    friend = program.predicate("friend", 2)
    votes = program.predicate("votes", 2, closed=False)
    program.rule([lit(friend, "A", "B"), lit(votes, "A", "P")],
                 [lit(votes, "B", "P")], weight=0.5)
    program.observe(friend("alice", "bob"))
    program.target(votes("alice", "left"))
    ...
    result = program.infer()
    result.truth(votes("alice", "left"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GroundingError, InferenceError
from repro.psl.admm import AdmmResult, AdmmSettings, AdmmSolver, AdmmWarmState
from repro.psl.database import Database
from repro.psl.grounding import ground_rule, linearize
from repro.psl.hlmrf import HingeLossMRF
from repro.psl.predicate import GroundAtom, Predicate
from repro.psl.rule import LinearConstraintSpec, Literal, Rule


@dataclass
class InferenceResult:
    """MAP assignment over the target atoms, plus solver diagnostics."""

    assignment: dict[GroundAtom, float]
    admm: AdmmResult
    num_potentials: int
    num_constraints: int

    def truth(self, atom: GroundAtom) -> float:
        try:
            return self.assignment[atom]
        except KeyError:
            raise InferenceError(f"{atom} was not a target of inference") from None

    @property
    def converged(self) -> bool:
        return self.admm.converged


class PslProgram:
    """A PSL model: predicate declarations, rules, and grounding data."""

    def __init__(self) -> None:
        self._predicates: dict[str, Predicate] = {}
        self._rules: list[Rule] = []
        self._raw_potentials: list[tuple[dict[GroundAtom, float], float, float, bool]] = []
        self._raw_constraints: list[LinearConstraintSpec] = []
        self.database = Database()

    # -- model construction --------------------------------------------------

    def predicate(self, name: str, arity: int, closed: bool = True) -> Predicate:
        """Declare (or fetch) a predicate."""
        existing = self._predicates.get(name)
        if existing is not None:
            if existing.arity != arity or existing.closed != closed:
                raise GroundingError(f"predicate {name} re-declared inconsistently")
            return existing
        p = Predicate(name, arity, closed)
        self._predicates[name] = p
        return p

    def rule(
        self,
        body: Sequence[Literal],
        head: Sequence[Literal],
        weight: float | None = 1.0,
        squared: bool = False,
        name: str = "",
    ) -> Rule:
        """Add a first-order rule (``weight=None`` makes it hard)."""
        r = Rule(tuple(body), tuple(head), weight, squared, name)
        self._rules.append(r)
        return r

    def observe(self, atom: GroundAtom, truth: float = 1.0) -> None:
        self.database.observe(atom, truth)

    def target(self, atom: GroundAtom) -> None:
        self.database.add_target(atom)

    def add_raw_potential(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        weight: float,
        squared: bool = False,
    ) -> None:
        """Attach ``weight*max(0, sum coeff*atom + offset)`` directly.

        Used for potentials that are unnatural as logical rules, e.g.
        per-candidate size priors with grounding-specific weights.
        """
        self._raw_potentials.append((dict(coefficients), offset, weight, squared))

    def add_linear_constraint(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        equality: bool = False,
    ) -> None:
        """Attach an arithmetic constraint ``sum coeff*atom + offset <= 0``."""
        self._raw_constraints.append(
            LinearConstraintSpec(dict(coefficients), offset, equality)
        )

    # -- compilation and inference -------------------------------------------

    def ground(
        self,
        weight_overrides: Mapping[Rule, float] | None = None,
    ) -> HingeLossMRF:
        """Ground all rules and compile the HL-MRF.

        ``weight_overrides`` substitutes rule weights at grounding time
        without mutating the (frozen) rules — the hook weight learning
        uses to re-ground cheaply between epochs.
        """
        mrf, _ = self.ground_with_origins(weight_overrides)
        return mrf

    def ground_with_origins(
        self,
        weight_overrides: Mapping[Rule, float] | None = None,
    ) -> tuple[HingeLossMRF, list[Rule | None]]:
        """Like :meth:`ground`, also reporting each potential's source rule.

        The returned list is parallel to ``mrf.potentials``; raw potentials
        map to None.
        """
        overrides = weight_overrides or {}
        mrf = HingeLossMRF()
        origins: list[Rule | None] = []
        for atom in self.database.targets:
            mrf.variable_index(atom)
        for rule in self._rules:
            weight = overrides.get(rule, rule.weight)
            for grounding in ground_rule(rule, self.database):
                coefficients, constant = linearize(grounding, self.database)
                targets = {a: c for a, c in coefficients.items() if self.database.is_target(a)}
                # contributions of observed atoms are already in `constant`
                # via linearize; drop zero-coefficient leftovers.
                if rule.is_hard:
                    mrf.add_constraint(targets, constant)
                else:
                    if not targets:
                        continue  # fully observed grounding: constant energy
                    before = len(mrf.potentials)
                    mrf.add_potential(targets, constant, weight, rule.squared)
                    origins.extend([rule] * (len(mrf.potentials) - before))
        for coefficients, offset, weight, squared in self._raw_potentials:
            before = len(mrf.potentials)
            mrf.add_potential(coefficients, offset, weight, squared)
            origins.extend([None] * (len(mrf.potentials) - before))
        for spec in self._raw_constraints:
            mrf.add_constraint(spec.coefficients, spec.offset, spec.equality)
        return mrf, origins

    def infer(
        self,
        settings: AdmmSettings | None = None,
        warm_start: Mapping[GroundAtom, float] | None = None,
        weight_overrides: Mapping[Rule, float] | None = None,
        warm_state: "AdmmWarmState | None" = None,
    ) -> InferenceResult:
        """Ground, solve MAP by ADMM, and read back target truths.

        *warm_start* seeds consensus values per atom; *warm_state* (a
        previous result's ``admm.state``) restores the full ADMM state
        and is only honoured when the grounding structure is unchanged
        (the solver checks the shapes).
        """
        mrf = self.ground(weight_overrides)
        start = None
        if warm_start:
            start = np.full(mrf.num_variables, 0.5)
            for atom, value in warm_start.items():
                try:
                    start[mrf.index_of(atom)] = value
                except InferenceError:
                    pass
        result = AdmmSolver(mrf, settings).solve(start, warm_state=warm_state)
        assignment = {
            atom: float(result.x[mrf.index_of(atom)]) for atom in self.database.targets
        }
        return InferenceResult(
            assignment=assignment,
            admm=result,
            num_potentials=len(mrf.potentials),
            num_constraints=len(mrf.constraints),
        )

    # -- introspection ---------------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        return tuple(self._rules)

    def predicates(self) -> Iterable[Predicate]:
        return self._predicates.values()
