"""Observation database for PSL grounding and inference.

Holds soft truth values for observed atoms and registers the random
variables (atoms of open predicates) inference should solve for.  Closed
predicates follow the closed-world assumption: atoms never observed are
false (truth 0).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import GroundingError
from repro.psl.predicate import GroundAtom, Predicate


class Database:
    """Soft observations plus declared random-variable atoms."""

    def __init__(self) -> None:
        self._observations: dict[GroundAtom, float] = {}
        # dict-as-ordered-set: target *insertion order* defines the
        # deterministic variable order of the compiled MRF, which is what
        # lets sharded and serial grounding fingerprint identically.
        self._targets: dict[GroundAtom, None] = {}
        self._atoms_by_predicate: dict[Predicate, set[GroundAtom]] = {}
        self._version = 0

    # -- writing -----------------------------------------------------------

    def observe(self, atom: GroundAtom, truth: float = 1.0) -> None:
        """Record an observed soft truth value in [0, 1]."""
        if not 0.0 <= truth <= 1.0:
            raise GroundingError(f"truth value {truth} for {atom} outside [0, 1]")
        if atom in self._targets:
            raise GroundingError(f"{atom} is already a target (random variable)")
        self._observations[atom] = truth
        self._atoms_by_predicate.setdefault(atom.predicate, set()).add(atom)
        self._version += 1

    def add_target(self, atom: GroundAtom) -> None:
        """Register *atom* as a random variable for inference."""
        if atom.predicate.closed:
            raise GroundingError(
                f"cannot make target of closed predicate {atom.predicate.name}"
            )
        if atom in self._observations:
            raise GroundingError(f"{atom} is already observed")
        self._targets[atom] = None
        self._atoms_by_predicate.setdefault(atom.predicate, set()).add(atom)
        self._version += 1

    def state_token(self) -> object:
        """A value that changes whenever this database's contents change.

        The executor initializer-reuse hook (see
        :meth:`repro.executors.ProcessExecutor.map`): a persistent pool
        whose workers hold a pickled snapshot of this database may be
        reused only while the token matches — an in-place
        ``observe``/``add_target`` after a ground would otherwise leave
        the workers grounding against a stale copy.
        """
        return self._version

    # -- reading -----------------------------------------------------------

    def is_target(self, atom: GroundAtom) -> bool:
        return atom in self._targets

    def truth(self, atom: GroundAtom) -> float | None:
        """Observed truth of *atom*, applying closed-world default 0.

        Returns None for target atoms (their truth is decided by inference).
        """
        if atom in self._targets:
            return None
        value = self._observations.get(atom)
        if value is not None:
            return value
        if atom.predicate.closed:
            return 0.0
        # Open-predicate atom that was never declared: treat as false
        # observation rather than silently inventing a random variable.
        return 0.0

    def atoms_of(self, predicate: Predicate) -> frozenset[GroundAtom]:
        """All known atoms (observed or target) of *predicate*."""
        return frozenset(self._atoms_by_predicate.get(predicate, ()))

    @property
    def targets(self) -> frozenset[GroundAtom]:
        return frozenset(self._targets)

    @property
    def targets_in_order(self) -> tuple[GroundAtom, ...]:
        """Target atoms in insertion order (the MRF's variable order)."""
        return tuple(self._targets)

    @property
    def observations(self) -> dict[GroundAtom, float]:
        return dict(self._observations)

    def observe_all(self, atoms: Iterable[GroundAtom], truth: float = 1.0) -> None:
        for a in atoms:
            self.observe(a, truth)

    def __iter__(self) -> Iterator[GroundAtom]:
        for bucket in self._atoms_by_predicate.values():
            yield from bucket
