"""Observation database for PSL grounding and inference.

Holds soft truth values for observed atoms and registers the random
variables (atoms of open predicates) inference should solve for.  Closed
predicates follow the closed-world assumption: atoms never observed are
false (truth 0).

Every mutation is recorded in a bounded **change journal** of typed
:class:`DeltaEntry` rows, and :meth:`Database.state_token` identifies a
snapshot as a ``(salt, version)`` pair — the salt is unique per database
lineage, so tokens from *different* databases can never alias (two
fresh databases both at version 3 used to compare equal, silently
reusing pool workers holding the wrong snapshot).  :meth:`Database.
delta_since` replays the journal into a net atom-level
:class:`DatabaseDelta`, which is what incremental grounding
(:mod:`repro.psl.delta`) uses to re-ground only the shards an edit
touched.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import GroundingError
from repro.psl.predicate import GroundAtom, Predicate

#: Journal rows kept before the history is truncated from the front.
#: ``delta_since`` with a token older than the retained window returns
#: ``None`` (caller falls back to a full re-ground), so the cap only
#: bounds memory — it never produces a wrong delta.
JOURNAL_LIMIT = 65536

#: Per-process counter feeding database salts.  Combined with the pid so
#: two databases created in different processes differ too; a *pickled
#: copy* keeps its salt (snapshots of one lineage share tokens, which is
#: exactly what executor initializer reuse compares).
_SALT_COUNTER = itertools.count()


@dataclass(frozen=True)
class DeltaEntry:
    """One typed journal row: the operation, its atom, and prior state.

    ``prior`` is the atom's state immediately before the entry applied:
    ``("obs", value)``, ``("target",)``, or ``None`` (unknown atom).
    ``value`` is the new truth for ``observe`` entries, else ``None``.
    """

    op: str  # "observe" | "retract_observation" | "add_target" | "retract_target"
    atom: GroundAtom
    value: float | None = None
    prior: tuple | None = None


@dataclass(frozen=True)
class DatabaseDelta:
    """The *net* atom-level difference between two database versions.

    Computed by journal replay: an atom observed then retracted back to
    its initial state nets out entirely.  Atoms appear in first-touch
    journal order, so the delta itself is deterministic.
    """

    observed: tuple[tuple[GroundAtom, float], ...]  # new or changed observations
    retracted_observations: tuple[GroundAtom, ...]
    added_targets: tuple[GroundAtom, ...]
    retracted_targets: tuple[GroundAtom, ...]

    @property
    def touched_atoms(self) -> tuple[GroundAtom, ...]:
        """Every atom whose state changed, first-touch order."""
        seen: dict[GroundAtom, None] = {}
        for atom, _ in self.observed:
            seen.setdefault(atom, None)
        for atom in self.retracted_observations:
            seen.setdefault(atom, None)
        for atom in self.added_targets:
            seen.setdefault(atom, None)
        for atom in self.retracted_targets:
            seen.setdefault(atom, None)
        return tuple(seen)

    @property
    def predicates(self) -> frozenset[Predicate]:
        """Predicates with at least one touched atom."""
        return frozenset(a.predicate for a in self.touched_atoms)

    def __bool__(self) -> bool:
        return bool(
            self.observed
            or self.retracted_observations
            or self.added_targets
            or self.retracted_targets
        )


EMPTY_DELTA = DatabaseDelta((), (), (), ())


class Database:
    """Soft observations plus declared random-variable atoms."""

    def __init__(self) -> None:
        self._observations: dict[GroundAtom, float] = {}
        # dict-as-ordered-set: target *insertion order* defines the
        # deterministic variable order of the compiled MRF, which is what
        # lets sharded and serial grounding fingerprint identically.
        self._targets: dict[GroundAtom, None] = {}
        # dict-as-ordered-set buckets so ``__iter__`` yields atoms in
        # insertion order — a set bucket here leaks hash-seed order into
        # anything iterating the database (RPL002-class nondeterminism).
        self._atoms_by_predicate: dict[Predicate, dict[GroundAtom, None]] = {}
        self._version = 0
        self._salt = (os.getpid(), next(_SALT_COUNTER))
        self._journal: list[DeltaEntry] = []
        # Version of the state *before* the oldest retained journal row:
        # row i of ``_journal`` is the (base+i) -> (base+i+1) transition.
        self._journal_base = 0

    # -- journal -----------------------------------------------------------

    def _record(self, entry: DeltaEntry) -> None:
        self._journal.append(entry)
        self._version += 1
        if len(self._journal) > JOURNAL_LIMIT:
            dropped = len(self._journal) - JOURNAL_LIMIT // 2
            del self._journal[:dropped]
            self._journal_base += dropped

    def _state_of(self, atom: GroundAtom) -> tuple | None:
        if atom in self._targets:
            return ("target",)
        value = self._observations.get(atom)
        if value is not None:
            return ("obs", value)
        return None

    def delta_since(self, token: object) -> DatabaseDelta | None:
        """The net atom-level diff between *token*'s snapshot and now.

        Returns ``None`` when the diff cannot be produced — the token
        belongs to a different database lineage, is from the future, or
        predates the retained journal window — in which case callers
        must treat everything as changed (full re-ground).
        """
        if not (isinstance(token, tuple) and len(token) == 2):
            return None
        salt, version = token
        if salt != self._salt or not isinstance(version, int):
            return None
        if version == self._version:
            return EMPTY_DELTA
        if version > self._version or version < self._journal_base:
            return None
        entries = self._journal[version - self._journal_base :]
        # First-touch replay: the first entry for an atom carries its
        # state at *token* time; its current dicts give the final state.
        initial: dict[GroundAtom, tuple | None] = {}
        for entry in entries:
            if entry.atom not in initial:
                initial[entry.atom] = entry.prior
        observed: list[tuple[GroundAtom, float]] = []
        retracted_obs: list[GroundAtom] = []
        added_targets: list[GroundAtom] = []
        retracted_targets: list[GroundAtom] = []
        for atom, before in initial.items():
            after = self._state_of(atom)
            if before == after:
                continue
            if before is not None and before[0] == "obs":
                if after is not None and after[0] == "obs":
                    observed.append((atom, after[1]))
                    continue
                retracted_obs.append(atom)
            elif before is not None and before[0] == "target":
                retracted_targets.append(atom)
            if after is not None and after[0] == "obs":
                observed.append((atom, after[1]))
            elif after is not None and after[0] == "target":
                added_targets.append(atom)
        return DatabaseDelta(
            observed=tuple(observed),
            retracted_observations=tuple(retracted_obs),
            added_targets=tuple(added_targets),
            retracted_targets=tuple(retracted_targets),
        )

    # -- writing -----------------------------------------------------------

    def observe(self, atom: GroundAtom, truth: float = 1.0) -> None:
        """Record an observed soft truth value in [0, 1].

        A value-identical re-observe is a full no-op: the version (and
        therefore :meth:`state_token`) is unchanged, so caches and
        persistent pool workers keyed on the token stay valid.
        """
        if not 0.0 <= truth <= 1.0:
            raise GroundingError(f"truth value {truth} for {atom} outside [0, 1]")
        if atom in self._targets:
            raise GroundingError(f"{atom} is already a target (random variable)")
        truth = float(truth)
        prior = self._state_of(atom)
        if prior is not None and prior[1] == truth:
            return
        self._observations[atom] = truth
        self._atoms_by_predicate.setdefault(atom.predicate, {})[atom] = None
        self._record(DeltaEntry("observe", atom, value=truth, prior=prior))

    def retract_observation(self, atom: GroundAtom) -> None:
        """Remove a previously observed atom (back to closed-world default)."""
        value = self._observations.get(atom)
        if value is None:
            raise GroundingError(f"{atom} is not observed; cannot retract")
        del self._observations[atom]
        self._drop_atom(atom)
        self._record(DeltaEntry("retract_observation", atom, prior=("obs", value)))

    def add_target(self, atom: GroundAtom) -> None:
        """Register *atom* as a random variable for inference."""
        if atom.predicate.closed:
            raise GroundingError(
                f"cannot make target of closed predicate {atom.predicate.name}"
            )
        if atom in self._observations:
            raise GroundingError(f"{atom} is already observed")
        if atom in self._targets:
            return
        self._targets[atom] = None
        self._atoms_by_predicate.setdefault(atom.predicate, {})[atom] = None
        self._record(DeltaEntry("add_target", atom, prior=None))

    def retract_target(self, atom: GroundAtom) -> None:
        """Remove a target atom (it stops being a random variable)."""
        if atom not in self._targets:
            raise GroundingError(f"{atom} is not a target; cannot retract")
        del self._targets[atom]
        self._drop_atom(atom)
        self._record(DeltaEntry("retract_target", atom, prior=("target",)))

    def _drop_atom(self, atom: GroundAtom) -> None:
        bucket = self._atoms_by_predicate.get(atom.predicate)
        if bucket is not None:
            bucket.pop(atom, None)

    def state_token(self) -> object:
        """A ``(salt, version)`` pair identifying this exact snapshot.

        The executor initializer-reuse hook (see
        :meth:`repro.executors.ProcessExecutor.map`): a persistent pool
        whose workers hold a pickled snapshot of this database may be
        reused only while the token matches — an in-place
        ``observe``/``add_target`` after a ground would otherwise leave
        the workers grounding against a stale copy.  The salt is unique
        per database lineage (pickled snapshots keep it), so tokens of
        *distinct* databases never compare equal; feed the token back to
        :meth:`delta_since` for the atom-level diff.
        """
        return (self._salt, self._version)

    # -- reading -----------------------------------------------------------

    def is_target(self, atom: GroundAtom) -> bool:
        return atom in self._targets

    def truth(self, atom: GroundAtom) -> float | None:
        """Observed truth of *atom*, applying closed-world default 0.

        Returns None for target atoms (their truth is decided by inference).
        """
        if atom in self._targets:
            return None
        value = self._observations.get(atom)
        if value is not None:
            return value
        if atom.predicate.closed:
            return 0.0
        # Open-predicate atom that was never declared: treat as false
        # observation rather than silently inventing a random variable.
        return 0.0

    def atoms_of(self, predicate: Predicate) -> frozenset[GroundAtom]:
        """All known atoms (observed or target) of *predicate*."""
        return frozenset(self._atoms_by_predicate.get(predicate, ()))

    @property
    def targets(self) -> frozenset[GroundAtom]:
        return frozenset(self._targets)

    @property
    def targets_in_order(self) -> tuple[GroundAtom, ...]:
        """Target atoms in insertion order (the MRF's variable order)."""
        return tuple(self._targets)

    @property
    def observations(self) -> dict[GroundAtom, float]:
        return dict(self._observations)

    def observe_all(self, atoms: Iterable[GroundAtom], truth: float = 1.0) -> None:
        for a in atoms:
            self.observe(a, truth)

    def __iter__(self) -> Iterator[GroundAtom]:
        for bucket in self._atoms_by_predicate.values():
            yield from bucket
