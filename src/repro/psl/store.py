"""Content-addressed, disk-persistent store of compiled HL-MRF groundings.

Ground once per structure, *ever*: PRs 5–7 made warm reuse of a grounded
structure nearly free inside one process (in-place reweighting, the
per-process grounding cache, shared-memory staging), but every new
process lifetime still paid the dominant grounding cost from scratch.
This module spills a compiled grounding — the flat
:class:`~repro.psl.partition.FlatTermArrays` CSR arrays plus the MRF's
variable table, origin-group registry, and folded-constant masses — to
mmap-able ``.npy`` files keyed by a caller-supplied structure key, and
re-attaches it in a fresh process as a solve-ready
:class:`~repro.psl.hlmrf.HingeLossMRF`:

* the solver arrays come back as **read-only mmap views** (zero-copy;
  the kernel shares the page cache across a whole fleet of workers
  attaching the same entry), seeded onto the MRF as precompiled
  :class:`~repro.psl.partition.FlatTermArrays` so
  :func:`~repro.psl.partition.build_partition` skips array assembly;
* only the per-term weight vector is materialized as a writable
  in-memory copy — weights are the mutable half of the
  ground-once/reweight-many contract and get rewritten on attach;
* the potential/constraint lists are rebuilt eagerly through
  :func:`~repro.psl.hlmrf.rebuild_mrf` — no shard planning, no atom
  re-interning through the grounding path — so reweighting, energy
  evaluation, and fingerprints all behave exactly as on a fresh ground.

Entry layout (one directory per key under the store root)::

    <root>/<key>/
        manifest.json   format version, payload + structure hashes, counts
        kind.npy ... extents.npy   the arrays, one file each (npz cannot mmap)
        meta.pkl        variables, group registry, constants, caller extra

Writes are atomic: everything lands in a ``<key>.tmp-<pid>-...`` sibling
directory first, hashed file by file in the fixed :data:`ARRAY_NAMES`
order (fingerprint order — *never* set/dict-arrival or directory order,
or content-addressing breaks), and a single ``os.rename`` publishes the
entry.  Concurrent writers race safely: the first rename wins, losers
clean up their temp directory and report ``False`` — readers can never
observe a torn entry.  ``gc`` relies on POSIX unlink semantics: deleting
an entry's files while a loaded MRF still holds mmap views is safe (the
inode lives until the last mapping closes), so reclamation never has to
coordinate with readers.  See ``docs/grounding-store.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.psl.hlmrf import HingeLossMRF, rebuild_mrf
from repro.psl.partition import FlatTermArrays, compile_term_arrays
from repro.psl.predicate import GroundAtom
from repro.psl.sharding import structure_fingerprint

#: Bump on any change to the entry layout, array order, or meta schema.
#: Readers ignore entries whose manifest or meta carries a different
#: version — stale entries are skipped (and ``gc``-able), never crash.
STORE_FORMAT = 1

#: The spilled arrays, in the one fixed serialization order.  Writers
#: emit and hash the files in exactly this order and readers open them
#: by these names — content-addressing and the payload hash depend on
#: the order being a module constant, not set/dict/directory order.
ARRAY_NAMES = (
    "kind",
    "offset",
    "weight",
    "normsq",
    "term_ptr",
    "var",
    "term",
    "coeff",
    "degree",
    "groups",
    "extents",
)

_MANIFEST = "manifest.json"
_META = "meta.pkl"
_TMP_MARKER = ".tmp-"

#: Everything a reader can hit on a corrupt, truncated, raced, or
#: version-skewed entry.  ``ModuleNotFoundError``/``AttributeError``
#: are the unpickle version-skew cases (an entry written by a newer or
#: older code revision whose classes moved); the rest are plain
#: corruption/IO.  A load failure is always a cache miss, never a crash.
_LOAD_ERRORS = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    TypeError,
    IndexError,
    ImportError,  # ModuleNotFoundError subclasses this
    AttributeError,
    pickle.UnpicklingError,
    json.JSONDecodeError,
)


#: Tag for the packed variable-table encoding inside ``meta.pkl``.
_PACKED_VARS = "packed-atoms-v1"


def _pack_variables(variables) -> tuple:
    """Encode the MRF variable table for fast attach.

    The dominant attach cost after mmap'ing the solver arrays is
    unpickling thousands of :class:`GroundAtom` objects one by one.  The
    common case (every atom is a predicate applied to a single machine
    int — true for the whole collective model) packs into a tiny
    predicate registry plus two int64 blobs, which loads an order of
    magnitude faster than the generic pickle path.  Anything else falls
    back to the plain atom tuple.
    """
    variables = tuple(variables)
    if not variables or not all(
        type(a) is GroundAtom
        and len(a.arguments) == 1
        and type(a.arguments[0]) is int
        for a in variables
    ):
        return variables
    predicates: list = []
    pred_index: dict = {}
    pred_ids: list[int] = []
    args: list[int] = []
    for atom in variables:
        predicate = atom.predicate
        slot = pred_index.get(predicate)
        if slot is None:
            slot = len(predicates)
            pred_index[predicate] = slot
            predicates.append(predicate)
        pred_ids.append(slot)
        args.append(atom.arguments[0])
    try:
        pred_blob = np.asarray(pred_ids, dtype=np.int64).tobytes()
        arg_blob = np.asarray(args, dtype=np.int64).tobytes()
    except OverflowError:  # ints beyond int64: keep the generic encoding
        return variables
    return (_PACKED_VARS, tuple(predicates), pred_blob, arg_blob)


def _unpack_variables(stored) -> list:
    """Decode :func:`_pack_variables` output back into atom objects."""
    if not (
        isinstance(stored, tuple) and stored and stored[0] == _PACKED_VARS
    ):
        return list(stored)
    _, predicates, pred_blob, arg_blob = stored
    pred_ids = np.frombuffer(pred_blob, dtype=np.int64).tolist()
    args = np.frombuffer(arg_blob, dtype=np.int64).tolist()
    if len(pred_ids) != len(args):
        raise ValueError("packed variable table blobs disagree on length")
    # map() keeps the per-atom reconstruction loop in C; zip() hands each
    # constructor its ready-made single-int argument tuple.
    return list(map(GroundAtom, map(predicates.__getitem__, pred_ids), zip(args)))


def structure_key(payload: object) -> str:
    """Hash a JSON-able structure description into a store key.

    Canonical JSON (sorted keys) through sha256 — the helper every
    model-specific key builder (e.g.
    :func:`repro.selection.collective.collective_structure_key`) funnels
    through so keys are uniform hex directory names.
    """
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return digest


@dataclass(frozen=True)
class StoredGrounding:
    """One attached store entry: a solve-ready MRF plus caller metadata.

    ``mrf`` carries precompiled flat arrays (mmap-backed) — building an
    :class:`~repro.psl.admm.AdmmSolver` on it skips array assembly.
    ``extra`` is whatever the writer passed to :meth:`GroundingStore.put`
    (the collective tier stores its grounding-time objective weights
    there).
    """

    key: str
    mrf: HingeLossMRF
    extra: dict | None
    manifest: dict


@dataclass(frozen=True)
class StoreEntry:
    """One ``ls`` row: key plus the manifest counts (or a stale marker)."""

    key: str
    format: int | None
    num_variables: int
    num_potentials: int
    num_constraints: int
    num_copies: int
    bytes: int

    @property
    def stale(self) -> bool:
        return self.format != STORE_FORMAT


class GroundingStore:
    """A content-addressed directory of spilled groundings.

    Instances are cheap handles over a root directory; any number of
    processes may read and write one store concurrently (atomicity comes
    from the rename protocol, not locks).  All mutating operations are
    best-effort: a read-only or otherwise unwritable store degrades to
    a permanent miss (``put`` returns ``False``) rather than raising —
    persistence is an optimization, never a correctness requirement.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # -- paths ----------------------------------------------------------------

    def entry_dir(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"invalid store key {key!r}")
        return self.root / key

    def __contains__(self, key: str) -> bool:
        return (self.entry_dir(key) / _MANIFEST).exists()

    # -- write ----------------------------------------------------------------

    def put(self, key: str, mrf: HingeLossMRF, extra: dict | None = None) -> bool:
        """Spill *mrf* under *key*; ``True`` iff this call published it.

        Idempotent and race-safe: an existing entry (or a concurrent
        writer winning the rename) makes this a no-op returning
        ``False``.  Failures to write (read-only store, full disk) are
        swallowed the same way — the caller simply re-grounds next cold
        start.
        """
        entry = self.entry_dir(key)
        if (entry / _MANIFEST).exists():
            return False
        flat = getattr(mrf, "_compiled", None)
        if (
            flat is not None
            and flat.num_potentials == len(mrf.potentials)
            and flat.num_terms == len(mrf.potentials) + len(mrf.constraints)
        ):
            # Fast path for pre-compiled MRFs (a splice or a ground-time
            # seed): reuse the flat arrays instead of re-walking the term
            # lists.  The weight column is re-copied from the live
            # vector — in-place reweights mutate it without refreshing
            # the compiled snapshot — so the spill never persists stale
            # weights.
            weight = np.array(flat.weight, dtype=np.float64, copy=True)
            weight[: flat.num_potentials] = mrf._pot_weights
            flat = dataclasses.replace(flat, weight=weight)
        else:
            flat = compile_term_arrays(mrf)
        arrays = {
            "kind": flat.kind,
            "offset": flat.offset,
            "weight": flat.weight,
            "normsq": flat.normsq,
            "term_ptr": flat.term_ptr,
            "var": flat.var,
            "term": flat.term,
            "coeff": flat.coeff,
            "degree": flat.degree,
            "groups": np.asarray(mrf.potential_groups, dtype=np.int64),
            "extents": np.asarray(
                mrf._block_extents, dtype=np.int64
            ).reshape(-1, 4),
        }
        meta = {
            "format": STORE_FORMAT,
            "variables": _pack_variables(mrf.variables),
            "group_keys": tuple(mrf.group_keys),
            "zero_dropped": tuple(sorted(mrf._zero_dropped)),
            "constant_mass": tuple(sorted(mrf._constant_mass.items())),
            "constant_weighted": tuple(sorted(mrf._constant_weighted.items())),
            "constant_energy": float(mrf.constant_energy),
            "num_potentials": len(mrf.potentials),
            "extra": dict(extra) if extra else None,
        }
        # Unique per *call*, not just per process: two threads spilling
        # the same key concurrently must never share (and tear down) one
        # another's staging directory.
        token = os.urandom(6).hex()
        tmp = self.root / f"{key}{_TMP_MARKER}{os.getpid()}-{token}"
        try:
            tmp.mkdir(parents=True, exist_ok=False)
            digest = hashlib.sha256()
            for name in ARRAY_NAMES:
                path = tmp / f"{name}.npy"
                with open(path, "wb") as handle:
                    np.save(handle, arrays[name])
                digest.update(name.encode())
                digest.update(path.read_bytes())
            meta_bytes = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
            (tmp / _META).write_bytes(meta_bytes)
            digest.update(_META.encode())
            digest.update(meta_bytes)
            manifest = {
                "format": STORE_FORMAT,
                "key": key,
                "payload_sha256": digest.hexdigest(),
                "structure_sha256": hashlib.sha256(
                    structure_fingerprint(mrf)
                ).hexdigest(),
                "num_variables": mrf.num_variables,
                "num_potentials": len(mrf.potentials),
                "num_constraints": len(mrf.constraints),
                "num_copies": int(flat.num_copies),
            }
            (tmp / _MANIFEST).write_text(json.dumps(manifest, sort_keys=True))
            # The publish: one rename, atomic on POSIX.  A concurrent
            # winner makes the target a non-empty directory and this
            # raises (ENOTEMPTY/EEXIST) — the loser's temp dir is
            # removed below and readers only ever saw the winner.
            os.rename(tmp, entry)
            return True
        except OSError:
            return False
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    # -- read -----------------------------------------------------------------

    def load(self, key: str) -> StoredGrounding | None:
        """Attach the entry under *key*, or ``None`` on any miss.

        Misses include: no entry, format-version skew (older/newer
        writer), truncated or corrupt payloads, and unpicklable metadata
        (classes that moved between revisions).  The arrays attach as
        read-only mmap views; only the weight vector is copied writable.
        The payload hash is deliberately *not* verified here — hashing
        would fault in every page and defeat the zero-copy attach; run
        :meth:`verify` for integrity audits.
        """
        entry = self.entry_dir(key)
        try:
            manifest = json.loads((entry / _MANIFEST).read_text())
            if manifest.get("format") != STORE_FORMAT:
                return None
            arrays = {
                name: np.load(
                    entry / f"{name}.npy", mmap_mode="r", allow_pickle=False
                )
                for name in ARRAY_NAMES
            }
            meta = pickle.loads((entry / _META).read_bytes())
            if meta.get("format") != STORE_FORMAT:
                return None
            num_potentials = int(meta["num_potentials"])
            num_terms = int(len(arrays["kind"]))
            variables = _unpack_variables(meta["variables"])
            if (
                len(arrays["term_ptr"]) != num_terms + 1
                or len(arrays["groups"]) != num_potentials
                or num_potentials > num_terms
            ):
                return None
            mrf = rebuild_mrf(
                variables,
                kind=arrays["kind"],
                offset=arrays["offset"],
                weight=arrays["weight"],
                term_ptr=arrays["term_ptr"],
                var=arrays["var"],
                coeff=arrays["coeff"],
                num_potentials=num_potentials,
                potential_groups=arrays["groups"],
                group_keys=meta["group_keys"],
                zero_dropped=meta["zero_dropped"],
                constant_mass=dict(meta["constant_mass"]),
                constant_weighted=dict(meta["constant_weighted"]),
                constant_energy=meta["constant_energy"],
                block_extents=arrays["extents"],
            )
            # Seed the precompiled solver arrays: everything stays a
            # zero-copy mmap view except the writable weight vector
            # (reweighting writes it in place).
            mrf._compiled = FlatTermArrays(
                num_variables=len(variables),
                num_potentials=num_potentials,
                kind=arrays["kind"],
                offset=arrays["offset"],
                weight=np.array(arrays["weight"], dtype=np.float64),
                normsq=arrays["normsq"],
                term_ptr=arrays["term_ptr"],
                var=arrays["var"],
                term=arrays["term"],
                coeff=arrays["coeff"],
                degree=arrays["degree"],
            )
            extra = meta.get("extra")
            return StoredGrounding(
                key=key, mrf=mrf, extra=extra, manifest=manifest
            )
        except _LOAD_ERRORS:
            return None

    # -- maintenance ----------------------------------------------------------

    def keys(self) -> list[str]:
        """All entry keys, sorted (directory order is never exposed)."""
        if not self.root.is_dir():
            return []
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir() and _TMP_MARKER not in child.name
        )

    def ls(self) -> list[StoreEntry]:
        """Describe every entry, sorted by key; stale ones flagged."""
        entries = []
        for key in self.keys():
            entry = self.entry_dir(key)
            size = sum(
                child.stat().st_size
                for child in sorted(entry.iterdir())
                if child.is_file()
            )
            try:
                manifest = json.loads((entry / _MANIFEST).read_text())
            except _LOAD_ERRORS:
                manifest = {}
            entries.append(
                StoreEntry(
                    key=key,
                    format=manifest.get("format"),
                    num_variables=int(manifest.get("num_variables", 0)),
                    num_potentials=int(manifest.get("num_potentials", 0)),
                    num_constraints=int(manifest.get("num_constraints", 0)),
                    num_copies=int(manifest.get("num_copies", 0)),
                    bytes=size,
                )
            )
        return entries

    def gc(self, all_entries: bool = False) -> list[str]:
        """Remove stale temp dirs and dead entries; return what went.

        Without *all_entries* only crashed writers' temp directories and
        entries that fail the quick staleness check (missing/corrupt
        manifest, format-version skew) are reclaimed; with it the whole
        store is cleared.  Safe to run while readers hold attached
        entries: POSIX keeps each deleted file's inode alive until the
        last open mmap drops, so live views stay valid — a deleted entry
        simply cannot be attached *again*.
        """
        removed = []
        if not self.root.is_dir():
            return removed
        for child in sorted(self.root.iterdir()):
            if not child.is_dir():
                continue
            if _TMP_MARKER in child.name:
                shutil.rmtree(child, ignore_errors=True)
                removed.append(child.name)
                continue
            stale = True
            try:
                manifest = json.loads((child / _MANIFEST).read_text())
                stale = manifest.get("format") != STORE_FORMAT
            except _LOAD_ERRORS:
                pass
            if all_entries or stale:
                shutil.rmtree(child, ignore_errors=True)
                removed.append(child.name)
        return removed

    def verify(self, key: str | None = None) -> list[tuple[str, bool, str]]:
        """Audit entries: payload hash, attachability, structure hash.

        The expensive full check ``load`` skips: re-hash every payload
        file in :data:`ARRAY_NAMES` order against the manifest's
        ``payload_sha256``, attach the entry, and recompute the rebuilt
        MRF's structure fingerprint against ``structure_sha256``.
        Returns ``(key, ok, message)`` per audited entry, sorted by key.
        """
        keys = [key] if key is not None else self.keys()
        results = []
        for entry_key in keys:
            results.append((entry_key, *self._verify_one(entry_key)))
        return results

    def _verify_one(self, key: str) -> tuple[bool, str]:
        entry = self.entry_dir(key)
        try:
            manifest = json.loads((entry / _MANIFEST).read_text())
        except _LOAD_ERRORS as exc:
            return False, f"unreadable manifest: {exc}"
        if manifest.get("format") != STORE_FORMAT:
            return False, (
                f"format {manifest.get('format')!r} != {STORE_FORMAT} (stale)"
            )
        digest = hashlib.sha256()
        try:
            for name in ARRAY_NAMES:
                digest.update(name.encode())
                digest.update((entry / f"{name}.npy").read_bytes())
            digest.update(_META.encode())
            digest.update((entry / _META).read_bytes())
        except OSError as exc:
            return False, f"unreadable payload: {exc}"
        if digest.hexdigest() != manifest.get("payload_sha256"):
            return False, "payload hash mismatch (corrupt or torn entry)"
        loaded = self.load(key)
        if loaded is None:
            return False, "payload hashes ok but entry failed to attach"
        rebuilt = hashlib.sha256(structure_fingerprint(loaded.mrf)).hexdigest()
        if rebuilt != manifest.get("structure_sha256"):
            return False, "rebuilt structure fingerprint mismatch"
        return True, "ok"
