"""PSL predicates and ground atoms.

A predicate is *closed* when its ground atoms are fully observed (unknown
atoms default to truth 0 under the closed-world assumption) and *open*
when its atoms are random variables to be inferred.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Predicate:
    """A PSL predicate with a fixed arity."""

    name: str
    arity: int
    closed: bool = True

    def __call__(self, *args: object) -> "GroundAtom":
        """Build a ground atom: ``Friend("alice", "bob")``."""
        if len(args) != self.arity:
            raise ValueError(
                f"predicate {self.name}/{self.arity} applied to {len(args)} arguments"
            )
        return GroundAtom(self, tuple(args))

    def __repr__(self) -> str:
        kind = "closed" if self.closed else "open"
        return f"{self.name}/{self.arity}[{kind}]"


@dataclass(frozen=True, slots=True)
class GroundAtom:
    """A predicate applied to constants (plain hashable python values)."""

    predicate: Predicate
    arguments: tuple[object, ...]

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self.arguments)
        return f"{self.predicate.name}({inner})"
