"""Sharded grounding of hinge-loss MRFs.

Compiling a large program through ``GroundAtom``-keyed dicts materializes
the whole model twice: once as per-potential dicts, once as the MRF.  The
sharded path splits grounding into picklable **work units** (shards),
each of which emits a compact :class:`TermBlock` — flat arrays of
shard-local variable indices, CSR offsets, per-term offsets/weights/kinds
— plus the shard's atom table.  A deterministic merge interns each
shard's atoms once and appends its terms via
:meth:`~repro.psl.hlmrf.HingeLossMRF.add_term_block`, so:

* the merged MRF is **fingerprint-identical** to the serial dict-based
  path for any shard size and any order-preserving
  :class:`~repro.executors.MapExecutor` (shards are merged in spec
  order, and term order inside a shard matches the serial loop);
* peak intermediate memory is **O(largest shard)** on the streaming
  serial path — only one shard's block is alive between merges — instead
  of O(whole program) worth of per-potential dicts.

The work-unit/merge pattern mirrors
:mod:`repro.selection.metrics`' parallel problem build (PR 1): pure,
picklable units plus a merge that reproduces serial output byte for
byte.  Producers of shards live next to their data:
:mod:`repro.psl.program` shards rule groundings and raw terms;
:mod:`repro.selection.collective` emits coverage/error/prior shards
straight from the :class:`~repro.selection.metrics.SelectionProblem`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence

import numpy as np

from repro.errors import InferenceError
from repro.executors import (
    MapExecutor,
    ProcessExecutor,
    ThreadExecutor,
    initializer_scope,
    resolve_executor,
)
from repro.psl.hlmrf import (
    KIND_EQ,
    KIND_HINGE,
    KIND_LEQ,
    KIND_SQUARED,
    HingeLossMRF,
    filter_constraint_terms,
    filter_potential_terms,
)
from repro.psl.predicate import GroundAtom

#: Default number of logical entries (facts, groundings, candidates…)
#: a producer packs into one shard when the caller does not say.
DEFAULT_SHARD_SIZE = 1024


@dataclass(frozen=True)
class TermBlock:
    """A compact batch of potentials/constraints over shard-local atoms.

    CSR layout: term ``t`` owns coefficient entries
    ``term_ptr[t]:term_ptr[t+1]`` of ``atom_index``/``coefficient``.
    ``atom_index`` values index the shard's atom table, not the global
    MRF; the merge remaps them.  ``weights`` is meaningful only for
    potential kinds.  ``constant_energy`` carries potentials that reduced
    to constants inside the shard.

    ``groups`` (when present) names each term's *origin group* — the
    rule or objective component it was grounded from; ``None`` entries
    (and all constraint kinds) are ungrouped.  ``constant_masses``
    carries the per-group unweighted hinge mass of folded constants as
    ``(group key, mass, weighted delta)`` triples.  ``observed_groups``
    lists *every* group the shard's producer mentioned, in first-mention
    order, each with a flag marking groups whose potentials were dropped
    for being ground at weight zero — merged first, so the MRF's group
    registry (intern order, zero-dropped set) is identical to the one
    the serial ``add_potential`` path builds, dropped groups included.
    All three feed the merged MRF's weight-reweighting registry;
    ``None``/empty keeps full backward compatibility with group-less
    producers.
    """

    kinds: np.ndarray  # int8[num_terms], KIND_* values
    offsets: np.ndarray  # float64[num_terms]
    weights: np.ndarray  # float64[num_terms]
    term_ptr: np.ndarray  # int64[num_terms + 1]
    atom_index: np.ndarray  # int32[nnz], shard-local
    coefficient: np.ndarray  # float64[nnz]
    constant_energy: float = 0.0
    groups: tuple | None = None  # per-term origin keys (None = ungrouped)
    constant_masses: tuple = ()  # ((group key, mass, weighted delta), ...)
    observed_groups: tuple = ()  # ((group key, zero_dropped), ...)

    @property
    def num_terms(self) -> int:
        return len(self.kinds)

    @property
    def num_entries(self) -> int:
        return len(self.atom_index)


class TermBlockBuilder:
    """Accumulates one shard's terms and atom table.

    Term semantics (zero-weight drop, zero-coefficient filter, constant
    folding, infeasibility checks) come from the same
    :func:`~repro.psl.hlmrf.filter_potential_terms` /
    :func:`~repro.psl.hlmrf.filter_constraint_terms` helpers the
    incremental :class:`HingeLossMRF` API uses, so a shard-emitted block
    merges into exactly the MRF the serial calls would have built.
    """

    def __init__(self) -> None:
        self._atoms: dict[GroundAtom, int] = {}
        self._kinds: list[int] = []
        self._offsets: list[float] = []
        self._weights: list[float] = []
        self._groups: list = []
        self._ptr: list[int] = [0]
        self._atom_index: list[int] = []
        self._coefficient: list[float] = []
        self._constant_energy = 0.0
        self._constant_masses: dict = {}
        self._observed_groups: dict = {}  # key -> zero_dropped (insertion order)

    def _local(self, atom: GroundAtom) -> int:
        idx = self._atoms.get(atom)
        if idx is None:
            idx = len(self._atoms)
            self._atoms[atom] = idx
        return idx

    def add_potential(
        self,
        coefficients: Iterable[tuple[GroundAtom, float]],
        offset: float,
        weight: float,
        squared: bool = False,
        group=None,
    ) -> None:
        kept, constant, mass = filter_potential_terms(
            coefficients, offset, weight, squared
        )
        if group is not None:
            # Mirror the serial path's registry exactly: the group is
            # interned even when this potential is dropped, and a
            # zero-weight drop is remembered so reweighting it back up
            # is rejected rather than silently wrong.
            self._observed_groups[group] = self._observed_groups.get(group, False) or (
                not kept and weight == 0
            )
        self._constant_energy += constant
        if not kept:
            if group is not None and mass:
                old_mass, old_weighted = self._constant_masses.get(group, (0.0, 0.0))
                self._constant_masses[group] = (old_mass + mass, old_weighted + constant)
            return
        self._append(
            KIND_SQUARED if squared else KIND_HINGE, kept, offset, weight, group
        )

    def add_constraint(
        self,
        coefficients: Iterable[tuple[GroundAtom, float]],
        offset: float,
        equality: bool = False,
    ) -> None:
        kept = filter_constraint_terms(coefficients, offset, equality)
        if not kept:
            return
        self._append(KIND_EQ if equality else KIND_LEQ, kept, offset, 0.0, None)

    def _append(
        self,
        kind: int,
        pairs: list[tuple[GroundAtom, float]],
        offset: float,
        weight: float,
        group,
    ) -> None:
        self._kinds.append(kind)
        self._offsets.append(float(offset))
        self._weights.append(float(weight))
        self._groups.append(group)
        for atom, c in pairs:
            self._atom_index.append(self._local(atom))
            self._coefficient.append(c)
        self._ptr.append(len(self._atom_index))

    def finish(self) -> tuple[tuple[GroundAtom, ...], TermBlock]:
        """The shard's atom table (intern order) and its term block."""
        block = TermBlock(
            kinds=np.asarray(self._kinds, dtype=np.int8),
            offsets=np.asarray(self._offsets, dtype=np.float64),
            weights=np.asarray(self._weights, dtype=np.float64),
            term_ptr=np.asarray(self._ptr, dtype=np.int64),
            atom_index=np.asarray(self._atom_index, dtype=np.int32),
            coefficient=np.asarray(self._coefficient, dtype=np.float64),
            constant_energy=self._constant_energy,
            groups=tuple(self._groups) if any(
                g is not None for g in self._groups
            ) else None,
            constant_masses=tuple(
                (key, mass, weighted)
                for key, (mass, weighted) in self._constant_masses.items()
            ),
            observed_groups=tuple(self._observed_groups.items()),
        )
        return tuple(self._atoms), block


@dataclass(frozen=True)
class ShardResult:
    """One executed shard: its sequence number, atom table, and terms."""

    order: int
    atoms: tuple[GroundAtom, ...]
    block: TermBlock


class GroundingShard(Protocol):
    """A picklable grounding work unit.

    ``order`` fixes the shard's position in the merge (specs are mapped
    and merged in spec order; the field double-checks nothing reordered
    them).  ``build`` runs anywhere — worker process or in-line — and
    must be pure: same spec, same block, byte for byte.
    """

    order: int

    def build(self) -> ShardResult:
        ...


def ground_shard(shard: GroundingShard) -> ShardResult:
    """Executor-map adapter: run one shard (module-level, picklable)."""
    return shard.build()


@dataclass
class GroundingStats:
    """Counters of one sharded grounding run.

    ``peak_shard_terms``/``peak_shard_entries`` bound the working set the
    driver materializes between merges: on the streaming serial path only
    one shard's block is alive at a time, so the peak working set is the
    largest shard — not the whole program.  The sharded-grounding bench
    asserts exactly that.
    """

    num_shards: int = 0
    num_potentials: int = 0
    num_constraints: int = 0
    total_terms: int = 0
    total_entries: int = 0
    peak_shard_terms: int = 0
    peak_shard_entries: int = 0
    peak_shard_atoms: int = 0
    constant_energy: float = 0.0

    def observe(self, result: ShardResult, mrf: HingeLossMRF, before: tuple[int, int]) -> None:
        pot_before, con_before = before
        self.num_shards += 1
        self.num_potentials += len(mrf.potentials) - pot_before
        self.num_constraints += len(mrf.constraints) - con_before
        self.total_terms += result.block.num_terms
        self.total_entries += result.block.num_entries
        self.peak_shard_terms = max(self.peak_shard_terms, result.block.num_terms)
        self.peak_shard_entries = max(self.peak_shard_entries, result.block.num_entries)
        self.peak_shard_atoms = max(self.peak_shard_atoms, len(result.atoms))
        self.constant_energy += result.block.constant_energy


def ground_shards(
    shards: Sequence[GroundingShard],
    executor: MapExecutor | str | None = None,
    mrf: HingeLossMRF | None = None,
    initializer: "tuple[Callable[..., None], tuple]" | None = None,
    observer: "Callable[[ShardResult], None]" | None = None,
) -> tuple[HingeLossMRF, GroundingStats]:
    """Execute *shards* through *executor* and merge them deterministically.

    Shards run through ``executor.map`` (order-preserving by the
    :class:`~repro.executors.MapExecutor` contract) and are merged in
    spec order, so the resulting MRF is independent of where the shards
    ran.  Pass *mrf* to merge into a pre-seeded MRF (e.g. one whose
    target variables were interned up front to pin the variable order).
    Results stream one at a time on every path — serially trivially, and
    through :meth:`~repro.executors.ProcessExecutor.map`'s bounded
    in-flight window on the parallel path — so nothing but O(window)
    shard blocks is held between merges.

    *initializer* is an optional ``(callable, args)`` pair that must run
    once in every process executing shards *before* any shard builds —
    the hook producers use to ship a shared payload (e.g. a grounding
    database) once per worker instead of once per shard.  On a
    :class:`~repro.executors.ProcessExecutor` it becomes the pool
    initializer (on a persistent executor the warm pool is reused when a
    later ground brings the *same* payload, and recycled — workers
    re-initialized — when it brings a different one); on executors that
    run shards on the *calling thread* (serial and serial-like) it runs
    here, scoped through the initializer's ``scope`` hook when it has
    one so the payload cannot outlive the merge.  It is rejected for
    :class:`~repro.executors.ThreadExecutor`, whose pool threads would
    not see a thread-scoped payload installed here — embed the data in
    the shards instead (in-process, that costs nothing).

    *observer* (when given) is called with each :class:`ShardResult`
    right after it merges — the hook incremental grounding
    (:mod:`repro.psl.delta`) uses to capture per-shard records (atom
    tables, observed groups, folded constants) without a second pass.
    Results stream, so the observer must not retain more than it needs.
    """
    executor = resolve_executor(executor)
    mrf = mrf if mrf is not None else HingeLossMRF()
    stats = GroundingStats()
    ordered = list(shards)

    def merge(results) -> tuple[HingeLossMRF, GroundingStats]:
        for position, result in enumerate(results):
            if result.order != position:
                raise InferenceError(
                    f"shard results arrived out of order: expected {position}, "
                    f"got {result.order}"
                )
            before = (len(mrf.potentials), len(mrf.constraints))
            mrf.add_term_block(result.atoms, result.block)
            stats.observe(result, mrf, before)
            if observer is not None:
                observer(result)
        return mrf, stats

    if initializer is None:
        return merge(executor.map(ground_shard, ordered))
    if isinstance(executor, ProcessExecutor):
        init_fn, init_args = initializer
        return merge(
            executor.map(ground_shard, ordered, initializer=init_fn, initargs=init_args)
        )
    if isinstance(executor, ThreadExecutor):
        raise InferenceError(
            "ground_shards initializer is not supported on a thread "
            "executor (pool threads would not see a thread-scoped "
            "payload); embed the data in the shards instead"
        )
    init_fn, init_args = initializer
    with initializer_scope(init_fn, init_args):
        return merge(executor.map(ground_shard, ordered))


def iter_slices(count: int, shard_size: int | None) -> Iterable[tuple[int, int]]:
    """Split ``range(count)`` into contiguous ``[lo, hi)`` shard ranges."""
    size = shard_size if shard_size and shard_size > 0 else DEFAULT_SHARD_SIZE
    for lo in range(0, count, size):
        yield lo, min(lo + size, count)


def _atom_fingerprint(atom: GroundAtom) -> list:
    """An injective JSON-able rendering of a ground atom.

    ``repr(atom)`` renders arguments via ``str`` and would collide for
    e.g. ``p(1)`` vs ``p("1")``; including each argument's type name and
    ``repr`` keeps distinct atoms distinct in the fingerprint.
    """
    return [
        atom.predicate.name,
        atom.predicate.arity,
        [[type(a).__name__, repr(a)] for a in atom.arguments],
    ]


def mrf_fingerprint(mrf: HingeLossMRF, probe_points: int = 3) -> bytes:
    """A canonical byte serialization of an MRF's full structure.

    Two MRFs fingerprint equally iff their variable order, potentials
    (coefficients, offsets, weights, squaredness — in order), constraints,
    and constant energy agree bit for bit; a few deterministic pseudo-
    random probe energies are included as an end-to-end check.  Used to
    verify that sharded grounding reproduces the serial path exactly.
    """
    rng = np.random.default_rng(20170417)
    probes = []
    for _ in range(probe_points):
        x = rng.random(mrf.num_variables)
        probes.append([float(mrf.energy(x)), float(mrf.max_violation(x))])
    payload = {
        "variables": [_atom_fingerprint(a) for a in mrf.variables],
        "potentials": [
            [list(map(list, p.coefficients)), p.offset, p.weight, p.squared]
            for p in mrf.potentials
        ],
        "constraints": [
            [list(map(list, c.coefficients)), c.offset, c.equality]
            for c in mrf.constraints
        ],
        "constant_energy": mrf.constant_energy,
        "probes": probes,
    }
    return json.dumps(payload, sort_keys=True).encode()


def structure_fingerprint(mrf: HingeLossMRF, probe_points: int = 3) -> bytes:
    """A canonical byte serialization of an MRF's *weight-independent* part.

    The structural twin of :func:`mrf_fingerprint`: variable order,
    potential coefficients/offsets/squaredness, per-potential origin
    group, constraints, and per-group constant hinge masses — everything
    except the mutable weight vector and the weighted constant energy.
    Two groundings of the same program at different (all-nonzero) weight
    settings fingerprint equally here, which is what lets a scenario
    cache key structure separately from weights: equal structure
    fingerprints mean reweight-and-resolve is exact, no re-ground
    needed.  The probe energies use the *unit* (weight-one) hinge masses
    so they, too, are weight-independent.
    """
    rng = np.random.default_rng(20170417)
    probes = []
    for _ in range(probe_points):
        x = rng.random(mrf.num_variables)
        unit = sum(p.unit_value(x) for p in mrf.potentials)
        probes.append([float(unit), float(mrf.max_violation(x))])
    group_render = [repr(key) for key in mrf.group_keys]
    payload = {
        "variables": [_atom_fingerprint(a) for a in mrf.variables],
        "potentials": [
            [list(map(list, p.coefficients)), p.offset, p.squared, int(gid)]
            for p, gid in zip(mrf.potentials, mrf.potential_groups)
        ],
        "constraints": [
            [list(map(list, c.coefficients)), c.offset, c.equality]
            for c in mrf.constraints
        ],
        "groups": group_render,
        "constant_masses": sorted(
            [group_render[gid], mass] for gid, mass in mrf._constant_mass.items()
        ),
        "probes": probes,
    }
    return json.dumps(payload, sort_keys=True).encode()
