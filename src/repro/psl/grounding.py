"""Grounding first-order PSL rules against a database.

Positive body literals drive the enumeration (safe-rule requirement):
substitutions are found by backtracking joins over the atoms the database
knows (observed or target).  Each substitution instantiates the rule into
a :class:`~repro.psl.rule.GroundRule`; trivially satisfied groundings
(hinge provably zero given the observations) are dropped.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import GroundingError
from repro.psl.database import Database
from repro.psl.predicate import GroundAtom
from repro.psl.rule import GroundRule, Literal, Rule, RuleVariable


def _match_literal(
    literal: Literal,
    atom: GroundAtom,
    substitution: dict[RuleVariable, object],
) -> dict[RuleVariable, object] | None:
    """Try to unify *literal* with *atom* under *substitution* (new bindings)."""
    if atom.predicate != literal.predicate:
        return None
    new: dict[RuleVariable, object] = {}
    for term, value in zip(literal.arguments, atom.arguments):
        if isinstance(term, RuleVariable):
            bound = substitution.get(term, new.get(term))
            if bound is None:
                new[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return new


def substitutions(rule: Rule, database: Database) -> Iterator[dict[RuleVariable, object]]:
    """Enumerate all substitutions binding the rule's variables.

    Only *positive* body literals generate bindings; negated body literals
    and head literals must have their variables bound by them.
    """
    positive = [l for l in rule.body if not l.negated]
    other_vars = {
        v
        for l in (*[b for b in rule.body if b.negated], *rule.head)
        for v in l.variables
    }
    positive_vars = {v for l in positive for v in l.variables}
    if not other_vars <= positive_vars:
        raise GroundingError(
            f"rule {rule} is not groundable: variables "
            f"{other_vars - positive_vars} appear only in negated/head literals"
        )

    ordered = sorted(positive, key=lambda l: len(database.atoms_of(l.predicate)))
    seen: set[tuple] = set()

    def extend(index: int, sub: dict[RuleVariable, object]) -> Iterator[dict]:
        if index == len(ordered):
            key = tuple(sorted(((v.name, repr(x)) for v, x in sub.items())))
            if key not in seen:
                seen.add(key)
                yield dict(sub)
            return
        literal = ordered[index]
        # repro-lint: disable=RPL002 -- match order is irrelevant: every
        # substitution is enumerated and ground_rule() sorts canonically.
        for atom in database.atoms_of(literal.predicate):
            new = _match_literal(literal, atom, sub)
            if new is None:
                continue
            sub.update(new)
            yield from extend(index + 1, sub)
            for v in new:
                del sub[v]

    yield from extend(0, {})


def _atom_sort_key(atom: GroundAtom) -> tuple:
    """An injective canonical key for a ground atom.

    ``GroundAtom.__repr__`` renders arguments via ``str``, so e.g.
    ``p(1)`` and ``p("1")`` collide; including the argument type and
    ``repr`` makes the key distinguish every distinct atom.
    """
    return (
        atom.predicate.name,
        atom.predicate.arity,
        tuple((type(a).__name__, repr(a)) for a in atom.arguments),
    )


def _grounding_sort_key(ground: GroundRule) -> tuple:
    return (
        tuple(_atom_sort_key(a) for a in ground.body),
        ground.body_negated,
        tuple(_atom_sort_key(a) for a in ground.head),
        ground.head_negated,
    )


def ground_rule(rule: Rule, database: Database) -> list[GroundRule]:
    """All non-trivial groundings of *rule* against *database*.

    Returned in canonical (injectively key-sorted) order: enumeration
    walks hash-ordered atom sets, so without the sort the grounding
    order — and with it the compiled potential order — would vary with
    the process's hash seed.  Sharded grounding runs rule shards in
    worker processes and merges them against the serial order, so
    grounding order must be reproducible anywhere.
    """
    groundings: list[GroundRule] = []
    for sub in substitutions(rule, database):
        body = tuple(l.ground(sub) for l in rule.body)
        head = tuple(l.ground(sub) for l in rule.head)
        ground = GroundRule(
            rule=rule,
            body=body,
            body_negated=tuple(l.negated for l in rule.body),
            head=head,
            head_negated=tuple(l.negated for l in rule.head),
            weight=rule.weight,
        )
        if not _is_trivially_satisfied(ground, database):
            groundings.append(ground)
    groundings.sort(key=_grounding_sort_key)
    return groundings


def _is_trivially_satisfied(ground: GroundRule, database: Database) -> bool:
    """True iff the hinge is provably 0 for every assignment of the targets.

    The distance to satisfaction is ``max(0, s)`` with
    ``s = sum body - (k-1) - sum head``.  Upper-bounding every target
    contribution by 1 gives a sound triviality test.
    """
    upper = -(len(ground.body) - 1)
    for atom, negated in zip(ground.body, ground.body_negated):
        truth = database.truth(atom)
        if truth is None:
            upper += 1.0
        else:
            upper += (1.0 - truth) if negated else truth
    for atom, negated in zip(ground.head, ground.head_negated):
        truth = database.truth(atom)
        if truth is None:
            upper -= 0.0  # a target head could be 0, contributing nothing
        else:
            upper -= truth if not negated else (1.0 - truth)
    return upper <= 1e-12


def linearize(
    ground: GroundRule, database: Database
) -> tuple[dict[GroundAtom, float], float]:
    """Express the grounding's pre-hinge value as ``sum(coeff*target) + const``.

    Returns (coefficients over target atoms, constant) such that the
    distance to satisfaction is ``max(0, expr)`` (or the constraint
    ``expr <= 0`` for hard rules).
    """
    coefficients: dict[GroundAtom, float] = {}
    constant = -(len(ground.body) - 1)

    def accumulate(atom: GroundAtom, negated: bool, sign: float) -> None:
        nonlocal constant
        truth = database.truth(atom)
        if truth is None:  # target (random variable)
            if negated:
                constant += sign * 1.0
                coefficients[atom] = coefficients.get(atom, 0.0) - sign
            else:
                coefficients[atom] = coefficients.get(atom, 0.0) + sign
        else:
            constant += sign * ((1.0 - truth) if negated else truth)

    for atom, negated in zip(ground.body, ground.body_negated):
        accumulate(atom, negated, +1.0)
    for atom, negated in zip(ground.head, ground.head_negated):
        accumulate(atom, negated, -1.0)
    return coefficients, constant
