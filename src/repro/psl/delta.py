"""Incremental (delta) grounding: re-ground only what changed, splice the rest.

Grounding is the expensive half of every solve, yet a typical edit — a
few tuples observed or retracted between ticks — leaves almost every
grounding shard's output untouched.  This module reuses the compiled
artifact at the *flat-array* level:

* :class:`ShardRecord` captures, per shard of a previous ground, the
  metadata the splice needs (content key, atom table, observed groups,
  folded constants).  Records are built for free at ground time through
  :func:`~repro.psl.sharding.ground_shards`' ``observer`` hook.
* :func:`match_shards` pairs a new shard plan against the old records by
  *content key* (:func:`shard_key`): shards whose work is byte-identical
  are reused, everything else re-grounds.
* :func:`splice_grounding` executes only the fresh shards (on any
  :class:`~repro.executors.MapExecutor`), slices the reused shards' term
  ranges straight out of the old MRF's compiled CSR arrays (dead ranges
  — shards with no match — are simply never copied), remaps variable
  indices through the old→new atom table, and reassembles a
  solve-ready :class:`~repro.psl.hlmrf.HingeLossMRF` via
  :func:`~repro.psl.hlmrf.rebuild_mrf`, pre-seeded compiled arrays
  included.  The result is **fingerprint-identical** to a from-scratch
  ground of the new plan — the bit-identity suite asserts it — because
  reused slices are bit-copies of what re-grounding would rebuild and
  fresh blocks merge by the exact :meth:`~repro.psl.hlmrf.HingeLossMRF.
  add_term_block` rules.
* :class:`IncrementalProgramGrounding` applies the machinery to a
  :class:`~repro.psl.program.PslProgram`: after database edits,
  :meth:`~IncrementalProgramGrounding.refresh` asks the database's
  change journal (:meth:`~repro.psl.database.Database.delta_since`)
  which predicates moved and re-grounds only the rules that mention
  them.

The collective-selection counterpart (coverage/error/prior shards,
cache integration) lives in :mod:`repro.selection.collective` —
:func:`~repro.selection.collective.patch_collective` — on top of the
same splice engine.  See ``docs/incremental.md``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.errors import InferenceError
from repro.executors import (
    MapExecutor,
    ProcessExecutor,
    ThreadExecutor,
    initializer_scope,
    resolve_executor,
)
from repro.psl.database import DatabaseDelta
from repro.psl.hlmrf import (
    KIND_HINGE,
    KIND_SQUARED,
    HingeLossMRF,
    rebuild_mrf,
)
from repro.psl.partition import FlatTermArrays, compile_term_arrays
from repro.psl.predicate import GroundAtom
from repro.psl.sharding import (
    GroundingShard,
    ShardResult,
    ground_shard,
)


@dataclass(frozen=True)
class ShardRecord:
    """What the splice must remember about one shard of a past ground.

    ``key`` is the shard's content key (:func:`shard_key`); ``atoms`` is
    its atom table in intern order, or ``None`` when the producer
    guarantees every atom was already interned before the shard merged
    (true for all collective shards, whose atoms are plan targets).
    ``observed_groups``/``constant_masses``/``constant_energy`` mirror
    the same-named :class:`~repro.psl.sharding.TermBlock` fields — the
    registry contribution replaying this shard would make.
    """

    key: Hashable
    atoms: tuple[GroundAtom, ...] | None
    observed_groups: tuple = ()
    constant_masses: tuple = ()
    constant_energy: float = 0.0


def shard_key(shard: GroundingShard) -> Hashable:
    """A content key: equal keys mean byte-identical shard output.

    Shard classes may provide a ``content_key()`` method (excluding
    ``order`` and anything weight-derived they want normalized away);
    the fallback is the frozen-dataclass value with ``order`` zeroed,
    which is exact for any pure shard.
    """
    method = getattr(shard, "content_key", None)
    if callable(method):
        return method()
    return dataclasses.replace(shard, order=0)


def record_for(shard: GroundingShard, result: ShardResult) -> ShardRecord:
    """The :class:`ShardRecord` of a freshly built shard."""
    return ShardRecord(
        key=shard_key(shard),
        atoms=result.atoms,
        observed_groups=result.block.observed_groups,
        constant_masses=result.block.constant_masses,
        constant_energy=float(result.block.constant_energy),
    )


def match_shards(
    old_records: Sequence[ShardRecord],
    shards: Sequence[GroundingShard],
) -> list[int | None]:
    """Pair new shards with reusable old ones by content key.

    Returns, per new shard, the old shard position whose record it can
    reuse (``None`` → must re-ground).  Matching is multiset-aware: a
    key appearing k times on both sides pairs positionally, so duplicate
    shards never alias one old slice twice.
    """
    available: dict[Hashable, list[int]] = {}
    for position, record in enumerate(old_records):
        available.setdefault(record.key, []).append(position)
    pairing: list[int | None] = []
    for shard in shards:
        candidates = available.get(shard_key(shard))
        pairing.append(candidates.pop(0) if candidates else None)
    return pairing


@dataclass(frozen=True)
class SpliceStats:
    """Counters of one splice: how much was reused vs re-ground."""

    num_shards: int
    reused_shards: int
    fresh_shards: int
    reused_terms: int
    fresh_terms: int

    @property
    def reuse_fraction(self) -> float:
        total = self.reused_terms + self.fresh_terms
        return self.reused_terms / total if total else 1.0


@dataclass(frozen=True)
class SpliceResult:
    """A spliced grounding: the MRF, its new shard records, and stats."""

    mrf: HingeLossMRF
    records: tuple[ShardRecord, ...]
    stats: SpliceStats


def _gather_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s+l)`` index runs, fully vectorized."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts, lens)
    run_lo = np.concatenate(([0], np.cumsum(lens)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(run_lo, lens)
    return base + within


def _old_flat(mrf: HingeLossMRF) -> FlatTermArrays | None:
    """The old MRF's compiled arrays, if they describe its current terms."""
    flat = getattr(mrf, "_compiled", None)
    num_terms = len(mrf.potentials) + len(mrf.constraints)
    if (
        flat is not None
        and flat.num_potentials == len(mrf.potentials)
        and flat.num_terms == num_terms
    ):
        return flat
    try:
        return compile_term_arrays(mrf)
    except (InferenceError, ValueError):  # pragma: no cover - defensive
        return None


class _Segment:
    """Accumulates the potential and constraint array segments of shards."""

    def __init__(self) -> None:
        self.kind: list[np.ndarray] = []
        self.offset: list[np.ndarray] = []
        self.weight: list[np.ndarray] = []
        self.normsq: list[np.ndarray] = []
        self.counts: list[np.ndarray] = []
        self.var: list[np.ndarray] = []
        self.coeff: list[np.ndarray] = []

    def concatenated(self) -> dict[str, np.ndarray]:
        return {
            "kind": _concat(self.kind, np.int64),
            "offset": _concat(self.offset, np.float64),
            "weight": _concat(self.weight, np.float64),
            "normsq": _concat(self.normsq, np.float64),
            "counts": _concat(self.counts, np.int64),
            "var": _concat(self.var, np.int64),
            "coeff": _concat(self.coeff, np.float64),
        }


def _concat(parts: list[np.ndarray], dtype) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate([np.asarray(p, dtype=dtype) for p in parts])


def map_fresh_shards(
    shards: Sequence[GroundingShard],
    executor: MapExecutor | str | None,
    initializer: tuple[Callable[..., None], tuple] | None = None,
):
    """Build *shards* through *executor*, honouring the initializer hook.

    The same dispatch contract as :func:`~repro.psl.sharding.
    ground_shards`: pool initializer on a process executor, scoped
    in-process run otherwise, rejected on a thread executor.
    """
    executor = resolve_executor(executor)
    if initializer is None:
        return executor.map(ground_shard, list(shards))
    if isinstance(executor, ProcessExecutor):
        init_fn, init_args = initializer
        return executor.map(
            ground_shard, list(shards), initializer=init_fn, initargs=init_args
        )
    if isinstance(executor, ThreadExecutor):
        raise InferenceError(
            "incremental grounding initializer is not supported on a "
            "thread executor; embed the data in the shards instead"
        )
    init_fn, init_args = initializer
    with initializer_scope(init_fn, init_args):
        return list(executor.map(ground_shard, list(shards)))


def splice_grounding(
    old_mrf: HingeLossMRF,
    old_records: Sequence[ShardRecord],
    shards: Sequence[GroundingShard],
    reuse: Sequence[int | None],
    targets: Sequence[GroundAtom],
    executor: MapExecutor | str | None = None,
    initializer: tuple[Callable[..., None], tuple] | None = None,
    group_weights: Mapping[Hashable, float] | None = None,
    member_weights: Mapping[Hashable, Sequence[float]] | None = None,
) -> SpliceResult | None:
    """Splice reused shard ranges and freshly ground shards into one MRF.

    *shards* is the **new** plan's full shard list (spec order);
    ``reuse[i]`` names the old shard position whose compiled term range
    shard *i* can reuse, or ``None`` to re-ground it (see
    :func:`match_shards`).  *targets* pins the head of the variable
    table (the plan's target atoms in order); atoms introduced by shard
    tables extend it in shard order, exactly as a fresh merge would.
    Old term ranges not claimed by any new shard are dead: their rows
    are never copied (the mask-out half of the splice), while fresh
    blocks are stable-partitioned into the potentials-then-constraints
    flat order (the append half).

    *group_weights* / *member_weights* rewrite the weight column (and
    rescale group-folded constants) during reassembly — the hook the
    collective patch path uses to land directly at the request's
    weights.  Uniform per-group values via *group_weights*; per-member
    vectors (append order) via *member_weights*.

    Returns ``None`` whenever the splice cannot be performed exactly —
    misaligned extents, a reused shard referencing a variable that no
    longer exists, a weight rewrite that would change structure — in
    which case the caller falls back to a full re-ground.  Never
    returns a wrong MRF: every failure mode is detected, not papered
    over.
    """
    extents = old_mrf._block_extents
    if len(extents) != len(old_records) or len(reuse) != len(shards):
        return None
    flat = _old_flat(old_mrf)
    if flat is None:
        return None
    old_pot = flat.num_potentials
    old_counts = np.diff(flat.term_ptr)
    old_pot_weights = np.asarray(old_mrf._pot_weights, dtype=np.float64)
    old_groups = np.asarray(old_mrf.potential_groups, dtype=np.int64)

    # -- re-ground only the fresh shards ----------------------------------
    fresh_positions = [i for i, source in enumerate(reuse) if source is None]
    fresh_results: dict[int, ShardResult] = {}
    if fresh_positions:
        built = map_fresh_shards(
            [shards[i] for i in fresh_positions], executor, initializer
        )
        for position, result in zip(fresh_positions, built):
            fresh_results[position] = result

    # -- variable table: pinned targets, then shard-introduced atoms ------
    variables: list[GroundAtom] = list(targets)
    var_index: dict[GroundAtom, int] = {}
    for i, atom in enumerate(variables):
        var_index.setdefault(atom, i)
    if len(var_index) != len(variables):
        return None  # duplicate targets would desync the table
    for position in range(len(shards)):
        source = reuse[position]
        if source is None:
            atoms = fresh_results[position].atoms
        else:
            atoms = old_records[source].atoms
            if atoms is None:
                continue  # producer guarantees no new atoms
        for atom in atoms:
            if atom not in var_index:
                var_index[atom] = len(variables)
                variables.append(atom)

    # Old variable index -> new variable index (-1 = no longer present).
    old_to_new = np.full(len(old_mrf.variables), -1, dtype=np.int64)
    for i, atom in enumerate(old_mrf.variables):
        j = var_index.get(atom)
        if j is not None:
            old_to_new[i] = j

    # -- origin-group registry, interned in new shard order ---------------
    group_ids: dict[Hashable, int] = {}
    group_keys: list[Hashable] = []
    zero_dropped: set[int] = set()
    constant_mass: dict[int, float] = {}
    constant_weighted: dict[int, float] = {}
    constant_energy = 0.0

    def intern_group(key: Hashable) -> int:
        gid = group_ids.get(key)
        if gid is None:
            gid = len(group_keys)
            group_ids[key] = gid
            group_keys.append(key)
        return gid

    for position in range(len(shards)):
        source = reuse[position]
        if source is None:
            block = fresh_results[position].block
            observed, masses, energy = (
                block.observed_groups,
                block.constant_masses,
                block.constant_energy,
            )
        else:
            record = old_records[source]
            observed, masses, energy = (
                record.observed_groups,
                record.constant_masses,
                record.constant_energy,
            )
        for key, flagged in observed:
            gid = intern_group(key)
            if flagged:
                zero_dropped.add(gid)
        for key, mass, weighted in masses:
            gid = intern_group(key)
            if mass:
                constant_mass[gid] = constant_mass.get(gid, 0.0) + mass
                constant_weighted[gid] = constant_weighted.get(gid, 0.0) + weighted
        constant_energy += energy

    # Old group id -> new group id (-2 = key unknown to the new registry).
    old_gid_map = np.full(len(old_mrf.group_keys) + 1, -1, dtype=np.int64)
    for gid, key in enumerate(old_mrf.group_keys):
        old_gid_map[gid + 1] = group_ids.get(key, -2)

    # -- assemble the flat arrays, shard by shard -------------------------
    pot_seg = _Segment()
    con_seg = _Segment()
    group_parts: list[np.ndarray] = []
    new_extents: list[tuple[int, int, int, int]] = []
    pot_count = con_count = 0
    reused_terms = fresh_terms = 0

    for position, shard in enumerate(shards):
        source = reuse[position]
        if source is not None:
            pot_lo, pot_hi, con_lo, con_hi = extents[source]
            pot_rows = slice(pot_lo, pot_hi)
            con_rows = slice(old_pot + con_lo, old_pot + con_hi)
            for rows, seg, is_pot in ((pot_rows, pot_seg, True), (con_rows, con_seg, False)):
                seg.kind.append(flat.kind[rows])
                seg.offset.append(flat.offset[rows])
                seg.normsq.append(flat.normsq[rows])
                seg.counts.append(old_counts[rows])
                copy_rows = slice(
                    int(flat.term_ptr[rows.start]), int(flat.term_ptr[rows.stop])
                )
                remapped = old_to_new[flat.var[copy_rows]]
                if remapped.size and remapped.min() < 0:
                    return None  # reused shard references a retracted atom
                seg.var.append(remapped)
                seg.coeff.append(flat.coeff[copy_rows])
                if is_pot:
                    seg.weight.append(old_pot_weights[rows])
                else:
                    seg.weight.append(np.zeros(rows.stop - rows.start))
            mapped_groups = old_gid_map[old_groups[pot_rows] + 1]
            if mapped_groups.size and mapped_groups.min() < -1:
                return None  # group key vanished from the registry
            group_parts.append(mapped_groups)
            n_pot, n_con = pot_hi - pot_lo, con_hi - con_lo
            reused_terms += n_pot + n_con
        else:
            result = fresh_results[position]
            block = result.block
            kinds = np.asarray(block.kinds, dtype=np.int64)
            is_pot = (kinds == KIND_HINGE) | (kinds == KIND_SQUARED)
            counts = np.diff(block.term_ptr)
            local_map = np.fromiter(
                (var_index[a] for a in result.atoms),
                dtype=np.int64,
                count=len(result.atoms),
            )
            for mask, seg, want_pot in ((is_pot, pot_seg, True), (~is_pot, con_seg, False)):
                sel = np.flatnonzero(mask)
                seg.kind.append(kinds[sel])
                seg.offset.append(block.offsets[sel])
                seg.counts.append(counts[sel])
                gathered = _gather_ranges(block.term_ptr[sel], counts[sel])
                sel_var = (
                    local_map[block.atom_index[gathered]]
                    if gathered.size
                    else np.empty(0, dtype=np.int64)
                )
                sel_coeff = block.coefficient[gathered]
                seg.var.append(sel_var)
                seg.coeff.append(sel_coeff)
                local_term = np.repeat(
                    np.arange(len(sel), dtype=np.int64), counts[sel]
                )
                seg.normsq.append(
                    np.maximum(
                        np.bincount(
                            local_term, weights=sel_coeff**2, minlength=len(sel)
                        ),
                        1e-12,
                    )
                )
                if want_pot:
                    seg.weight.append(block.weights[sel])
                else:
                    seg.weight.append(np.zeros(len(sel)))
            sel_pot = np.flatnonzero(is_pot)
            if block.groups is None:
                mapped_groups = np.full(len(sel_pot), -1, dtype=np.int64)
            else:
                mapped_groups = np.fromiter(
                    (
                        -1 if block.groups[t] is None else group_ids[block.groups[t]]
                        for t in sel_pot
                    ),
                    dtype=np.int64,
                    count=len(sel_pot),
                )
            group_parts.append(mapped_groups)
            n_pot = int(is_pot.sum())
            n_con = len(kinds) - n_pot
            fresh_terms += n_pot + n_con
        new_extents.append((pot_count, pot_count + n_pot, con_count, con_count + n_con))
        pot_count += n_pot
        con_count += n_con

    pot = pot_seg.concatenated()
    con = con_seg.concatenated()
    kind = np.concatenate([pot["kind"], con["kind"]])
    offset = np.concatenate([pot["offset"], con["offset"]])
    weight = np.concatenate([pot["weight"], con["weight"]])
    normsq = np.concatenate([pot["normsq"], con["normsq"]])
    counts = np.concatenate([pot["counts"], con["counts"]])
    var = np.concatenate([pot["var"], con["var"]])
    coeff = np.concatenate([pot["coeff"], con["coeff"]])
    groups_arr = _concat(group_parts, np.int64)

    # -- optional weight rewrite (the reweight-at-splice-time hook) -------
    if group_weights:
        for key, value in group_weights.items():
            gid = group_ids.get(key)
            if gid is None:
                continue
            value = float(value)
            members = np.flatnonzero(groups_arr == gid)
            if value == 0.0 and members.size:
                return None  # zeroing live potentials changes structure
            if value != 0.0 and gid in zero_dropped:
                return None  # dropped structure cannot be reweighted back
            weight[members] = value
            mass = constant_mass.get(gid)
            if mass:
                rescaled = mass * value
                constant_energy += rescaled - constant_weighted.get(gid, 0.0)
                constant_weighted[gid] = rescaled
    if member_weights:
        for key, values in member_weights.items():
            gid = group_ids.get(key)
            if gid is None:
                if len(values):
                    return None
                continue
            members = np.flatnonzero(groups_arr == gid)
            values = np.asarray(values, dtype=np.float64)
            if len(values) != members.size or (values == 0.0).any():
                return None
            weight[members] = values

    term_ptr = np.zeros(len(kind) + 1, dtype=np.int64)
    np.cumsum(counts, out=term_ptr[1:])
    term = np.repeat(np.arange(len(kind), dtype=np.int64), counts)
    degree = np.maximum(
        np.bincount(var, minlength=len(variables)).astype(np.float64), 1.0
    )

    mrf = rebuild_mrf(
        variables,
        kind=kind,
        offset=offset,
        weight=weight,
        term_ptr=term_ptr,
        var=var,
        coeff=coeff,
        num_potentials=pot_count,
        potential_groups=groups_arr,
        group_keys=group_keys,
        zero_dropped=zero_dropped,
        constant_mass=constant_mass,
        constant_weighted=constant_weighted,
        constant_energy=constant_energy,
        block_extents=new_extents,
    )
    mrf._compiled = FlatTermArrays(
        num_variables=len(variables),
        num_potentials=pot_count,
        kind=kind,
        offset=offset,
        weight=weight,
        normsq=normsq,
        term_ptr=term_ptr,
        var=var,
        term=term,
        coeff=coeff,
        degree=degree,
    )

    records = tuple(
        old_records[reuse[i]]
        if reuse[i] is not None
        else record_for(shards[i], fresh_results[i])
        for i in range(len(shards))
    )
    stats = SpliceStats(
        num_shards=len(shards),
        reused_shards=len(shards) - len(fresh_positions),
        fresh_shards=len(fresh_positions),
        reused_terms=reused_terms,
        fresh_terms=fresh_terms,
    )
    return SpliceResult(mrf=mrf, records=records, stats=stats)


class IncrementalProgramGrounding:
    """Ground a :class:`~repro.psl.program.PslProgram` once, then patch.

    Wraps a program and keeps the grounded MRF plus per-shard records.
    After database edits, :meth:`refresh` consults the change journal:
    only rule shards whose predicates intersect the delta's touched
    atoms (plus shards whose specs changed — new weights, new raw
    terms) are re-ground; everything else splices.  When the journal
    cannot answer (foreign token, truncated history) the refresh
    degrades to a full re-ground — never wrong, at worst slow.
    """

    def __init__(
        self,
        program,
        weight_overrides: Mapping | None = None,
        executor: MapExecutor | str | None = None,
        shard_size: int | None = None,
    ):
        self.program = program
        self.weight_overrides = dict(weight_overrides or {})
        self.executor = executor
        self.shard_size = shard_size
        self.mrf: HingeLossMRF | None = None
        self.records: tuple[ShardRecord, ...] = ()
        self.splice_stats: SpliceStats | None = None
        self.full_grounds = 0
        self.patched_grounds = 0
        self._token: object = None
        self.refresh()

    def _shards(self, embed_database: bool) -> list[GroundingShard]:
        return self.program.grounding_shards(
            self.weight_overrides, self.shard_size, embed_database=embed_database
        )

    def _full_ground(self) -> HingeLossMRF:
        # Spec list used only as the key source — grounding_shards is
        # deterministic, so it matches the shards ground_sharded builds.
        spec = self._shards(embed_database=True)
        records: list[ShardRecord] = []

        def observe(result: ShardResult) -> None:
            records.append(record_for(spec[result.order], result))

        mrf, _ = self.program.ground_sharded(
            self.weight_overrides,
            executor=self.executor,
            shard_size=self.shard_size,
            observer=observe,
        )
        mrf._compiled = compile_term_arrays(mrf)
        self.records = tuple(records)
        self.splice_stats = None
        self.full_grounds += 1
        return mrf

    def _touched(self, shard, delta: DatabaseDelta) -> bool:
        """Whether *shard*'s output may differ under *delta*."""
        rule = getattr(shard, "rule", None)
        if rule is None:
            return False  # raw shards are database-independent
        touched = delta.predicates
        for literal in (*rule.body, *rule.head):
            if literal.predicate in touched:
                return True
        return False

    def refresh(self) -> HingeLossMRF:
        """Re-sync the MRF with the program's database; returns the MRF."""
        database = self.program.database
        token = database.state_token()
        if self.mrf is None:
            self.mrf = self._full_ground()
            self._token = token
            return self.mrf
        if token == self._token:
            return self.mrf
        delta = database.delta_since(self._token)
        result = self._patch(delta) if delta is not None else None
        if result is None:
            self.mrf = self._full_ground()
        else:
            self.mrf = result.mrf
            self.records = result.records
            self.splice_stats = result.stats
            self.patched_grounds += 1
        self._token = token
        return self.mrf

    def _patch(self, delta: DatabaseDelta) -> SpliceResult | None:
        from repro.psl.program import install_shared_database, shared_database

        executor = resolve_executor(self.executor)
        strip = isinstance(executor, ProcessExecutor)
        shards = self._shards(embed_database=not strip)
        if len(shards) != len(self.records):
            return None  # program structure changed: full re-ground
        reuse: list[int | None] = [
            None
            if self._touched(shard, delta) or shard_key(shard) != self.records[i].key
            else i
            for i, shard in enumerate(shards)
        ]
        targets = self.program.database.targets_in_order
        if not strip:
            return splice_grounding(
                self.mrf, self.records, shards, reuse, targets, executor
            )
        with shared_database(self.program.database):
            return splice_grounding(
                self.mrf,
                self.records,
                shards,
                reuse,
                targets,
                executor,
                initializer=(install_shared_database, (self.program.database,)),
            )
