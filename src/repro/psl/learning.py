"""Rule-weight learning for PSL programs (structured perceptron).

Given a program and ground-truth values for its target atoms, learn the
weights of the soft rules so MAP inference reproduces the truth.  The
energy is linear in the weights::

    E_w(y) = sum_r  w_r * Phi_r(y),   Phi_r(y) = total (unweighted)
                                      distance-to-satisfaction of rule
                                      r's groundings at assignment y

so the perceptron update applies directly: whenever the MAP state y^
has lower energy than the truth y*, move the weights to make the truth
comparatively cheaper::

    w_r  <-  max(floor,  w_r + lr * (Phi_r(y^) - Phi_r(y*)))

This mirrors the maximum-likelihood / large-margin learning of the PSL
system, substituting MAP inference for expectation computation (the
standard "MPE approximation" the PSL literature itself uses).

Because the energy is linear in the weights, the ground structure is
*invariant* across weight updates (as long as no weight crosses zero —
the ``floor`` guarantees that).  Learning therefore grounds **once** per
call into a :class:`~repro.psl.program.GroundedProgram` and then only
rewrites weights in place between epochs: the MAP solve reuses one
compiled ADMM partition and Phi comes from the grounded artifact's
recorded origin groups, not a fresh grounding.  The historical
implementation re-ground three times per epoch (once for the solve, once
per ``rule_features`` call); results here are bit-identical to that
path, just without the grounding work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import InferenceError
from repro.psl.admm import AdmmSettings
from repro.psl.predicate import GroundAtom
from repro.psl.program import GroundedProgram, PslProgram
from repro.psl.rule import Rule


def rule_features(
    program: PslProgram,
    assignment: Mapping[GroundAtom, float],
    weight_overrides: Mapping[Rule, float] | None = None,
    grounded: GroundedProgram | None = None,
) -> dict[Rule, float]:
    """Phi_r: per-rule unweighted hinge mass at *assignment*.

    *assignment* must cover every target atom; observed atoms contribute
    through the grounding constants.  Pass *grounded* (a
    :meth:`~repro.psl.program.PslProgram.ground_program` artifact) to
    read the features off an existing grounding; otherwise the program
    is ground once for this call.
    """
    if grounded is None:
        grounded = program.ground_program(weight_overrides)
    return grounded.rule_features(assignment)


@dataclass
class RuleLearningResult:
    """Learned per-rule weights plus the per-epoch energy gaps."""

    weights: dict[Rule, float]
    energy_gaps: list[float]  # E(truth) - E(prediction) per epoch (>0 = mistake)

    @property
    def converged(self) -> bool:
        return bool(self.energy_gaps) and self.energy_gaps[-1] <= 1e-6


def learn_rule_weights(
    program: PslProgram,
    truth: Mapping[GroundAtom, float],
    epochs: int = 20,
    learning_rate: float = 0.5,
    floor: float = 0.01,
    admm: AdmmSettings | None = None,
) -> RuleLearningResult:
    """Perceptron over the program's soft-rule weights.

    *truth* assigns every target atom its desired value.  Hard rules and
    raw potentials are left untouched.  The program is ground exactly
    once (``program.grounding_count`` moves by one); every epoch then
    reweights the grounded artifact in place and re-solves on the same
    compiled partition.
    """
    if floor <= 0:
        raise InferenceError(
            f"floor must be positive (got {floor}): a weight reaching zero "
            "would change the ground structure, which the ground-once "
            "learning loop holds fixed"
        )
    soft_rules = [r for r in program.rules if not r.is_hard]
    weights: dict[Rule, float] = {r: float(r.weight) for r in soft_rules}
    energy_gaps: list[float] = []

    with program.ground_program(weights, settings=admm) as grounded:
        mrf = grounded.mrf
        for _ in range(epochs):
            grounded.set_rule_weights(weights)
            solved = grounded.solve()
            prediction = {
                atom: float(solved.x[mrf.index_of(atom)])
                for atom in program.database.targets_in_order
            }
            phi_prediction = grounded.rule_features(prediction)
            phi_truth = grounded.rule_features(truth)
            energy_prediction = sum(
                weights[r] * phi_prediction.get(r, 0.0) for r in soft_rules
            )
            energy_truth = sum(weights[r] * phi_truth.get(r, 0.0) for r in soft_rules)
            gap = energy_truth - energy_prediction
            energy_gaps.append(gap)
            if gap <= 1e-6:
                break
            for r in soft_rules:
                delta = phi_prediction.get(r, 0.0) - phi_truth.get(r, 0.0)
                weights[r] = max(floor, weights[r] + learning_rate * delta)

    return RuleLearningResult(weights, energy_gaps)
