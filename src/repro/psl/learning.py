"""Rule-weight learning for PSL programs (structured perceptron).

Given a program and ground-truth values for its target atoms, learn the
weights of the soft rules so MAP inference reproduces the truth.  The
energy is linear in the weights::

    E_w(y) = sum_r  w_r * Phi_r(y),   Phi_r(y) = total (unweighted)
                                      distance-to-satisfaction of rule
                                      r's groundings at assignment y

so the perceptron update applies directly: whenever the MAP state y^
has lower energy than the truth y*, move the weights to make the truth
comparatively cheaper::

    w_r  <-  max(floor,  w_r + lr * (Phi_r(y^) - Phi_r(y*)))

This mirrors the maximum-likelihood / large-margin learning of the PSL
system, substituting MAP inference for expectation computation (the
standard "MPE approximation" the PSL literature itself uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import InferenceError
from repro.psl.admm import AdmmSettings, AdmmSolver
from repro.psl.predicate import GroundAtom
from repro.psl.program import PslProgram
from repro.psl.rule import Rule


def rule_features(
    program: PslProgram,
    assignment: Mapping[GroundAtom, float],
    weight_overrides: Mapping[Rule, float] | None = None,
) -> dict[Rule, float]:
    """Phi_r: per-rule unweighted hinge mass at *assignment*.

    *assignment* must cover every target atom; observed atoms contribute
    through the grounding constants.
    """
    mrf, origins = program.ground_with_origins(weight_overrides)
    x = np.empty(mrf.num_variables)
    for atom in program.database.targets:
        try:
            x[mrf.index_of(atom)] = assignment[atom]
        except KeyError:
            raise InferenceError(f"assignment missing target atom {atom}") from None
    features: dict[Rule, float] = {}
    for potential, origin in zip(mrf.potentials, origins):
        if origin is None:
            continue
        weighted = potential.value(x)
        features[origin] = features.get(origin, 0.0) + (
            weighted / potential.weight if potential.weight > 0 else 0.0
        )
    return features


@dataclass
class RuleLearningResult:
    """Learned per-rule weights plus the per-epoch energy gaps."""

    weights: dict[Rule, float]
    energy_gaps: list[float]  # E(truth) - E(prediction) per epoch (>0 = mistake)

    @property
    def converged(self) -> bool:
        return bool(self.energy_gaps) and self.energy_gaps[-1] <= 1e-6


def learn_rule_weights(
    program: PslProgram,
    truth: Mapping[GroundAtom, float],
    epochs: int = 20,
    learning_rate: float = 0.5,
    floor: float = 0.01,
    admm: AdmmSettings | None = None,
) -> RuleLearningResult:
    """Perceptron over the program's soft-rule weights.

    *truth* assigns every target atom its desired value.  Hard rules and
    raw potentials are left untouched.
    """
    soft_rules = [r for r in program.rules if not r.is_hard]
    weights: dict[Rule, float] = {r: float(r.weight) for r in soft_rules}
    energy_gaps: list[float] = []

    for _ in range(epochs):
        mrf, origins = program.ground_with_origins(weights)
        solved = AdmmSolver(mrf, admm).solve()
        prediction = {
            atom: float(solved.x[mrf.index_of(atom)])
            for atom in program.database.targets
        }
        phi_prediction = rule_features(program, prediction, weights)
        phi_truth = rule_features(program, truth, weights)
        energy_prediction = sum(
            weights[r] * phi_prediction.get(r, 0.0) for r in soft_rules
        )
        energy_truth = sum(weights[r] * phi_truth.get(r, 0.0) for r in soft_rules)
        gap = energy_truth - energy_prediction
        energy_gaps.append(gap)
        if gap <= 1e-6:
            break
        for r in soft_rules:
            delta = phi_prediction.get(r, 0.0) - phi_truth.get(r, 0.0)
            weights[r] = max(floor, weights[r] + learning_rate * delta)

    return RuleLearningResult(weights, energy_gaps)
