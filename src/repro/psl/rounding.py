"""Recovering discrete solutions from fractional MAP assignments.

HL-MRF inference yields values in [0,1]; mapping selection needs a crisp
subset.  :func:`round_solution` combines the two standard schemes:

* **threshold sweep** — try every cut point induced by the fractional
  values and keep the best subset under the *exact* discrete objective;
* **greedy 1-flip local search** — starting from the sweep's winner, flip
  single memberships while any flip improves the discrete objective.

Both only query a caller-supplied ``objective(frozenset) -> value``
callback, so the rounding is reusable for any binary-selection program.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, TypeVar

Item = TypeVar("Item", bound=Hashable)


def threshold_sweep(
    fractional: Mapping[Item, float],
    objective: Callable[[frozenset], object],
) -> frozenset:
    """Best prefix of items sorted by descending fractional value."""
    ranked = sorted(fractional, key=lambda i: (-fractional[i], repr(i)))
    best: frozenset = frozenset()
    best_value = objective(best)
    chosen: set[Item] = set()
    for item in ranked:
        chosen.add(item)
        value = objective(frozenset(chosen))
        if value < best_value:
            best_value = value
            best = frozenset(chosen)
    return best


def local_search(
    start: frozenset,
    universe: Mapping[Item, float],
    objective: Callable[[frozenset], object],
    max_rounds: int = 20,
) -> frozenset:
    """Greedy 1-flip improvement from *start* (first-improvement order)."""
    current = set(start)
    current_value = objective(frozenset(current))
    for _ in range(max_rounds):
        improved = False
        for item in sorted(universe, key=repr):
            flipped = set(current)
            if item in flipped:
                flipped.remove(item)
            else:
                flipped.add(item)
            value = objective(frozenset(flipped))
            if value < current_value:
                current, current_value = flipped, value
                improved = True
        if not improved:
            break
    return frozenset(current)


def randomized_rounding(
    fractional: Mapping[Item, float],
    objective: Callable[[frozenset], object],
    trials: int = 32,
    seed: int = 0,
) -> frozenset:
    """Sample subsets with membership probability = fractional value.

    The classic LP-rounding scheme: each trial includes item i with
    probability ``fractional[i]``; the best-scoring sample (including the
    deterministic all-or-nothing extremes) is returned.
    """
    import random

    rng = random.Random(seed)
    items = sorted(fractional, key=repr)
    best: frozenset = frozenset(i for i in items if fractional[i] >= 0.5)
    best_value = objective(best)
    for candidate in (frozenset(), frozenset(items)):
        value = objective(candidate)
        if value < best_value:
            best, best_value = candidate, value
    for _ in range(trials):
        sample = frozenset(i for i in items if rng.random() < fractional[i])
        value = objective(sample)
        if value < best_value:
            best, best_value = sample, value
    return best


def round_solution(
    fractional: Mapping[Item, float],
    objective: Callable[[frozenset], object],
    with_local_search: bool = True,
) -> frozenset:
    """Threshold sweep followed by optional 1-flip local search."""
    best = threshold_sweep(fractional, objective)
    if with_local_search:
        best = local_search(best, fractional, objective)
    return best
