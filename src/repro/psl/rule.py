"""First-order PSL rules with Lukasiewicz semantics.

A rule ``w : B1 & ... & Bk -> H1 | ... | Hm`` has distance to
satisfaction::

    max(0,  sum_i I(Bi) - (k - 1)  -  sum_j I(Hj))

under the Lukasiewicz relaxation, where negated literals contribute
``1 - I(a)``.  Weighted rules become hinge-loss potentials (optionally
squared); rules with ``weight=None`` are hard constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import GroundingError
from repro.psl.predicate import GroundAtom, Predicate


@dataclass(frozen=True, slots=True)
class RuleVariable:
    """A logical variable inside a rule literal (distinct from PSL atoms)."""

    name: str

    def __repr__(self) -> str:
        return self.name


def V(name: str) -> RuleVariable:  # noqa: N802 - conventional constructor name
    """Shorthand constructor for a rule variable."""
    return RuleVariable(name)


@dataclass(frozen=True, slots=True)
class Literal:
    """A possibly negated predicate applied to variables and/or constants."""

    predicate: Predicate
    arguments: tuple[object, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        if len(self.arguments) != self.predicate.arity:
            raise GroundingError(
                f"literal {self.predicate.name} expects {self.predicate.arity} "
                f"arguments, got {len(self.arguments)}"
            )

    @property
    def variables(self) -> tuple[RuleVariable, ...]:
        return tuple(a for a in self.arguments if isinstance(a, RuleVariable))

    def ground(self, substitution: Mapping[RuleVariable, object]) -> GroundAtom:
        """Instantiate under *substitution* (must bind all variables)."""
        args = []
        for a in self.arguments:
            if isinstance(a, RuleVariable):
                if a not in substitution:
                    raise GroundingError(f"unbound variable {a} in literal {self}")
                args.append(substitution[a])
            else:
                args.append(a)
        return GroundAtom(self.predicate, tuple(args))

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self.arguments)
        prefix = "~" if self.negated else ""
        return f"{prefix}{self.predicate.name}({inner})"


def lit(predicate: Predicate, *args: object, negated: bool = False) -> Literal:
    """Convenience constructor using the parser's variable convention.

    Strings starting with an uppercase letter or underscore become rule
    variables; every other argument is a constant.  ``lit(Friend, "X",
    "bob")`` has variable X and constant ``"bob"``.  Pass
    :class:`RuleVariable` explicitly to override.
    """
    wrapped = tuple(
        RuleVariable(a)
        if isinstance(a, str) and a and (a[0].isupper() or a[0] == "_")
        else a
        for a in args
    )
    return Literal(predicate, wrapped, negated)


def neg(literal: Literal) -> Literal:
    """The negation of *literal*."""
    return Literal(literal.predicate, literal.arguments, not literal.negated)


@dataclass(frozen=True)
class Rule:
    """A weighted (or hard, if ``weight is None``) first-order rule.

    ``weight_argument`` optionally names a body-literal position whose
    *observed truth value* scales the grounding's weight — PSL's idiom for
    per-grounding weights (used here for the size prior).
    """

    body: tuple[Literal, ...]
    head: tuple[Literal, ...]
    weight: float | None = 1.0
    squared: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if not self.body and not self.head:
            raise GroundingError("rule must have at least one literal")
        if self.weight is not None and self.weight < 0:
            raise GroundingError(f"rule weight must be non-negative, got {self.weight}")
        head_vars = {v for l in self.head for v in l.variables}
        body_vars = {v for l in self.body for v in l.variables}
        if not head_vars <= body_vars:
            raise GroundingError(
                f"unsafe rule {self}: head variables {head_vars - body_vars} "
                f"not bound in body"
            )

    @property
    def is_hard(self) -> bool:
        return self.weight is None

    def __repr__(self) -> str:
        body = " & ".join(repr(l) for l in self.body) or "true"
        head = " | ".join(repr(l) for l in self.head) or "false"
        w = "." if self.is_hard else f"{self.weight}{'^2' if self.squared else ''}"
        label = f"{self.name}: " if self.name else ""
        return f"{label}[{w}] {body} -> {head}"


@dataclass(frozen=True)
class GroundRule:
    """A rule instantiated with ground atoms (pre-potential form)."""

    rule: Rule
    body: tuple[GroundAtom, ...]
    body_negated: tuple[bool, ...]
    head: tuple[GroundAtom, ...]
    head_negated: tuple[bool, ...]
    weight: float | None

    def __repr__(self) -> str:
        body = " & ".join(
            ("~" if n else "") + repr(a) for a, n in zip(self.body, self.body_negated)
        )
        head = " | ".join(
            ("~" if n else "") + repr(a) for a, n in zip(self.head, self.head_negated)
        )
        return f"{body} -> {head}"


@dataclass
class LinearConstraintSpec:
    """A raw arithmetic constraint  sum(coeff * atom) + offset (<=|==) 0.

    PSL's arithmetic rules compile to these; programs may also add them
    directly (the selection model's coverage caps do).
    """

    coefficients: dict[GroundAtom, float] = field(default_factory=dict)
    offset: float = 0.0
    equality: bool = False
