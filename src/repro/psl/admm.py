"""Consensus ADMM for HL-MRF MAP inference, partitioned by term blocks.

Follows the algorithm of Bach et al. (JMLR 2017): every potential and
hard constraint becomes a subproblem holding local copies of its
variables; a consensus vector z (clipped to [0,1]) ties the copies
together.  Every subproblem's minimizer has the closed form
``x = v - lambda * a`` for a per-term scalar ``lambda``, so one ADMM
iteration is a handful of vectorized segment operations — no generic QP
solver needed.

Term kinds:
    linear hinge   w*max(0, a^T x + b)      lambda in {0, w/rho, d/||a||^2}
    squared hinge  w*max(0, a^T x + b)^2    lambda = 2*w*s/rho
    hard <=        project onto halfspace   lambda = max(0, d)/||a||^2
    hard ==        project onto hyperplane  lambda = d/||a||^2

The local x-update is independent per term, so the solver runs it per
*block* of the :class:`~repro.psl.partition.TermPartition` compiled from
the MRF: by default the shard structure recorded at grounding time
(:meth:`~repro.psl.hlmrf.HingeLossMRF.term_partition`), optionally
re-chunked via :attr:`AdmmSettings.block_size`.  Blocks map through any
order-preserving :class:`~repro.executors.MapExecutor`
(:attr:`AdmmSettings.executor`); the consensus and dual steps
scatter-gather across the blocks' disjoint copy slices.  Because blocks
tile the flat term order, the solve is numerically identical (same
iterates, residuals, energy) for every block size and executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.executors import (
    MapExecutor,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.psl.hlmrf import HingeLossMRF
from repro.psl.partition import (
    SharedPartitionBuffers,
    SharedSolveState,
    TermPartition,
    apply_block_x_update,
    apply_shared_solve_update,
    block_x_update,
    build_partition,
)


@dataclass
class AdmmSettings:
    """Solver knobs; the defaults suit the paper's problem sizes.

    ``executor`` selects where the per-block local x-updates run —
    ``None``/``"serial"`` (default), ``"thread[:N]"`` (in-process
    parallelism: blocks share the consensus state in memory and the
    numpy-heavy steps release the GIL), or ``"process[:N]"``
    (multi-core parallelism: a *persistent* worker pool reused across
    the per-iteration maps, with the block CSR arrays *and* the live
    consensus state placed once in ``multiprocessing.shared_memory`` so
    each iteration ships only O(num_blocks) bytes of
    ``(name, index, rho, generation)`` payloads — equivalence-tested
    bit-identical to serial).  Use string specs when the settings
    object must stay picklable inside engine work units.  ``block_size``
    overrides the grounding-recorded partition with uniform runs of that
    many terms; ``None`` keeps the shard structure the MRF carries.
    Neither knob changes any iterate — only where and in what chunks the
    arithmetic happens.
    """

    rho: float = 1.0
    max_iterations: int = 5000
    epsilon_abs: float = 1e-5
    epsilon_rel: float = 1e-4
    check_every: int = 10
    executor: MapExecutor | str | None = None
    block_size: int | None = None

    def validate(self) -> None:
        """Reject settings that would crash or loop forever mid-solve.

        Checked at solver construction so a bad knob fails fast with a
        clear message instead of, e.g., a ``ZeroDivisionError`` at the
        ``iteration % check_every`` convergence gate deep in a solve.
        """
        if self.rho <= 0:
            raise InferenceError(f"rho must be > 0, got {self.rho}")
        if self.max_iterations < 0:
            raise InferenceError(
                f"max_iterations must be >= 0, got {self.max_iterations}"
            )
        if self.check_every < 1:
            raise InferenceError(
                f"check_every must be >= 1, got {self.check_every}"
            )


@dataclass
class AdmmWarmState:
    """Full ADMM state (consensus vector + local duals) for warm restarts.

    Primal-only warm starts barely help consensus ADMM: with the duals
    reset to zero the solver spends nearly the full iteration budget
    re-building them even when started at the optimum.  Carrying ``u``
    alongside ``z`` is what makes re-solves of the same (or a slightly
    perturbed) problem fast.  The state is only meaningful for an MRF
    with the same grounding structure; :meth:`AdmmSolver.solve` ignores
    a state that fails :meth:`matches`.

    ``num_terms`` records the block-structure signature of the producing
    partition.  The dual vector's layout is the flat copy order —
    independent of how terms were grouped into blocks — so a state taken
    at one block size remains valid after re-partitioning (a different
    ``block_size``, a different grounding shard size); what it must
    *not* survive is a structurally different MRF that happens to match
    on raw array shapes, which the term count rejects.
    """

    z: np.ndarray
    u: np.ndarray
    num_terms: int | None = None

    def matches(self, partition: TermPartition) -> bool:
        """Is this state structurally valid for *partition*'s problem?"""
        return (
            self.z.shape == (partition.num_variables,)
            and self.u.shape == (partition.num_copies,)
            and (self.num_terms is None or self.num_terms == partition.num_terms)
        )


@dataclass
class AdmmResult:
    """Solution vector plus convergence diagnostics."""

    x: np.ndarray
    iterations: int
    converged: bool
    primal_residual: float
    dual_residual: float
    energy: float
    state: AdmmWarmState | None = None


def _convergence(
    x_local: np.ndarray,
    z: np.ndarray,
    z_old: np.ndarray,
    var: np.ndarray,
    rho: float,
    settings: AdmmSettings,
) -> tuple[float, float, bool]:
    """Residuals and tolerance verdict of the current iterate.

    The one shared definition of the stopping criterion (Boyd et al.'s
    combined absolute/relative epsilon), used both at the scheduled
    ``check_every`` gate and to report final residuals when the loop
    exits between checks.
    """
    z_var = z[var]
    primal = float(np.linalg.norm(x_local - z_var))
    dual = float(rho * np.linalg.norm((z - z_old)[var]))
    eps = settings.epsilon_abs * np.sqrt(len(var)) + settings.epsilon_rel * max(
        float(np.linalg.norm(x_local)), float(np.linalg.norm(z_var))
    )
    return primal, dual, primal < eps and dual < eps


class AdmmSolver:
    """Block-partitioned consensus-ADMM solver for one HL-MRF.

    The partition is compiled **once** per solver and reused across
    solves: because the HL-MRF energy is linear in the potential
    weights, a weight-only change never touches the compiled structure.
    Mutate weights on the MRF (``set_group_weights`` and friends) — or
    pass ``weights=`` straight to :meth:`solve` — and the solver syncs
    its partition in place (:attr:`~repro.psl.hlmrf.HingeLossMRF.
    weights_version` tells it when), writing through any live
    shared-memory staging so persistent pool workers see the new
    weights without re-staging or pool recycling.

    On a multi-worker process executor the shared-memory block staging
    is likewise created once and kept for the solver's lifetime; it is
    released by :meth:`close` (also on context-manager exit and when
    the solver is garbage collected), so one-shot
    ``AdmmSolver(mrf).solve()`` uses still unlink their segment as soon
    as the solver goes away.
    """

    def __init__(self, mrf: HingeLossMRF, settings: AdmmSettings | None = None):
        self._mrf = mrf
        self._settings = settings or AdmmSettings()
        self._settings.validate()
        self._partition = build_partition(mrf, self._settings.block_size)
        self._executor = resolve_executor(self._settings.executor)
        self._weights_version = mrf.weights_version
        self._shared: SharedPartitionBuffers | None = None
        self._solve_state: SharedSolveState | None = None

    @property
    def partition(self) -> TermPartition:
        return self._partition

    @property
    def mrf(self) -> HingeLossMRF:
        return self._mrf

    @property
    def settings(self) -> AdmmSettings:
        return self._settings

    def close(self) -> None:
        """Release the solver's shared-memory staging (idempotent)."""
        state, self._solve_state = self._solve_state, None
        if state is not None:
            state.release()
        shared, self._shared = self._shared, None
        if shared is not None:
            shared.release()

    def __enter__(self) -> "AdmmSolver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _sync_weights(self) -> None:
        """Pull the MRF's current weights into the compiled partition.

        No-op unless the MRF's ``weights_version`` moved since the last
        sync; then the partition's flat weight vector is rewritten in
        place (blocks hold views) and any live shared-memory staging
        gets the write-through.
        """
        if self._mrf.weights_version == self._weights_version:
            return
        self._partition.set_potential_weights(self._mrf.potential_weights())
        if self._shared is not None and not self._shared.released:
            self._shared.write_weights(self._partition)
        self._weights_version = self._mrf.weights_version

    def _local_updates(
        self,
        z: np.ndarray,
        u: np.ndarray,
        x_local: np.ndarray,
        rho: float,
        generation: int,
        state: SharedSolveState | None = None,
    ) -> None:
        """Run every block's x-update, scattering into *x_local*.

        Blocks own disjoint slices of the copy range, so scattering the
        mapped results back is race-free and order-independent; the
        executor only changes where the arithmetic runs.  With *state*
        (the solver's shared solve state, on a multi-worker process
        executor) *z*, *u*, and *x_local* are views into the shared
        segment: the mapped payloads are ``(name, index, rho,
        generation)`` tuples, workers compute their own ``v`` slice and
        write ``x`` in place, and the results are acks — nothing
        problem-sized crosses the process boundary.
        """
        partition = self._partition
        if state is not None:
            name = state.name
            payloads = [
                (name, index, rho, generation)
                for index in range(partition.num_blocks)
            ]
            for _ack in self._executor.map(apply_shared_solve_update, payloads):
                pass  # drain: the map barrier is the iteration barrier
            return
        if isinstance(self._executor, SerialExecutor) or partition.num_blocks <= 1:
            for block in partition.blocks:
                sl = block.copy_slice
                x_local[sl] = block_x_update(block, z[block.var] - u[sl], rho)
            return
        # Thread executors (and any custom in-process MapExecutor) share
        # the driver's memory natively: ship the raw blocks.
        payloads = [
            (block, z[block.var] - u[block.copy_slice], rho)
            for block in partition.blocks
        ]
        results = self._executor.map(apply_block_x_update, payloads)
        for x_block, block in zip(results, partition.blocks):
            x_local[block.copy_slice] = x_block

    def _wants_shared_state(self) -> bool:
        """Should this solve run on shared-memory consensus state?

        Only a multi-worker process executor benefits: its per-iteration
        maps would otherwise pickle every block's ``v`` slice out and
        ``x`` block back on every iteration.  Thread/serial executors
        share memory natively, and a single-worker process executor
        falls back to in-driver execution anyway.
        """
        return (
            isinstance(self._executor, ProcessExecutor)
            and self._executor.max_workers > 1
            and self._partition.num_blocks > 1
        )

    def _ensure_shared_state(self) -> SharedSolveState | None:
        """Stage (or reuse) this solver's shared-memory solve state.

        Both segments are solver-owned and kept across solves: re-solves
        of the same structure (weight sweeps, learning epochs) reuse the
        staged block arrays and consensus buffers — weight changes write
        through in :meth:`_sync_weights` — and :meth:`close` /
        ``__del__`` unlinks them, so a one-shot
        ``AdmmSolver(mrf).solve()`` still releases promptly when the
        solver object dies, even if a solve raised.  If the block
        staging had to be rebuilt, the solve state is rebuilt with it
        (its manifest embeds the block descriptors by segment name).
        """
        if not self._wants_shared_state():
            return None
        if self._shared is None or self._shared.released:
            self._shared = SharedPartitionBuffers(self._partition)
            if self._solve_state is not None:
                self._solve_state.release()
                self._solve_state = None
        if self._solve_state is None or self._solve_state.released:
            self._solve_state = SharedSolveState(self._partition, self._shared.blocks)
        return self._solve_state

    def solve(
        self,
        warm_start: np.ndarray | None = None,
        warm_state: AdmmWarmState | None = None,
        weights=None,
    ) -> AdmmResult:
        """Run ADMM to convergence (or the iteration cap).

        *warm_start* seeds only the consensus vector; *warm_state* (from a
        previous :attr:`AdmmResult.state`) additionally restores the local
        duals and takes precedence when it structurally matches this
        problem (see :meth:`AdmmWarmState.matches` — a re-partitioned
        solve of the same MRF still qualifies).

        *weights* re-weights the (unchanged) ground structure before
        solving: a mapping applies per origin group
        (:meth:`~repro.psl.hlmrf.HingeLossMRF.set_group_weights`), an
        array replaces the full per-potential vector.  Combined with
        *warm_state* from the previous solve this is the fast path of
        iterative reweighting: same compiled partition, same shared
        staging, a handful of warm iterations.
        """
        if weights is not None:
            if hasattr(weights, "items"):
                self._mrf.set_group_weights(weights)
            else:
                self._mrf.set_potential_weights(weights)
        self._sync_weights()
        settings = self._settings
        partition = self._partition
        n, copies = partition.num_variables, partition.num_copies
        use_state = warm_state is not None and warm_state.matches(partition)
        if use_state:
            z = np.clip(warm_state.z.astype(np.float64), 0.0, 1.0)
        elif warm_start is not None:
            z = np.clip(warm_start.astype(np.float64), 0.0, 1.0)
        else:
            z = np.full(n, 0.5)
        if copies == 0:
            return AdmmResult(
                z, 0, True, 0.0, 0.0, self._mrf.energy(z),
                state=AdmmWarmState(z.copy(), np.zeros(0), partition.num_terms),
            )

        var = partition.var
        u = warm_state.u.astype(np.float64).copy() if use_state else np.zeros(copies)

        state = self._ensure_shared_state()
        if state is not None:
            # Rebind the working arrays to the shared-segment views: the
            # whole loop below then runs in place on memory the pool
            # workers see directly, and nothing per-iteration is pickled.
            np.copyto(state.z, z)
            z = state.z
            np.copyto(state.u, u)
            u = state.u
            x_local = state.x_buffer(0)
            np.copyto(x_local, z[var])
        else:
            x_local = z[var].copy()
        scratch = np.empty(copies)
        z_old = z.copy()
        rho = settings.rho
        primal = dual = float("inf")
        iteration = 0
        converged = False
        checked_at = -1

        for iteration in range(1, settings.max_iterations + 1):
            # --- local updates: x_local = v - lambda[term] * a, per block
            if state is not None:
                x_local = state.x_buffer(iteration)
            self._local_updates(z, u, x_local, rho, iteration, state)

            # --- consensus update: gather every block's copies --------
            np.add(x_local, u, out=scratch)
            np.copyto(z_old, z)
            zsum = np.bincount(var, weights=scratch, minlength=n)
            zsum /= partition.degree
            np.clip(zsum, 0.0, 1.0, out=z)

            # --- dual update ------------------------------------------
            u += x_local
            u -= z[var]

            if iteration % settings.check_every == 0:
                checked_at = iteration
                primal, dual, converged = _convergence(
                    x_local, z, z_old, var, rho, settings
                )
                if converged:
                    break

        if iteration > 0 and checked_at != iteration:
            # The loop exited between convergence checks (or never reached
            # one, e.g. max_iterations < check_every): report residuals of
            # the final iterate instead of a stale/inf value, and credit
            # convergence if the final point already satisfies the tolerance.
            primal, dual, converged = _convergence(
                x_local, z, z_old, var, rho, settings
            )

        return AdmmResult(
            # On the shared path z is a segment view that close() will
            # invalidate; the result must own its memory either way.
            x=z.copy() if state is not None else z,
            iterations=iteration,
            converged=converged,
            primal_residual=primal,
            dual_residual=dual,
            energy=self._mrf.energy(z),
            state=AdmmWarmState(z.copy(), u.copy(), partition.num_terms),
        )
