"""Consensus ADMM for HL-MRF MAP inference.

Follows the algorithm of Bach et al. (JMLR 2017): every potential and
hard constraint becomes a subproblem holding local copies of its
variables; a consensus vector z (clipped to [0,1]) ties the copies
together.  Every subproblem's minimizer has the closed form
``x = v - lambda * a`` for a per-term scalar ``lambda``, so one ADMM
iteration is a handful of vectorized segment operations — no generic QP
solver needed.

Term kinds:
    linear hinge   w*max(0, a^T x + b)      lambda in {0, w/rho, d/||a||^2}
    squared hinge  w*max(0, a^T x + b)^2    lambda = 2*w*s/rho
    hard <=        project onto halfspace   lambda = max(0, d)/||a||^2
    hard ==        project onto hyperplane  lambda = d/||a||^2
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.psl.hlmrf import HingeLossMRF

_KIND_HINGE = 0
_KIND_SQUARED = 1
_KIND_LEQ = 2
_KIND_EQ = 3


@dataclass
class AdmmSettings:
    """Solver knobs; the defaults suit the paper's problem sizes."""

    rho: float = 1.0
    max_iterations: int = 5000
    epsilon_abs: float = 1e-5
    epsilon_rel: float = 1e-4
    check_every: int = 10


@dataclass
class AdmmWarmState:
    """Full ADMM state (consensus vector + local duals) for warm restarts.

    Primal-only warm starts barely help consensus ADMM: with the duals
    reset to zero the solver spends nearly the full iteration budget
    re-building them even when started at the optimum.  Carrying ``u``
    alongside ``z`` is what makes re-solves of the same (or a slightly
    perturbed) problem fast.  The state is only meaningful for an MRF
    with the same grounding structure; :meth:`AdmmSolver.solve` ignores
    a state whose shapes do not match.
    """

    z: np.ndarray
    u: np.ndarray


@dataclass
class AdmmResult:
    """Solution vector plus convergence diagnostics."""

    x: np.ndarray
    iterations: int
    converged: bool
    primal_residual: float
    dual_residual: float
    energy: float
    state: AdmmWarmState | None = None


class AdmmSolver:
    """Vectorized consensus-ADMM solver for one HL-MRF."""

    def __init__(self, mrf: HingeLossMRF, settings: AdmmSettings | None = None):
        self._mrf = mrf
        self._settings = settings or AdmmSettings()
        self._build_arrays()

    def _build_arrays(self) -> None:
        mrf = self._mrf
        terms = [
            (_KIND_SQUARED if p.squared else _KIND_HINGE, p.coefficients, p.offset, p.weight)
            for p in mrf.potentials
        ] + [
            (_KIND_EQ if c.equality else _KIND_LEQ, c.coefficients, c.offset, 0.0)
            for c in mrf.constraints
        ]
        var_index: list[int] = []
        term_index: list[int] = []
        coeff: list[float] = []
        kinds: list[int] = []
        offsets: list[float] = []
        weights: list[float] = []
        for t, (kind, coefficients, offset, weight) in enumerate(terms):
            kinds.append(kind)
            offsets.append(offset)
            weights.append(weight)
            for i, c in coefficients:
                var_index.append(i)
                term_index.append(t)
                coeff.append(c)

        self._n = mrf.num_variables
        self._num_terms = len(terms)
        self._var = np.asarray(var_index, dtype=np.int64)
        self._term = np.asarray(term_index, dtype=np.int64)
        self._a = np.asarray(coeff, dtype=np.float64)
        self._kind = np.asarray(kinds, dtype=np.int64)
        self._b = np.asarray(offsets, dtype=np.float64)
        self._w = np.asarray(weights, dtype=np.float64)
        self._normsq = np.maximum(
            np.bincount(self._term, weights=self._a**2, minlength=self._num_terms),
            1e-12,
        )
        degree = np.bincount(self._var, minlength=self._n).astype(np.float64)
        self._degree = np.maximum(degree, 1.0)

    def solve(
        self,
        warm_start: np.ndarray | None = None,
        warm_state: AdmmWarmState | None = None,
    ) -> AdmmResult:
        """Run ADMM to convergence (or the iteration cap).

        *warm_start* seeds only the consensus vector; *warm_state* (from a
        previous :attr:`AdmmResult.state`) additionally restores the local
        duals and takes precedence when its shapes match this problem.
        """
        settings = self._settings
        n, copies = self._n, len(self._var)
        use_state = (
            warm_state is not None
            and warm_state.z.shape == (n,)
            and warm_state.u.shape == (copies,)
        )
        if use_state:
            z = np.clip(warm_state.z.astype(np.float64), 0.0, 1.0)
        elif warm_start is not None:
            z = np.clip(warm_start.astype(np.float64), 0.0, 1.0)
        else:
            z = np.full(n, 0.5)
        if copies == 0:
            return AdmmResult(
                z, 0, True, 0.0, 0.0, self._mrf.energy(z),
                state=AdmmWarmState(z.copy(), np.zeros(0)),
            )

        u = warm_state.u.astype(np.float64).copy() if use_state else np.zeros(copies)
        x_local = z[self._var].copy()
        rho = settings.rho
        primal = dual = float("inf")
        iteration = 0
        converged = False
        z_old = z
        checked_at = -1

        for iteration in range(1, settings.max_iterations + 1):
            # --- local updates: x_local = v - lambda[term] * a ------------
            v = z[self._var] - u
            dot = np.bincount(
                self._term, weights=self._a * v, minlength=self._num_terms
            )
            d0 = dot + self._b
            lam = np.zeros(self._num_terms)

            hinge = self._kind == _KIND_HINGE
            if hinge.any():
                w_over_rho = self._w[hinge] / rho
                d0_h = d0[hinge]
                full_step_ok = d0_h - w_over_rho * self._normsq[hinge] >= 0.0
                lam_h = np.where(
                    d0_h <= 0.0,
                    0.0,
                    np.where(full_step_ok, w_over_rho, d0_h / self._normsq[hinge]),
                )
                lam[hinge] = lam_h

            squared = self._kind == _KIND_SQUARED
            if squared.any():
                d0_s = d0[squared]
                s = d0_s / (1.0 + 2.0 * self._w[squared] * self._normsq[squared] / rho)
                lam[squared] = np.where(d0_s <= 0.0, 0.0, 2.0 * self._w[squared] * s / rho)

            leq = self._kind == _KIND_LEQ
            if leq.any():
                lam[leq] = np.maximum(0.0, d0[leq]) / self._normsq[leq]

            eq = self._kind == _KIND_EQ
            if eq.any():
                lam[eq] = d0[eq] / self._normsq[eq]

            x_local = v - lam[self._term] * self._a

            # --- consensus update -----------------------------------------
            z_old = z
            z = np.clip(
                np.bincount(self._var, weights=x_local + u, minlength=n) / self._degree,
                0.0,
                1.0,
            )

            # --- dual update ----------------------------------------------
            u = u + x_local - z[self._var]

            if iteration % settings.check_every == 0:
                checked_at = iteration
                primal = float(np.linalg.norm(x_local - z[self._var]))
                dual = float(rho * np.linalg.norm((z - z_old)[self._var]))
                eps = settings.epsilon_abs * np.sqrt(copies) + settings.epsilon_rel * max(
                    float(np.linalg.norm(x_local)), float(np.linalg.norm(z[self._var]))
                )
                if primal < eps and dual < eps:
                    converged = True
                    break

        if iteration > 0 and checked_at != iteration:
            # The loop exited between convergence checks (or never reached
            # one, e.g. max_iterations < check_every): report residuals of
            # the final iterate instead of a stale/inf value, and credit
            # convergence if the final point already satisfies the tolerance.
            primal = float(np.linalg.norm(x_local - z[self._var]))
            dual = float(rho * np.linalg.norm((z - z_old)[self._var]))
            eps = settings.epsilon_abs * np.sqrt(copies) + settings.epsilon_rel * max(
                float(np.linalg.norm(x_local)), float(np.linalg.norm(z[self._var]))
            )
            converged = primal < eps and dual < eps

        return AdmmResult(
            x=z,
            iterations=iteration,
            converged=converged,
            primal_residual=primal,
            dual_residual=dual,
            energy=self._mrf.energy(z),
            state=AdmmWarmState(z.copy(), u.copy()),
        )
