"""Block-partitioned term arrays for consensus ADMM.

The consensus-ADMM formulation of Bach et al. (JMLR 2017) decomposes by
term: every potential/constraint subproblem has the closed-form local
minimizer ``x = v - lambda * a`` and touches shared state only through
the consensus vector ``z`` and its local duals.  The flat solver
exploited that per *array element*; this module exploits it per *block*:
the shard boundaries recorded at grounding time
(:meth:`~repro.psl.hlmrf.HingeLossMRF.term_partition`) — or a uniform
``block_size`` re-chunking — split the term range into contiguous runs,
and each run gets its own CSR-style :class:`BlockArrays`.

The per-iteration contract, relied on by :class:`~repro.psl.admm.AdmmSolver`:

* :func:`block_x_update` is a pure function of one block plus its slice
  of ``v = z[var] - u``, so blocks can run through any order-preserving
  :class:`~repro.executors.MapExecutor` (serial, threads, processes);
* every temporary it allocates is O(block), so the solver's transient
  working set is bounded by the largest block — not the whole program —
  on top of the persistent ADMM state (``z``, ``u``, ``x_local``) and
  the consensus scatter-gather buffers;
* block boundaries never split a term, and blocks concatenate to exactly
  the flat potentials-then-constraints ordering, so per-term reductions
  and the consensus accumulation see the same values in the same order
  as the flat solver — the partitioned serial solve is numerically
  identical (same iterates, residuals, energy) for **any** block size.

For process-backed executors, :class:`SharedPartitionBuffers` copies the
blocks' arrays once into a ``multiprocessing.shared_memory`` segment and
hands out :class:`SharedBlockArrays` stand-ins that pickle as a tiny
attach-by-name descriptor — so a per-iteration process-mapped x-update
ships only the small ``v`` slices, not the (constant) CSR arrays.  The
driver owns the segment's unlink.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import InferenceError
from repro.psl.hlmrf import (
    KIND_EQ,
    KIND_HINGE,
    KIND_LEQ,
    KIND_SQUARED,
    HingeLossMRF,
)
from repro.psl.sharding import iter_slices


@dataclass(frozen=True)
class BlockArrays:
    """One contiguous run of terms in solver layout (CSR over copies).

    ``term`` holds *block-local* term indices (0-based within the
    block), so per-term reductions stay O(block); ``var`` holds *global*
    variable indices, because variables are shared across blocks and
    only the consensus step resolves them.  ``term_lo``/``copy_lo``
    locate the block inside the flat term/copy ranges — the scatter
    offsets of the consensus/dual steps.
    """

    term_lo: int
    copy_lo: int
    kind: np.ndarray  # int64[num_terms], KIND_* values
    offset: np.ndarray  # float64[num_terms]
    weight: np.ndarray  # float64[num_terms]
    normsq: np.ndarray  # float64[num_terms], max(||a||^2, 1e-12)
    var: np.ndarray  # int64[num_copies], global variable index
    term: np.ndarray  # int64[num_copies], block-local term index
    coeff: np.ndarray  # float64[num_copies]

    @property
    def num_terms(self) -> int:
        return len(self.kind)

    @property
    def num_copies(self) -> int:
        return len(self.var)

    @property
    def copy_slice(self) -> slice:
        return slice(self.copy_lo, self.copy_lo + len(self.var))


def block_x_update(block: BlockArrays, v: np.ndarray, rho: float) -> np.ndarray:
    """One block's ADMM local step: ``x = v - lambda[term] * a``.

    *v* is the block's slice of ``z[var] - u``.  The per-term scalar
    ``lambda`` has the closed forms of the module docstring of
    :mod:`repro.psl.admm`; everything here is elementwise or a per-term
    ``bincount`` over block-local indices, so the result is the exact
    slice the flat solver would have produced, computed with O(block)
    temporaries.  Pure and picklable — safe under any executor.
    """
    num_terms = block.num_terms
    dot = np.bincount(block.term, weights=block.coeff * v, minlength=num_terms)
    d0 = dot + block.offset
    lam = np.zeros(num_terms)

    hinge = block.kind == KIND_HINGE
    if hinge.any():
        w_over_rho = block.weight[hinge] / rho
        d0_h = d0[hinge]
        full_step_ok = d0_h - w_over_rho * block.normsq[hinge] >= 0.0
        lam[hinge] = np.where(
            d0_h <= 0.0,
            0.0,
            np.where(full_step_ok, w_over_rho, d0_h / block.normsq[hinge]),
        )

    squared = block.kind == KIND_SQUARED
    if squared.any():
        d0_s = d0[squared]
        s = d0_s / (1.0 + 2.0 * block.weight[squared] * block.normsq[squared] / rho)
        lam[squared] = np.where(d0_s <= 0.0, 0.0, 2.0 * block.weight[squared] * s / rho)

    leq = block.kind == KIND_LEQ
    if leq.any():
        lam[leq] = np.maximum(0.0, d0[leq]) / block.normsq[leq]

    eq = block.kind == KIND_EQ
    if eq.any():
        lam[eq] = d0[eq] / block.normsq[eq]

    return v - lam[block.term] * block.coeff


def apply_block_x_update(
    payload: tuple[BlockArrays, np.ndarray, float],
) -> np.ndarray:
    """Executor-map adapter for :func:`block_x_update` (module-level,
    picklable)."""
    block, v, rho = payload
    return block_x_update(block, v, rho)


@dataclass(frozen=True)
class TermPartition:
    """All of one MRF's solver arrays, split into per-block CSR runs.

    ``var`` and ``degree`` are the global consensus structures (the
    concatenation of the blocks' copy→variable maps, and each variable's
    copy count); the blocks carry everything term-local.  Blocks tile
    the flat term range in order, so ``concat(block.var for blocks) ==
    var`` — the invariant behind the solver's scatter-gather.

    ``term_weights`` is the flat per-term weight vector (potentials
    first, then a zero per constraint); every block's ``weight`` array
    is a *view* into it, so :meth:`set_potential_weights` rewrites the
    weights of an already-compiled partition in place — the solver-side
    half of the ground-once/reweight-many contract.  Structure
    (coefficients, offsets, norms, the consensus maps) never changes.
    """

    num_variables: int
    num_terms: int
    blocks: tuple[BlockArrays, ...]
    var: np.ndarray  # int64[num_copies], global copy -> variable
    degree: np.ndarray  # float64[num_variables], max(copy count, 1)
    #: flat float64[num_terms]; blocks' ``weight`` arrays are views of it.
    term_weights: np.ndarray = None  # type: ignore[assignment]
    num_potentials: int = 0

    def set_potential_weights(self, weights: np.ndarray) -> None:
        """Overwrite the potential weights of this compiled partition.

        *weights* is the MRF's contiguous per-potential vector
        (constraint terms have no weight).  Writes through the flat
        array, so every block — each holds a view — sees the new values
        with zero re-compilation.
        """
        if len(weights) != self.num_potentials:
            raise InferenceError(
                f"expected {self.num_potentials} potential weights, "
                f"got {len(weights)}"
            )
        self.term_weights[: self.num_potentials] = weights

    @property
    def num_copies(self) -> int:
        return len(self.var)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def max_block_terms(self) -> int:
        return max((b.num_terms for b in self.blocks), default=0)

    @property
    def max_block_copies(self) -> int:
        return max((b.num_copies for b in self.blocks), default=0)

    def boundaries(self) -> tuple[tuple[int, int], ...]:
        return tuple((b.term_lo, b.term_lo + b.num_terms) for b in self.blocks)


def build_partition(
    mrf: HingeLossMRF, block_size: int | None = None
) -> TermPartition:
    """Compile *mrf* into a :class:`TermPartition` (built once per solver).

    With *block_size* unset the partition follows the block extents the
    MRF recorded at grounding time (``mrf.term_partition()``) — one run
    per shard-emitted term block, or a single run on the legacy
    incremental path.  A *block_size* (>= 1) re-chunks the flat term
    range into uniform runs of that many terms instead, decoupling the
    solve granularity from the grounding shard size.  Either way the
    blocks are views into one set of flat arrays, so partitioning adds
    O(num_copies) construction work and essentially no extra memory.
    """
    if block_size is not None and block_size < 1:
        raise InferenceError(f"block_size must be >= 1, got {block_size}")
    terms = [
        (KIND_SQUARED if p.squared else KIND_HINGE, p.coefficients, p.offset, p.weight)
        for p in mrf.potentials
    ] + [
        (KIND_EQ if c.equality else KIND_LEQ, c.coefficients, c.offset, 0.0)
        for c in mrf.constraints
    ]
    num_terms = len(terms)
    var_index: list[int] = []
    coeff: list[float] = []
    kinds: list[int] = []
    offsets: list[float] = []
    weights: list[float] = []
    term_ptr = np.zeros(num_terms + 1, dtype=np.int64)
    for t, (kind, coefficients, offset, weight) in enumerate(terms):
        kinds.append(kind)
        offsets.append(offset)
        weights.append(weight)
        for i, c in coefficients:
            var_index.append(i)
            coeff.append(c)
        term_ptr[t + 1] = len(var_index)

    n = mrf.num_variables
    var = np.asarray(var_index, dtype=np.int64)
    a = np.asarray(coeff, dtype=np.float64)
    kind_arr = np.asarray(kinds, dtype=np.int64)
    offset_arr = np.asarray(offsets, dtype=np.float64)
    weight_arr = np.asarray(weights, dtype=np.float64)
    term = np.repeat(np.arange(num_terms, dtype=np.int64), np.diff(term_ptr))
    normsq = np.maximum(
        np.bincount(term, weights=a**2, minlength=num_terms), 1e-12
    )
    degree = np.maximum(np.bincount(var, minlength=n).astype(np.float64), 1.0)

    if block_size is not None:
        bounds = tuple(iter_slices(num_terms, block_size))
    else:
        bounds = mrf.term_partition()

    blocks = []
    for lo, hi in bounds:
        copy_lo, copy_hi = int(term_ptr[lo]), int(term_ptr[hi])
        blocks.append(
            BlockArrays(
                term_lo=lo,
                copy_lo=copy_lo,
                kind=kind_arr[lo:hi],
                offset=offset_arr[lo:hi],
                weight=weight_arr[lo:hi],
                normsq=normsq[lo:hi],
                var=var[copy_lo:copy_hi],
                term=term[copy_lo:copy_hi] - lo,
                coeff=a[copy_lo:copy_hi],
            )
        )
    return TermPartition(
        num_variables=n,
        num_terms=num_terms,
        blocks=tuple(blocks),
        var=var,
        degree=degree,
        term_weights=weight_arr,
        num_potentials=len(mrf.potentials),
    )


# -- shared-memory block views -------------------------------------------------

#: Field layout of one block inside a shared segment: term-indexed
#: arrays first, then copy-indexed ones.  All dtypes are 8 bytes, so
#: packing them back to back keeps every view aligned.
_TERM_FIELDS: tuple[tuple[str, type], ...] = (
    ("kind", np.int64),
    ("offset", np.float64),
    ("weight", np.float64),
    ("normsq", np.float64),
)
_COPY_FIELDS: tuple[tuple[str, type], ...] = (
    ("var", np.int64),
    ("term", np.int64),
    ("coeff", np.float64),
)
_ALL_FIELDS = _TERM_FIELDS + _COPY_FIELDS
_FIELD_DTYPES = dict(_ALL_FIELDS)

#: Most recent shared segments this process has attached to, by name —
#: LRU: hits reinsert, eviction drops the least recently used.  One
#: solve touches one segment many times (every block of every
#: iteration), so caching the attachment makes re-attach free; the bound
#: keeps a long-lived pool worker from accumulating mappings of segments
#: long since unlinked by their drivers while staying above any
#: realistic number of concurrently streaming solves.  Deliberate
#: residual: with no further attach there is no hook left to run the
#: sweep, so an idle persistent worker keeps the *last* solve's
#: segment(s) mapped until the next process-backed solve, a pool
#: recycle, or worker exit — the same bounded warm-state trade-off as
#: the grounding database snapshot the pool initializer installs.
_ATTACHED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CACHE_SIZE = 16


def _sweep_dead_segments() -> None:
    """Drop cached attachments whose segment the driver already unlinked.

    A mapping keeps the physical memory alive even after unlink, so
    without the sweep a worker would pin up to the cache bound's worth
    of finished solves' segments.  Linux-only liveness check (names live
    under ``/dev/shm``); elsewhere the LRU bound is the only limit.
    """
    for name in list(_ATTACHED_SEGMENTS):
        if not os.path.exists(f"/dev/shm/{name}"):
            stale = _ATTACHED_SEGMENTS.pop(name)
            try:
                stale.close()
            except BufferError:
                pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED_SEGMENTS.pop(name, None)
    if segment is not None:
        _ATTACHED_SEGMENTS[name] = segment  # refresh recency
        return segment
    if os.path.isdir("/dev/shm"):
        # Cache miss = a new solve's segment arriving: a cheap moment to
        # release mappings of segments whose solves have finished.
        _sweep_dead_segments()
    try:
        # Only the creating driver owns the unlink; 3.13+ can say so.
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Older Pythons register every attachment with the resource
        # tracker, which (a) forks a whole tracker process inside each
        # pool worker on first attach and (b) *unlinks* the registered
        # segment when the worker exits — destroying the driver-owned
        # segment out from under everyone else.  Attach with
        # registration suppressed instead; the driver's own handle stays
        # tracked and its release() does the one real unlink.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    while len(_ATTACHED_SEGMENTS) >= _ATTACH_CACHE_SIZE:
        stale = _ATTACHED_SEGMENTS.pop(next(iter(_ATTACHED_SEGMENTS)))
        try:
            stale.close()
        except BufferError:
            pass  # a live view still references it; dropped when it dies
    _ATTACHED_SEGMENTS[name] = segment
    return segment


class SharedBlockArrays:
    """A :class:`BlockArrays` stand-in whose arrays live in shared memory.

    Duck-types everything :func:`block_x_update` (and the solver's
    scatter-gather) reads — ``kind``/``offset``/``weight``/``normsq``
    per term, ``var``/``term``/``coeff`` per copy, plus the extent
    properties — as zero-copy numpy views into a
    ``multiprocessing.shared_memory`` segment.  Pickles as the segment
    name plus a byte-offset layout (a few hundred bytes, independent of
    block size); unpickling attaches the segment by name and rebuilds
    the views lazily, so shipping one of these to a pool worker costs
    O(1) IPC no matter how large the block is.

    The segment is owned by the driver's :class:`SharedPartitionBuffers`
    — views must not be used after the driver releases it.
    """

    def __init__(
        self,
        shm_name: str,
        term_lo: int,
        copy_lo: int,
        layout: dict[str, tuple[int, int]],
        buf: memoryview | None = None,
    ):
        self.shm_name = shm_name
        self.term_lo = term_lo
        self.copy_lo = copy_lo
        self._layout = layout  # field -> (byte offset, length)
        self._views: dict[str, np.ndarray] | None = None
        if buf is not None:
            self._build_views(buf)

    def _build_views(self, buf: memoryview) -> None:
        self._views = {
            field: np.ndarray(
                (length,), dtype=_FIELD_DTYPES[field], buffer=buf, offset=offset
            )
            for field, (offset, length) in self._layout.items()
        }

    def _view(self, field: str) -> np.ndarray:
        if self._views is None:
            self._build_views(_attach_segment(self.shm_name).buf)
        return self._views[field]

    def _drop_views(self) -> None:
        self._views = None

    kind = property(lambda self: self._view("kind"))
    offset = property(lambda self: self._view("offset"))
    weight = property(lambda self: self._view("weight"))
    normsq = property(lambda self: self._view("normsq"))
    var = property(lambda self: self._view("var"))
    term = property(lambda self: self._view("term"))
    coeff = property(lambda self: self._view("coeff"))

    @property
    def num_terms(self) -> int:
        return self._layout["kind"][1]

    @property
    def num_copies(self) -> int:
        return self._layout["var"][1]

    @property
    def copy_slice(self) -> slice:
        return slice(self.copy_lo, self.copy_lo + self.num_copies)

    def __getstate__(self) -> dict:
        return {
            "shm_name": self.shm_name,
            "term_lo": self.term_lo,
            "copy_lo": self.copy_lo,
            "layout": self._layout,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["shm_name"], state["term_lo"], state["copy_lo"], state["layout"]
        )

    def __repr__(self) -> str:
        return (
            f"SharedBlockArrays(shm={self.shm_name!r}, term_lo={self.term_lo}, "
            f"terms={self.num_terms}, copies={self.num_copies})"
        )


class SharedPartitionBuffers:
    """Driver-owned shared-memory copies of a partition's block arrays.

    Construction copies every block's arrays once into a single fresh
    ``multiprocessing.shared_memory`` segment and exposes them as
    :attr:`blocks` — :class:`SharedBlockArrays` parallel to
    ``partition.blocks``.  The driver that built the buffers owns the
    segment: :meth:`release` (idempotent; also run by ``__del__`` and on
    context-manager exit) closes the mapping and **unlinks** the
    segment, after which attach-by-name fails and worker mappings die
    with their processes.  Callers must release on every exit path — the
    ADMM solver does so in a ``finally`` so a raising solve cannot leak
    the segment.
    """

    def __init__(self, partition: TermPartition):
        layouts: list[dict[str, tuple[int, int]]] = []
        total = 0
        for block in partition.blocks:
            layout: dict[str, tuple[int, int]] = {}
            for field, dtype in _TERM_FIELDS:
                layout[field] = (total, block.num_terms)
                total += block.num_terms * np.dtype(dtype).itemsize
            for field, dtype in _COPY_FIELDS:
                layout[field] = (total, block.num_copies)
                total += block.num_copies * np.dtype(dtype).itemsize
            layouts.append(layout)
        self._segment: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=max(total, 1)
        )
        self.blocks: tuple[SharedBlockArrays, ...] = ()
        try:
            blocks = []
            for block, layout in zip(partition.blocks, layouts):
                shared = SharedBlockArrays(
                    self._segment.name,
                    block.term_lo,
                    block.copy_lo,
                    layout,
                    buf=self._segment.buf,
                )
                for field, _ in _ALL_FIELDS:
                    np.copyto(
                        shared._view(field), getattr(block, field), casting="same_kind"
                    )
                # Drop the driver-side views right away: the driver reads
                # through the regular partition, and live exports would make
                # the mapping impossible to close on release.
                shared._drop_views()
                blocks.append(shared)
            self.blocks = tuple(blocks)
        except BaseException:
            # A failed copy must not strand the created segment — no
            # caller holds a handle to release yet.
            self.release()
            raise

    def write_weights(self, partition: TermPartition) -> None:
        """Push *partition*'s current block weights into the shared segment.

        The weight write-through of the ground-once/reweight-many
        pipeline: after an in-place
        :meth:`TermPartition.set_potential_weights`, this copies each
        block's (view-backed) weight array over its shared-memory
        mirror.  Worker processes hold zero-copy views into the same
        segment, so persistent pool workers observe the new weights on
        their next block update — no re-staging, no descriptor changes,
        no pool recycling.  Structure fields are never rewritten.
        """
        if self._segment is None:
            raise InferenceError("shared partition buffers already released")
        buf = self._segment.buf
        for block, mirror in zip(partition.blocks, self.blocks):
            offset, length = mirror._layout["weight"]
            view = np.ndarray((length,), dtype=np.float64, buffer=buf, offset=offset)
            np.copyto(view, block.weight, casting="same_kind")
            del view  # a live export would pin the mapping on release

    @property
    def name(self) -> str | None:
        return self._segment.name if self._segment is not None else None

    @property
    def released(self) -> bool:
        return self._segment is None

    def release(self) -> None:
        """Close and unlink the segment (idempotent, driver-owned)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        for block in self.blocks:
            block._drop_views()
        try:
            segment.close()
        except BufferError:
            pass  # an outstanding view pins the mapping; unlink regardless
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedPartitionBuffers":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:
            pass
