"""Block-partitioned term arrays for consensus ADMM.

The consensus-ADMM formulation of Bach et al. (JMLR 2017) decomposes by
term: every potential/constraint subproblem has the closed-form local
minimizer ``x = v - lambda * a`` and touches shared state only through
the consensus vector ``z`` and its local duals.  The flat solver
exploited that per *array element*; this module exploits it per *block*:
the shard boundaries recorded at grounding time
(:meth:`~repro.psl.hlmrf.HingeLossMRF.term_partition`) — or a uniform
``block_size`` re-chunking — split the term range into contiguous runs,
and each run gets its own CSR-style :class:`BlockArrays`.

The per-iteration contract, relied on by :class:`~repro.psl.admm.AdmmSolver`:

* :func:`block_x_update` is a pure function of one block plus its slice
  of ``v = z[var] - u``, so blocks can run through any order-preserving
  :class:`~repro.executors.MapExecutor` (serial, threads, processes);
* every temporary it allocates is O(block), so the solver's transient
  working set is bounded by the largest block — not the whole program —
  on top of the persistent ADMM state (``z``, ``u``, ``x_local``) and
  the consensus scatter-gather buffers;
* block boundaries never split a term, and blocks concatenate to exactly
  the flat potentials-then-constraints ordering, so per-term reductions
  and the consensus accumulation see the same values in the same order
  as the flat solver — the partitioned serial solve is numerically
  identical (same iterates, residuals, energy) for **any** block size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.psl.hlmrf import (
    KIND_EQ,
    KIND_HINGE,
    KIND_LEQ,
    KIND_SQUARED,
    HingeLossMRF,
)
from repro.psl.sharding import iter_slices


@dataclass(frozen=True)
class BlockArrays:
    """One contiguous run of terms in solver layout (CSR over copies).

    ``term`` holds *block-local* term indices (0-based within the
    block), so per-term reductions stay O(block); ``var`` holds *global*
    variable indices, because variables are shared across blocks and
    only the consensus step resolves them.  ``term_lo``/``copy_lo``
    locate the block inside the flat term/copy ranges — the scatter
    offsets of the consensus/dual steps.
    """

    term_lo: int
    copy_lo: int
    kind: np.ndarray  # int64[num_terms], KIND_* values
    offset: np.ndarray  # float64[num_terms]
    weight: np.ndarray  # float64[num_terms]
    normsq: np.ndarray  # float64[num_terms], max(||a||^2, 1e-12)
    var: np.ndarray  # int64[num_copies], global variable index
    term: np.ndarray  # int64[num_copies], block-local term index
    coeff: np.ndarray  # float64[num_copies]

    @property
    def num_terms(self) -> int:
        return len(self.kind)

    @property
    def num_copies(self) -> int:
        return len(self.var)

    @property
    def copy_slice(self) -> slice:
        return slice(self.copy_lo, self.copy_lo + len(self.var))


def block_x_update(block: BlockArrays, v: np.ndarray, rho: float) -> np.ndarray:
    """One block's ADMM local step: ``x = v - lambda[term] * a``.

    *v* is the block's slice of ``z[var] - u``.  The per-term scalar
    ``lambda`` has the closed forms of the module docstring of
    :mod:`repro.psl.admm`; everything here is elementwise or a per-term
    ``bincount`` over block-local indices, so the result is the exact
    slice the flat solver would have produced, computed with O(block)
    temporaries.  Pure and picklable — safe under any executor.
    """
    num_terms = block.num_terms
    dot = np.bincount(block.term, weights=block.coeff * v, minlength=num_terms)
    d0 = dot + block.offset
    lam = np.zeros(num_terms)

    hinge = block.kind == KIND_HINGE
    if hinge.any():
        w_over_rho = block.weight[hinge] / rho
        d0_h = d0[hinge]
        full_step_ok = d0_h - w_over_rho * block.normsq[hinge] >= 0.0
        lam[hinge] = np.where(
            d0_h <= 0.0,
            0.0,
            np.where(full_step_ok, w_over_rho, d0_h / block.normsq[hinge]),
        )

    squared = block.kind == KIND_SQUARED
    if squared.any():
        d0_s = d0[squared]
        s = d0_s / (1.0 + 2.0 * block.weight[squared] * block.normsq[squared] / rho)
        lam[squared] = np.where(d0_s <= 0.0, 0.0, 2.0 * block.weight[squared] * s / rho)

    leq = block.kind == KIND_LEQ
    if leq.any():
        lam[leq] = np.maximum(0.0, d0[leq]) / block.normsq[leq]

    eq = block.kind == KIND_EQ
    if eq.any():
        lam[eq] = d0[eq] / block.normsq[eq]

    return v - lam[block.term] * block.coeff


def apply_block_x_update(
    payload: tuple[BlockArrays, np.ndarray, float],
) -> np.ndarray:
    """Executor-map adapter for :func:`block_x_update` (module-level,
    picklable)."""
    block, v, rho = payload
    return block_x_update(block, v, rho)


@dataclass(frozen=True)
class TermPartition:
    """All of one MRF's solver arrays, split into per-block CSR runs.

    ``var`` and ``degree`` are the global consensus structures (the
    concatenation of the blocks' copy→variable maps, and each variable's
    copy count); the blocks carry everything term-local.  Blocks tile
    the flat term range in order, so ``concat(block.var for blocks) ==
    var`` — the invariant behind the solver's scatter-gather.
    """

    num_variables: int
    num_terms: int
    blocks: tuple[BlockArrays, ...]
    var: np.ndarray  # int64[num_copies], global copy -> variable
    degree: np.ndarray  # float64[num_variables], max(copy count, 1)

    @property
    def num_copies(self) -> int:
        return len(self.var)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def max_block_terms(self) -> int:
        return max((b.num_terms for b in self.blocks), default=0)

    @property
    def max_block_copies(self) -> int:
        return max((b.num_copies for b in self.blocks), default=0)

    def boundaries(self) -> tuple[tuple[int, int], ...]:
        return tuple((b.term_lo, b.term_lo + b.num_terms) for b in self.blocks)


def build_partition(
    mrf: HingeLossMRF, block_size: int | None = None
) -> TermPartition:
    """Compile *mrf* into a :class:`TermPartition` (built once per solver).

    With *block_size* unset the partition follows the block extents the
    MRF recorded at grounding time (``mrf.term_partition()``) — one run
    per shard-emitted term block, or a single run on the legacy
    incremental path.  A *block_size* (>= 1) re-chunks the flat term
    range into uniform runs of that many terms instead, decoupling the
    solve granularity from the grounding shard size.  Either way the
    blocks are views into one set of flat arrays, so partitioning adds
    O(num_copies) construction work and essentially no extra memory.
    """
    if block_size is not None and block_size < 1:
        raise InferenceError(f"block_size must be >= 1, got {block_size}")
    terms = [
        (KIND_SQUARED if p.squared else KIND_HINGE, p.coefficients, p.offset, p.weight)
        for p in mrf.potentials
    ] + [
        (KIND_EQ if c.equality else KIND_LEQ, c.coefficients, c.offset, 0.0)
        for c in mrf.constraints
    ]
    num_terms = len(terms)
    var_index: list[int] = []
    coeff: list[float] = []
    kinds: list[int] = []
    offsets: list[float] = []
    weights: list[float] = []
    term_ptr = np.zeros(num_terms + 1, dtype=np.int64)
    for t, (kind, coefficients, offset, weight) in enumerate(terms):
        kinds.append(kind)
        offsets.append(offset)
        weights.append(weight)
        for i, c in coefficients:
            var_index.append(i)
            coeff.append(c)
        term_ptr[t + 1] = len(var_index)

    n = mrf.num_variables
    var = np.asarray(var_index, dtype=np.int64)
    a = np.asarray(coeff, dtype=np.float64)
    kind_arr = np.asarray(kinds, dtype=np.int64)
    offset_arr = np.asarray(offsets, dtype=np.float64)
    weight_arr = np.asarray(weights, dtype=np.float64)
    term = np.repeat(np.arange(num_terms, dtype=np.int64), np.diff(term_ptr))
    normsq = np.maximum(
        np.bincount(term, weights=a**2, minlength=num_terms), 1e-12
    )
    degree = np.maximum(np.bincount(var, minlength=n).astype(np.float64), 1.0)

    if block_size is not None:
        bounds = tuple(iter_slices(num_terms, block_size))
    else:
        bounds = mrf.term_partition()

    blocks = []
    for lo, hi in bounds:
        copy_lo, copy_hi = int(term_ptr[lo]), int(term_ptr[hi])
        blocks.append(
            BlockArrays(
                term_lo=lo,
                copy_lo=copy_lo,
                kind=kind_arr[lo:hi],
                offset=offset_arr[lo:hi],
                weight=weight_arr[lo:hi],
                normsq=normsq[lo:hi],
                var=var[copy_lo:copy_hi],
                term=term[copy_lo:copy_hi] - lo,
                coeff=a[copy_lo:copy_hi],
            )
        )
    return TermPartition(
        num_variables=n,
        num_terms=num_terms,
        blocks=tuple(blocks),
        var=var,
        degree=degree,
    )
