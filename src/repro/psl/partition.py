"""Block-partitioned term arrays for consensus ADMM.

The consensus-ADMM formulation of Bach et al. (JMLR 2017) decomposes by
term: every potential/constraint subproblem has the closed-form local
minimizer ``x = v - lambda * a`` and touches shared state only through
the consensus vector ``z`` and its local duals.  The flat solver
exploited that per *array element*; this module exploits it per *block*:
the shard boundaries recorded at grounding time
(:meth:`~repro.psl.hlmrf.HingeLossMRF.term_partition`) — or a uniform
``block_size`` re-chunking — split the term range into contiguous runs,
and each run gets its own CSR-style :class:`BlockArrays`.

The per-iteration contract, relied on by :class:`~repro.psl.admm.AdmmSolver`:

* :func:`block_x_update` is a pure function of one block plus its slice
  of ``v = z[var] - u``, so blocks can run through any order-preserving
  :class:`~repro.executors.MapExecutor` (serial, threads, processes);
* every temporary it allocates is O(block), so the solver's transient
  working set is bounded by the largest block — not the whole program —
  on top of the persistent ADMM state (``z``, ``u``, ``x_local``) and
  the consensus scatter-gather buffers;
* block boundaries never split a term, and blocks concatenate to exactly
  the flat potentials-then-constraints ordering, so per-term reductions
  and the consensus accumulation see the same values in the same order
  as the flat solver — the partitioned serial solve is numerically
  identical (same iterates, residuals, energy) for **any** block size.

For process-backed executors, :class:`SharedPartitionBuffers` copies the
blocks' arrays once into a ``multiprocessing.shared_memory`` segment and
hands out :class:`SharedBlockArrays` stand-ins that pickle as a tiny
attach-by-name descriptor, and :class:`SharedSolveState` puts the
per-iteration consensus state (``z``, ``u``, a double-buffered
``x_local``) in a second driver-owned segment whose manifest embeds
those descriptors — so a process-mapped x-update ships only
``(segment name, block index, rho, generation)`` per block and returns
an ack: O(num_blocks) bytes per iteration, independent of problem size.
The driver owns both segments' unlinks.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from itertools import chain, repeat
from multiprocessing import shared_memory

import numpy as np

from repro.errors import InferenceError
from repro.psl.hlmrf import (
    KIND_EQ,
    KIND_HINGE,
    KIND_LEQ,
    KIND_SQUARED,
    HingeLossMRF,
)
from repro.psl.sharding import iter_slices


@dataclass(frozen=True)
class BlockArrays:
    """One contiguous run of terms in solver layout (CSR over copies).

    ``term`` holds *block-local* term indices (0-based within the
    block), so per-term reductions stay O(block); ``var`` holds *global*
    variable indices, because variables are shared across blocks and
    only the consensus step resolves them.  ``term_lo``/``copy_lo``
    locate the block inside the flat term/copy ranges — the scatter
    offsets of the consensus/dual steps.
    """

    term_lo: int
    copy_lo: int
    kind: np.ndarray  # int64[num_terms], KIND_* values
    offset: np.ndarray  # float64[num_terms]
    weight: np.ndarray  # float64[num_terms]
    normsq: np.ndarray  # float64[num_terms], max(||a||^2, 1e-12)
    var: np.ndarray  # int64[num_copies], global variable index
    term: np.ndarray  # int64[num_copies], block-local term index
    coeff: np.ndarray  # float64[num_copies]
    #: per-kind index arrays, indexed by the KIND_* constants — the kind
    #: masks of the local step, precompiled once at partition-build time
    #: so :func:`block_x_update` dispatches closed-form kernels over
    #: fixed index sets instead of recomputing masks every iteration.
    kind_index: tuple[np.ndarray, ...]

    @property
    def num_terms(self) -> int:
        return len(self.kind)

    @property
    def num_copies(self) -> int:
        return len(self.var)

    @property
    def copy_slice(self) -> slice:
        return slice(self.copy_lo, self.copy_lo + len(self.var))


#: The four term kinds in index order — KIND_HINGE..KIND_EQ are 0..3,
#: so a block's ``kind_index[k]`` is the index set of kind constant *k*.
_KINDS = (KIND_HINGE, KIND_SQUARED, KIND_LEQ, KIND_EQ)


def _kind_index(kind: np.ndarray) -> tuple[np.ndarray, ...]:
    """Precompile one block's per-kind term index sets."""
    return tuple(np.flatnonzero(kind == k) for k in _KINDS)


def _hinge_kernel(
    d0: np.ndarray, weight: np.ndarray, normsq: np.ndarray, rho: float
) -> np.ndarray:
    w_over_rho = weight / rho
    full_step_ok = d0 - w_over_rho * normsq >= 0.0
    return np.where(d0 <= 0.0, 0.0, np.where(full_step_ok, w_over_rho, d0 / normsq))


def _squared_kernel(
    d0: np.ndarray, weight: np.ndarray, normsq: np.ndarray, rho: float
) -> np.ndarray:
    s = d0 / (1.0 + 2.0 * weight * normsq / rho)
    return np.where(d0 <= 0.0, 0.0, 2.0 * weight * s / rho)


def _leq_kernel(
    d0: np.ndarray, weight: np.ndarray, normsq: np.ndarray, rho: float
) -> np.ndarray:
    return np.maximum(0.0, d0) / normsq


def _eq_kernel(
    d0: np.ndarray, weight: np.ndarray, normsq: np.ndarray, rho: float
) -> np.ndarray:
    return d0 / normsq


#: Closed-form ``lambda`` kernels (module docstring of
#: :mod:`repro.psl.admm`), indexed like ``kind_index``.
_KIND_KERNELS = (_hinge_kernel, _squared_kernel, _leq_kernel, _eq_kernel)


def block_x_update(block: BlockArrays, v: np.ndarray, rho: float) -> np.ndarray:
    """One block's ADMM local step: ``x = v - lambda[term] * a``.

    *v* is the block's slice of ``z[var] - u``.  The per-term scalar
    ``lambda`` is computed by the closed-form kernel of each kind,
    dispatched over the block's precompiled ``kind_index`` sets —
    ``np.flatnonzero`` preserves the mask order, so the result is bit
    for bit what the historical per-iteration boolean-mask version
    produced.  Everything here is elementwise or a per-term ``bincount``
    over block-local indices, so temporaries stay O(block).  Pure and
    picklable — safe under any executor.
    """
    num_terms = block.num_terms
    dot = np.bincount(block.term, weights=block.coeff * v, minlength=num_terms)
    d0 = dot + block.offset
    lam = np.zeros(num_terms)
    for kernel, idx in zip(_KIND_KERNELS, block.kind_index):
        if len(idx):
            lam[idx] = kernel(d0[idx], block.weight[idx], block.normsq[idx], rho)
    return v - lam[block.term] * block.coeff


def apply_block_x_update(
    payload: tuple[BlockArrays, np.ndarray, float],
) -> np.ndarray:
    """Executor-map adapter for :func:`block_x_update` (module-level,
    picklable)."""
    block, v, rho = payload
    return block_x_update(block, v, rho)


@dataclass(frozen=True)
class TermPartition:
    """All of one MRF's solver arrays, split into per-block CSR runs.

    ``var`` and ``degree`` are the global consensus structures (the
    concatenation of the blocks' copy→variable maps, and each variable's
    copy count); the blocks carry everything term-local.  Blocks tile
    the flat term range in order, so ``concat(block.var for blocks) ==
    var`` — the invariant behind the solver's scatter-gather.

    ``term_weights`` is the flat per-term weight vector (potentials
    first, then a zero per constraint); every block's ``weight`` array
    is a *view* into it, so :meth:`set_potential_weights` rewrites the
    weights of an already-compiled partition in place — the solver-side
    half of the ground-once/reweight-many contract.  Structure
    (coefficients, offsets, norms, the consensus maps) never changes.
    """

    num_variables: int
    num_terms: int
    blocks: tuple[BlockArrays, ...]
    var: np.ndarray  # int64[num_copies], global copy -> variable
    degree: np.ndarray  # float64[num_variables], max(copy count, 1)
    #: flat float64[num_terms]; blocks' ``weight`` arrays are views of it.
    term_weights: np.ndarray = None  # type: ignore[assignment]
    num_potentials: int = 0

    def set_potential_weights(self, weights: np.ndarray) -> None:
        """Overwrite the potential weights of this compiled partition.

        *weights* is the MRF's contiguous per-potential vector
        (constraint terms have no weight).  Writes through the flat
        array, so every block — each holds a view — sees the new values
        with zero re-compilation.
        """
        if len(weights) != self.num_potentials:
            raise InferenceError(
                f"expected {self.num_potentials} potential weights, "
                f"got {len(weights)}"
            )
        self.term_weights[: self.num_potentials] = weights

    @property
    def num_copies(self) -> int:
        return len(self.var)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def max_block_terms(self) -> int:
        return max((b.num_terms for b in self.blocks), default=0)

    @property
    def max_block_copies(self) -> int:
        return max((b.num_copies for b in self.blocks), default=0)

    def boundaries(self) -> tuple[tuple[int, int], ...]:
        return tuple((b.term_lo, b.term_lo + b.num_terms) for b in self.blocks)


@dataclass(frozen=True)
class FlatTermArrays:
    """One MRF's flat solver arrays, before any block chunking.

    The single intermediate between an MRF and its
    :class:`TermPartition`: :func:`compile_term_arrays` assembles it from
    the potential/constraint lists, and the grounding store
    (:mod:`repro.psl.store`) spills exactly these arrays to disk and
    re-attaches them as read-only mmap views — every field except
    ``weight`` is structure, immutable once grounded, so zero-copy
    attach is safe.  ``weight`` is the flat per-term weight vector the
    partition's blocks will hold views of; it **must be writable**
    (:meth:`TermPartition.set_potential_weights` rewrites it in place),
    so the attach path substitutes a fresh in-memory copy for the
    mmapped original.
    """

    num_variables: int
    num_potentials: int
    kind: np.ndarray  # int64[num_terms], KIND_* values
    offset: np.ndarray  # float64[num_terms]
    weight: np.ndarray  # float64[num_terms]; writable, constraints are 0.0
    normsq: np.ndarray  # float64[num_terms], max(||a||^2, 1e-12)
    term_ptr: np.ndarray  # int64[num_terms+1], CSR row pointer into copies
    var: np.ndarray  # int64[num_copies], global variable index
    term: np.ndarray  # int64[num_copies], global term index
    coeff: np.ndarray  # float64[num_copies]
    degree: np.ndarray  # float64[num_variables], max(copy count, 1)

    @property
    def num_terms(self) -> int:
        return len(self.kind)

    @property
    def num_copies(self) -> int:
        return len(self.var)


def compile_term_arrays(mrf: HingeLossMRF) -> FlatTermArrays:
    """Assemble *mrf*'s flat solver arrays (the first half of a partition).

    Array assembly is single-pass ``np.fromiter`` over generator chains
    — no intermediate Python lists, no per-copy interpreter loop.  The
    derived arrays (``term``, ``normsq``, ``degree``) are computed here
    once and carried along, so a consumer that persisted them (the
    grounding store) reloads bit-identical values instead of recomputing.
    """
    potentials, constraints = mrf.potentials, mrf.constraints
    num_terms = len(potentials) + len(constraints)
    kind_arr = np.fromiter(
        chain(
            (KIND_SQUARED if p.squared else KIND_HINGE for p in potentials),
            (KIND_EQ if c.equality else KIND_LEQ for c in constraints),
        ),
        dtype=np.int64,
        count=num_terms,
    )
    offset_arr = np.fromiter(
        chain((p.offset for p in potentials), (c.offset for c in constraints)),
        dtype=np.float64,
        count=num_terms,
    )
    weight_arr = np.fromiter(
        chain((p.weight for p in potentials), repeat(0.0, len(constraints))),
        dtype=np.float64,
        count=num_terms,
    )
    counts = np.fromiter(
        (len(t.coefficients) for t in chain(potentials, constraints)),
        dtype=np.int64,
        count=num_terms,
    )
    term_ptr = np.zeros(num_terms + 1, dtype=np.int64)
    np.cumsum(counts, out=term_ptr[1:])
    num_copies = int(term_ptr[-1])
    var = np.fromiter(
        (i for t in chain(potentials, constraints) for i, _ in t.coefficients),
        dtype=np.int64,
        count=num_copies,
    )
    a = np.fromiter(
        (c for t in chain(potentials, constraints) for _, c in t.coefficients),
        dtype=np.float64,
        count=num_copies,
    )

    n = mrf.num_variables
    term = np.repeat(np.arange(num_terms, dtype=np.int64), counts)
    normsq = np.maximum(
        np.bincount(term, weights=a**2, minlength=num_terms), 1e-12
    )
    degree = np.maximum(np.bincount(var, minlength=n).astype(np.float64), 1.0)
    return FlatTermArrays(
        num_variables=n,
        num_potentials=len(potentials),
        kind=kind_arr,
        offset=offset_arr,
        weight=weight_arr,
        normsq=normsq,
        term_ptr=term_ptr,
        var=var,
        term=term,
        coeff=a,
        degree=degree,
    )


def build_partition(
    mrf: HingeLossMRF, block_size: int | None = None
) -> TermPartition:
    """Compile *mrf* into a :class:`TermPartition` (built once per solver).

    With *block_size* unset the partition follows the block extents the
    MRF recorded at grounding time (``mrf.term_partition()``) — one run
    per shard-emitted term block, or a single run on the legacy
    incremental path.  A *block_size* (>= 1) re-chunks the flat term
    range into uniform runs of that many terms instead, decoupling the
    solve granularity from the grounding shard size.  Either way the
    blocks are views into one set of flat arrays, so partitioning adds
    O(num_copies) construction work and essentially no extra memory.

    An MRF carrying precompiled :class:`FlatTermArrays` (attribute
    ``_compiled`` — seeded by the grounding store's mmap attach path)
    skips array assembly entirely: the blocks become zero-copy views
    into the attached arrays.  The precompiled weights may be the
    grounding-time ones, so they are resynced from the MRF's live weight
    vector here — the solver snapshots ``weights_version`` at
    construction and only re-syncs on a later change.
    """
    if block_size is not None and block_size < 1:
        raise InferenceError(f"block_size must be >= 1, got {block_size}")
    num_terms = len(mrf.potentials) + len(mrf.constraints)
    flat = getattr(mrf, "_compiled", None)
    if (
        flat is None
        or flat.num_potentials != len(mrf.potentials)
        or flat.num_terms != num_terms
    ):
        flat = compile_term_arrays(mrf)
    else:
        flat.weight[: flat.num_potentials] = mrf.potential_weights()

    if block_size is not None:
        bounds = tuple(iter_slices(flat.num_terms, block_size))
    else:
        bounds = mrf.term_partition()

    term_ptr, term = flat.term_ptr, flat.term
    blocks = []
    for lo, hi in bounds:
        copy_lo, copy_hi = int(term_ptr[lo]), int(term_ptr[hi])
        kind = flat.kind[lo:hi]
        blocks.append(
            BlockArrays(
                term_lo=lo,
                copy_lo=copy_lo,
                kind=kind,
                offset=flat.offset[lo:hi],
                weight=flat.weight[lo:hi],
                normsq=flat.normsq[lo:hi],
                var=flat.var[copy_lo:copy_hi],
                term=term[copy_lo:copy_hi] - lo,
                coeff=flat.coeff[copy_lo:copy_hi],
                kind_index=_kind_index(kind),
            )
        )
    return TermPartition(
        num_variables=flat.num_variables,
        num_terms=flat.num_terms,
        blocks=tuple(blocks),
        var=flat.var,
        degree=flat.degree,
        term_weights=flat.weight,
        num_potentials=flat.num_potentials,
    )


# -- shared-memory block views -------------------------------------------------

#: Field layout of one block inside a shared segment: term-indexed
#: arrays first, then copy-indexed ones.  All dtypes are 8 bytes, so
#: packing them back to back keeps every view aligned.
_TERM_FIELDS: tuple[tuple[str, type], ...] = (
    ("kind", np.int64),
    ("offset", np.float64),
    ("weight", np.float64),
    ("normsq", np.float64),
)
_COPY_FIELDS: tuple[tuple[str, type], ...] = (
    ("var", np.int64),
    ("term", np.int64),
    ("coeff", np.float64),
)
#: The precompiled per-kind index sets, mirrored alongside the CSR
#: arrays so pool workers dispatch kernels without recomputing masks.
#: One field per KIND_* constant, in kind order; lengths vary per block.
_INDEX_FIELDS: tuple[str, ...] = (
    "hinge_index",
    "squared_index",
    "leq_index",
    "eq_index",
)
_ALL_FIELDS = _TERM_FIELDS + _COPY_FIELDS
_FIELD_DTYPES = dict(_ALL_FIELDS) | {field: np.int64 for field in _INDEX_FIELDS}

#: Most recent shared segments this process has attached to, by name —
#: LRU: hits reinsert, eviction drops the least recently used.  One
#: solve touches one segment many times (every block of every
#: iteration), so caching the attachment makes re-attach free; the bound
#: keeps a long-lived pool worker from accumulating mappings of segments
#: long since unlinked by their drivers while staying above any
#: realistic number of concurrently streaming solves.  Deliberate
#: residual: with no further attach there is no hook left to run the
#: sweep, so an idle persistent worker keeps the *last* solve's
#: segment(s) mapped until the next process-backed solve, a pool
#: recycle, or worker exit — the same bounded warm-state trade-off as
#: the grounding database snapshot the pool initializer installs.
_ATTACHED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CACHE_SIZE = 16


def _sweep_dead_segments() -> None:
    """Drop cached attachments whose segment the driver already unlinked.

    A mapping keeps the physical memory alive even after unlink, so
    without the sweep a worker would pin up to the cache bound's worth
    of finished solves' segments.  Linux-only liveness check (names live
    under ``/dev/shm``); elsewhere the LRU bound is the only limit.
    """
    for name in list(_ATTACHED_SEGMENTS):
        if not os.path.exists(f"/dev/shm/{name}"):
            stale = _ATTACHED_SEGMENTS.pop(name)
            # Drop the parsed solve-state views first so they stop
            # pinning the mapping we are about to close.
            _SOLVE_VIEWS.pop(name, None)
            try:
                stale.close()
            except BufferError:
                pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED_SEGMENTS.pop(name, None)
    if segment is not None:
        _ATTACHED_SEGMENTS[name] = segment  # refresh recency
        return segment
    if os.path.isdir("/dev/shm"):
        # Cache miss = a new solve's segment arriving: a cheap moment to
        # release mappings of segments whose solves have finished.
        _sweep_dead_segments()
    try:
        # Only the creating driver owns the unlink; 3.13+ can say so.
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Older Pythons register every attachment with the resource
        # tracker, which (a) forks a whole tracker process inside each
        # pool worker on first attach and (b) *unlinks* the registered
        # segment when the worker exits — destroying the driver-owned
        # segment out from under everyone else.  Attach with
        # registration suppressed instead; the driver's own handle stays
        # tracked and its release() does the one real unlink.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    while len(_ATTACHED_SEGMENTS) >= _ATTACH_CACHE_SIZE:
        evicted = next(iter(_ATTACHED_SEGMENTS))
        stale = _ATTACHED_SEGMENTS.pop(evicted)
        _SOLVE_VIEWS.pop(evicted, None)
        try:
            stale.close()
        except BufferError:
            pass  # a live view still references it; dropped when it dies
    _ATTACHED_SEGMENTS[name] = segment
    return segment


class SharedBlockArrays:
    """A :class:`BlockArrays` stand-in whose arrays live in shared memory.

    Duck-types everything :func:`block_x_update` (and the solver's
    scatter-gather) reads — ``kind``/``offset``/``weight``/``normsq``
    per term, ``var``/``term``/``coeff`` per copy, plus the extent
    properties — as zero-copy numpy views into a
    ``multiprocessing.shared_memory`` segment.  Pickles as the segment
    name plus a byte-offset layout (a few hundred bytes, independent of
    block size); unpickling attaches the segment by name and rebuilds
    the views lazily, so shipping one of these to a pool worker costs
    O(1) IPC no matter how large the block is.

    The segment is owned by the driver's :class:`SharedPartitionBuffers`
    — views must not be used after the driver releases it.
    """

    def __init__(
        self,
        shm_name: str,
        term_lo: int,
        copy_lo: int,
        layout: dict[str, tuple[int, int]],
        buf: memoryview | None = None,
    ):
        self.shm_name = shm_name
        self.term_lo = term_lo
        self.copy_lo = copy_lo
        self._layout = layout  # field -> (byte offset, length)
        self._views: dict[str, np.ndarray] | None = None
        if buf is not None:
            self._build_views(buf)

    def _build_views(self, buf: memoryview) -> None:
        self._views = {
            field: np.ndarray(
                (length,), dtype=_FIELD_DTYPES[field], buffer=buf, offset=offset
            )
            for field, (offset, length) in self._layout.items()
        }

    def _view(self, field: str) -> np.ndarray:
        if self._views is None:
            self._build_views(_attach_segment(self.shm_name).buf)
        return self._views[field]

    def _drop_views(self) -> None:
        self._views = None

    kind = property(lambda self: self._view("kind"))
    offset = property(lambda self: self._view("offset"))
    weight = property(lambda self: self._view("weight"))
    normsq = property(lambda self: self._view("normsq"))
    var = property(lambda self: self._view("var"))
    term = property(lambda self: self._view("term"))
    coeff = property(lambda self: self._view("coeff"))

    @property
    def kind_index(self) -> tuple[np.ndarray, ...]:
        return tuple(self._view(field) for field in _INDEX_FIELDS)

    @property
    def num_terms(self) -> int:
        return self._layout["kind"][1]

    @property
    def num_copies(self) -> int:
        return self._layout["var"][1]

    @property
    def copy_slice(self) -> slice:
        return slice(self.copy_lo, self.copy_lo + self.num_copies)

    def __getstate__(self) -> dict:
        return {
            "shm_name": self.shm_name,
            "term_lo": self.term_lo,
            "copy_lo": self.copy_lo,
            "layout": self._layout,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["shm_name"], state["term_lo"], state["copy_lo"], state["layout"]
        )

    def __repr__(self) -> str:
        return (
            f"SharedBlockArrays(shm={self.shm_name!r}, term_lo={self.term_lo}, "
            f"terms={self.num_terms}, copies={self.num_copies})"
        )


class SharedSegmentOwner:
    """Base for driver-owned ``multiprocessing.shared_memory`` segments.

    Subclasses allocate ``self._segment`` in their constructors; this
    base owns the one real teardown: :meth:`release` (idempotent; also
    run by ``__del__`` and on context-manager exit) drops any exported
    views, closes the driver's mapping, and **unlinks** the segment,
    after which attach-by-name fails and worker mappings die with their
    processes.  ``repro lint``'s RPL003 recognizes subclasses of this
    base as segment owners, so inheriting the lifecycle keeps the
    checker's create/unlink discipline machine-verified.
    """

    _segment: shared_memory.SharedMemory | None = None

    def _drop_exports(self) -> None:
        """Drop live numpy views so the mapping can close (subclass hook)."""

    @property
    def name(self) -> str | None:
        return self._segment.name if self._segment is not None else None

    @property
    def released(self) -> bool:
        return self._segment is None

    def release(self) -> None:
        """Close and unlink the segment (idempotent, driver-owned)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        self._drop_exports()
        try:
            segment.close()
        except BufferError:
            pass  # an outstanding view pins the mapping; unlink regardless
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:
            pass


class SharedPartitionBuffers(SharedSegmentOwner):
    """Driver-owned shared-memory copies of a partition's block arrays.

    Construction copies every block's arrays (and precompiled kind index
    sets) once into a single fresh ``multiprocessing.shared_memory``
    segment and exposes them as :attr:`blocks` —
    :class:`SharedBlockArrays` parallel to ``partition.blocks``.  The
    driver that built the buffers owns the segment (see
    :class:`SharedSegmentOwner`); callers must release on every exit
    path — the ADMM solver ties the segment to its own lifetime so even
    a raising solve cannot leak it.
    """

    def __init__(self, partition: TermPartition):
        layouts: list[dict[str, tuple[int, int]]] = []
        total = 0
        for block in partition.blocks:
            layout: dict[str, tuple[int, int]] = {}
            for field, dtype in _TERM_FIELDS:
                layout[field] = (total, block.num_terms)
                total += block.num_terms * np.dtype(dtype).itemsize
            for field, dtype in _COPY_FIELDS:
                layout[field] = (total, block.num_copies)
                total += block.num_copies * np.dtype(dtype).itemsize
            for field, idx in zip(_INDEX_FIELDS, block.kind_index):
                layout[field] = (total, len(idx))
                total += len(idx) * np.dtype(np.int64).itemsize
            layouts.append(layout)
        self._segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        self.blocks: tuple[SharedBlockArrays, ...] = ()
        try:
            blocks = []
            for block, layout in zip(partition.blocks, layouts):
                shared = SharedBlockArrays(
                    self._segment.name,
                    block.term_lo,
                    block.copy_lo,
                    layout,
                    buf=self._segment.buf,
                )
                for field, _ in _ALL_FIELDS:
                    np.copyto(
                        shared._view(field), getattr(block, field), casting="same_kind"
                    )
                for field, idx in zip(_INDEX_FIELDS, block.kind_index):
                    np.copyto(shared._view(field), idx, casting="same_kind")
                # Drop the driver-side views right away: the driver reads
                # through the regular partition, and live exports would make
                # the mapping impossible to close on release.
                shared._drop_views()
                blocks.append(shared)
            self.blocks = tuple(blocks)
        except BaseException:
            # A failed copy must not strand the created segment — no
            # caller holds a handle to release yet.
            self.release()
            raise

    def _drop_exports(self) -> None:
        for block in self.blocks:
            block._drop_views()

    def write_weights(self, partition: TermPartition) -> None:
        """Push *partition*'s current block weights into the shared segment.

        The weight write-through of the ground-once/reweight-many
        pipeline: after an in-place
        :meth:`TermPartition.set_potential_weights`, this copies each
        block's (view-backed) weight array over its shared-memory
        mirror.  Worker processes hold zero-copy views into the same
        segment, so persistent pool workers observe the new weights on
        their next block update — no re-staging, no descriptor changes,
        no pool recycling.  Structure fields are never rewritten.
        """
        if self._segment is None:
            raise InferenceError("shared partition buffers already released")
        buf = self._segment.buf
        for block, mirror in zip(partition.blocks, self.blocks):
            offset, length = mirror._layout["weight"]
            view = np.ndarray((length,), dtype=np.float64, buffer=buf, offset=offset)
            np.copyto(view, block.weight, casting="same_kind")
            del view  # a live export would pin the mapping on release


# -- shared solve state (zero-IPC per-iteration consensus arrays) --------------

#: Byte size of a solve-state segment's header: three little-endian
#: int64s — num_variables, num_copies, manifest byte length.
_STATE_HEADER_BYTES = 24


def _state_views(
    buf: memoryview, n: int, copies: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Map a solve-state segment's arrays: z, u, x[0], x[1], manifest offset."""
    offset = _STATE_HEADER_BYTES
    z = np.ndarray((n,), dtype=np.float64, buffer=buf, offset=offset)
    offset += 8 * n
    u = np.ndarray((copies,), dtype=np.float64, buffer=buf, offset=offset)
    offset += 8 * copies
    x0 = np.ndarray((copies,), dtype=np.float64, buffer=buf, offset=offset)
    offset += 8 * copies
    x1 = np.ndarray((copies,), dtype=np.float64, buffer=buf, offset=offset)
    offset += 8 * copies
    return z, u, x0, x1, offset


class SharedSolveState(SharedSegmentOwner):
    """Driver-owned shared-memory consensus state for one ADMM solver.

    Holds the full per-iteration state — consensus vector :attr:`z`,
    duals :attr:`u`, and a double-buffered local-copy vector ``x`` — in
    one ``multiprocessing.shared_memory`` segment, followed by a pickled
    manifest (extents plus the partition's :class:`SharedBlockArrays`
    descriptors) that workers parse once per segment.  With it, a
    process-mapped ADMM iteration ships only ``(segment name, block
    index, rho, generation)`` per block — O(num_blocks) bytes,
    independent of problem size: workers compute their
    ``v = z[var] - u[copy_slice]`` from zero-copy views, write ``x``
    straight into the generation's buffer, and the map result
    degenerates to an ack (see :func:`apply_shared_solve_update`).

    ``x`` is double-buffered by generation parity: the buffer written in
    iteration *g* is not the one any straggling writer of an adjacent
    generation could touch.  The solver's one-map-per-iteration barrier
    already serializes generations, so this is belt and braces that also
    keeps the layout safe for pipelined executors.

    Like :class:`SharedPartitionBuffers`, the creating driver owns the
    unlink (:meth:`release`); worker attachments are cached per process
    and swept once the driver unlinks.
    """

    z: np.ndarray | None = None
    u: np.ndarray | None = None

    def __init__(
        self, partition: TermPartition, blocks: tuple[SharedBlockArrays, ...]
    ):
        n, copies = partition.num_variables, partition.num_copies
        manifest = pickle.dumps(
            tuple(blocks), protocol=pickle.HIGHEST_PROTOCOL
        )
        size = _STATE_HEADER_BYTES + 8 * (n + 3 * copies) + len(manifest)
        self._segment = shared_memory.SharedMemory(create=True, size=max(size, 1))
        try:
            buf = self._segment.buf
            header = np.ndarray((3,), dtype=np.int64, buffer=buf)
            header[:] = (n, copies, len(manifest))
            del header  # a live export would pin the mapping on release
            z, u, x0, x1, manifest_at = _state_views(buf, n, copies)
            buf[manifest_at : manifest_at + len(manifest)] = manifest
            self.z, self.u = z, u
            self._x = (x0, x1)
        except BaseException:
            self.release()
            raise

    def x_buffer(self, generation: int) -> np.ndarray:
        """The local-copy buffer that *generation*'s workers write."""
        return self._x[generation & 1]

    def _drop_exports(self) -> None:
        self.z = None
        self.u = None
        self._x = ()


@dataclass(frozen=True)
class _SolveStateViews:
    """A worker's parsed, cached view of one solve-state segment."""

    z: np.ndarray
    u: np.ndarray
    x: tuple[np.ndarray, np.ndarray]
    blocks: tuple[SharedBlockArrays, ...]


#: Parsed solve-state views by segment name — populated on a worker's
#: first payload for a solve, dropped alongside the corresponding
#: attach-cache entry (dead-segment sweep / LRU eviction) so finished
#: solves release their memory.
_SOLVE_VIEWS: dict[str, _SolveStateViews] = {}


def _solve_state_views(name: str) -> _SolveStateViews:
    views = _SOLVE_VIEWS.get(name)
    if views is None:
        buf = _attach_segment(name).buf
        n, copies, manifest_len = (
            int(v) for v in np.ndarray((3,), dtype=np.int64, buffer=buf)
        )
        z, u, x0, x1, manifest_at = _state_views(buf, n, copies)
        blocks = pickle.loads(bytes(buf[manifest_at : manifest_at + manifest_len]))
        views = _SolveStateViews(z=z, u=u, x=(x0, x1), blocks=blocks)
        _SOLVE_VIEWS[name] = views
    return views


def apply_shared_solve_update(payload: tuple[str, int, float, int]) -> int:
    """Executor-map adapter for the zero-IPC ADMM local step.

    *payload* is ``(solve-state segment name, block index, rho,
    generation)`` — a few dozen bytes.  Everything else comes out of
    shared memory: the block's CSR arrays via the manifest's
    attach-by-name descriptors, ``v = z[var] - u[copy_slice]`` from the
    live consensus views (exactly the slice the driver would have
    pickled), and the block's x-update written straight into the
    generation's buffer.  Returns the block index as the ack.
    """
    name, index, rho, generation = payload
    state = _solve_state_views(name)
    block = state.blocks[index]
    sl = block.copy_slice
    v = state.z[block.var] - state.u[sl]
    state.x[generation & 1][sl] = block_x_update(block, v, rho)
    return index
