"""A self-contained mini-PSL: hinge-loss MRFs with ADMM MAP inference.

The paper casts mapping selection as inference in a probabilistic soft
logic (PSL) model.  The reference PSL implementation is a Java system;
this package re-implements the needed core in pure Python + numpy:

* first-order rules with Lukasiewicz semantics (:mod:`repro.psl.rule`),
* grounding against an observation database (:mod:`repro.psl.grounding`),
* hinge-loss MRFs (:mod:`repro.psl.hlmrf`),
* sharded, executor-mapped grounding (:mod:`repro.psl.sharding`),
* consensus-ADMM MAP inference (:mod:`repro.psl.admm`),
* discrete rounding utilities (:mod:`repro.psl.rounding`).
"""

from repro.psl.admm import AdmmResult, AdmmSettings, AdmmSolver, AdmmWarmState
from repro.psl.partition import (
    BlockArrays,
    SharedBlockArrays,
    SharedPartitionBuffers,
    SharedSolveState,
    TermPartition,
    build_partition,
)
from repro.psl.database import Database
from repro.psl.hlmrf import HardConstraint, HingeLossMRF, HingePotential
from repro.psl.learning import RuleLearningResult, learn_rule_weights, rule_features
from repro.psl.predicate import GroundAtom, Predicate
from repro.psl.program import GroundedProgram, InferenceResult, PslProgram
from repro.psl.rounding import (
    local_search,
    randomized_rounding,
    round_solution,
    threshold_sweep,
)
from repro.psl.rule import Literal, Rule, RuleVariable, V, lit, neg
from repro.psl.sharding import (
    GroundingShard,
    GroundingStats,
    ShardResult,
    TermBlock,
    TermBlockBuilder,
    ground_shards,
    mrf_fingerprint,
    structure_fingerprint,
)

__all__ = [
    "AdmmResult",
    "AdmmSettings",
    "BlockArrays",
    "SharedBlockArrays",
    "SharedPartitionBuffers",
    "SharedSolveState",
    "AdmmSolver",
    "AdmmWarmState",
    "Database",
    "GroundAtom",
    "GroundingShard",
    "GroundingStats",
    "HardConstraint",
    "GroundedProgram",
    "HingeLossMRF",
    "HingePotential",
    "InferenceResult",
    "ShardResult",
    "TermBlock",
    "TermBlockBuilder",
    "Literal",
    "RuleLearningResult",
    "Predicate",
    "PslProgram",
    "Rule",
    "RuleVariable",
    "V",
    "TermPartition",
    "build_partition",
    "ground_shards",
    "learn_rule_weights",
    "lit",
    "local_search",
    "mrf_fingerprint",
    "structure_fingerprint",
    "randomized_rounding",
    "neg",
    "round_solution",
    "rule_features",
    "threshold_sweep",
]
