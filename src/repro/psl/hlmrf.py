"""Hinge-loss Markov random fields.

The MAP problem of a HL-MRF (Bach, Broecheler, Huang, Getoor, JMLR 2017)
is the convex program::

    minimize    sum_k  w_k * max(0, a_k^T x + b_k)^{p_k}     (p_k in {1,2})
    subject to  a_c^T x + b_c  (<=|==) 0   for hard constraints
                x in [0, 1]^n

Variables are PSL ground atoms; potentials come from weighted rule
groundings (or are added directly).  Solved by consensus ADMM in
:mod:`repro.psl.admm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import InferenceError
from repro.psl.predicate import GroundAtom

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.psl.sharding import TermBlock

#: Term kinds shared by the sharded grounding path and the ADMM solver.
KIND_HINGE = 0
KIND_SQUARED = 1
KIND_LEQ = 2
KIND_EQ = 3


def filter_potential_terms(
    pairs: Iterable[tuple[object, float]],
    offset: float,
    weight: float,
    squared: bool,
) -> tuple[list[tuple[object, float]], float]:
    """Shared normalization of one potential's terms.

    The single source of truth for potential semantics, used by both the
    incremental :meth:`HingeLossMRF.add_potential` path and the sharded
    :class:`~repro.psl.sharding.TermBlockBuilder`, so the two can never
    diverge.  Validates the weight, drops zero-weight potentials,
    filters zero coefficients (normalizing values to float), and folds
    potentials that reduce to constants into an energy delta.  Returns
    ``(kept pairs, constant-energy delta)``; an empty pair list means
    nothing should be appended.
    """
    if weight < 0:
        raise InferenceError(f"potential weight must be non-negative, got {weight}")
    if weight == 0:
        return [], 0.0
    kept = [(a, float(c)) for a, c in pairs if c]
    if not kept:
        hinge = max(0.0, float(offset))
        return [], weight * (hinge * hinge if squared else hinge)
    return kept, 0.0


def filter_constraint_terms(
    pairs: Iterable[tuple[object, float]],
    offset: float,
    equality: bool,
) -> list[tuple[object, float]]:
    """Shared normalization of one hard constraint's terms.

    Filters zero coefficients (normalizing values to float); a constraint
    with no remaining terms is dropped when trivially satisfied and
    rejected when infeasible.  The counterpart of
    :func:`filter_potential_terms` for constraints.
    """
    kept = [(a, float(c)) for a, c in pairs if c]
    if not kept:
        if (equality and abs(offset) > 1e-9) or (not equality and offset > 1e-9):
            raise InferenceError(f"infeasible constant constraint offset={offset}")
        return []
    return kept


@dataclass(frozen=True)
class HingePotential:
    """``weight * max(0, sum(coeff*x) + offset)``, optionally squared."""

    coefficients: tuple[tuple[int, float], ...]
    offset: float
    weight: float
    squared: bool = False

    def value(self, x) -> float:
        s = self.offset + sum(c * x[i] for i, c in self.coefficients)
        hinge = max(0.0, s)
        return self.weight * (hinge * hinge if self.squared else hinge)


@dataclass(frozen=True)
class HardConstraint:
    """``sum(coeff*x) + offset <= 0`` (or ``== 0`` when *equality*)."""

    coefficients: tuple[tuple[int, float], ...]
    offset: float
    equality: bool = False

    def violation(self, x) -> float:
        s = self.offset + sum(c * x[i] for i, c in self.coefficients)
        return abs(s) if self.equality else max(0.0, s)


@dataclass
class HingeLossMRF:
    """A HL-MRF over named ground atoms.

    Use :meth:`variable_index` to intern atoms as variables, then add
    potentials and constraints in terms of atom keys — or, on the sharded
    grounding path, :meth:`intern_atoms` + :meth:`add_term_block` to
    append whole compact term blocks at once.

    ``constant_energy`` accumulates potentials whose coefficients all
    vanish (empty or all-zero with a positive offset): they do not affect
    the minimizer, but :meth:`energy` must include them for the reported
    objective to equal the true one.

    Every :meth:`add_term_block` call also records the block's extent in
    the potential and constraint lists, so the shard structure chosen at
    grounding time survives into the model; :meth:`term_partition` hands
    those extents to the partitioned ADMM solver
    (:mod:`repro.psl.partition`) as contiguous runs of the flat
    potentials-then-constraints term order.
    """

    variables: list[GroundAtom] = field(default_factory=list)
    _index: dict[GroundAtom, int] = field(default_factory=dict)
    potentials: list[HingePotential] = field(default_factory=list)
    constraints: list[HardConstraint] = field(default_factory=list)
    constant_energy: float = 0.0
    #: (pot_lo, pot_hi, con_lo, con_hi) extents of each add_term_block call.
    _block_extents: list[tuple[int, int, int, int]] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def variable_index(self, atom: GroundAtom) -> int:
        """Intern *atom* as a variable and return its index."""
        idx = self._index.get(atom)
        if idx is None:
            idx = len(self.variables)
            self._index[atom] = idx
            self.variables.append(atom)
        return idx

    def intern_atoms(self, atoms: Iterable[GroundAtom]) -> list[int]:
        """Intern *atoms* in order; returns their variable indices."""
        return [self.variable_index(a) for a in atoms]

    def index_of(self, atom: GroundAtom) -> int:
        try:
            return self._index[atom]
        except KeyError:
            raise InferenceError(f"{atom} is not a variable of this MRF") from None

    def add_potential(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        weight: float,
        squared: bool = False,
    ) -> None:
        """Add ``weight * max(0, sum coeff*atom + offset)^(2 if squared)``.

        A potential whose coefficients are empty (or all zero) is a
        *constant*: it cannot influence the minimizer, but its energy
        ``weight * max(0, offset)^p`` is real and is tracked in
        :attr:`constant_energy` so :meth:`energy` reports the true
        objective instead of silently dropping it.
        """
        kept, constant = filter_potential_terms(
            coefficients.items(), offset, weight, squared
        )
        self.constant_energy += constant
        if not kept:
            return
        self.potentials.append(
            HingePotential(
                tuple((self.variable_index(a), c) for a, c in kept),
                float(offset),
                float(weight),
                squared,
            )
        )

    def add_constraint(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        equality: bool = False,
    ) -> None:
        """Add a hard linear constraint over atoms."""
        kept = filter_constraint_terms(coefficients.items(), offset, equality)
        if not kept:
            return
        self.constraints.append(
            HardConstraint(
                tuple((self.variable_index(a), c) for a, c in kept),
                float(offset),
                equality,
            )
        )

    def add_term_block(self, atoms: Iterable[GroundAtom], block: "TermBlock") -> None:
        """Append a compact shard-emitted term block (bulk construction).

        *atoms* is the block's shard-local atom table; it is interned once
        and every term's local indices are remapped through it, so the
        per-potential ``Mapping[GroundAtom, float]`` dicts of the
        incremental API never materialize.  Term order inside the block is
        preserved, which is what makes sharded merges reproduce the serial
        potential/constraint order byte for byte.
        """
        local_to_global = self.intern_atoms(atoms)
        self.constant_energy += block.constant_energy
        pot_before, con_before = len(self.potentials), len(self.constraints)
        kinds = block.kinds
        offsets = block.offsets
        weights = block.weights
        ptr = block.term_ptr
        atom_index = block.atom_index
        coefficient = block.coefficient
        for t in range(block.num_terms):
            pairs = tuple(
                (local_to_global[atom_index[k]], float(coefficient[k]))
                for k in range(ptr[t], ptr[t + 1])
            )
            kind = int(kinds[t])
            if kind in (KIND_HINGE, KIND_SQUARED):
                self.potentials.append(
                    HingePotential(
                        pairs, float(offsets[t]), float(weights[t]), kind == KIND_SQUARED
                    )
                )
            else:
                self.constraints.append(
                    HardConstraint(pairs, float(offsets[t]), kind == KIND_EQ)
                )
        self._block_extents.append(
            (pot_before, len(self.potentials), con_before, len(self.constraints))
        )

    def term_partition(self) -> tuple[tuple[int, int], ...]:
        """Block boundaries as ``[lo, hi)`` runs of the flat term order.

        The flat term order is the one the ADMM solver uses: all
        potentials in list order, then all constraints.  A grounding
        block whose extent holds both potentials and constraints
        contributes two runs (its potential slice and its constraint
        slice), so every run is contiguous in the flat order — the
        property that makes the partitioned solver's consensus
        accumulation bit-identical to the flat one.

        On the legacy incremental path (no :meth:`add_term_block` calls),
        or whenever the recorded extents do not exactly tile the
        potential/constraint lists (mixed bulk + incremental
        construction), the partition degrades to a single run covering
        everything — always safe, never wrong.
        """
        num_potentials, num_constraints = len(self.potentials), len(self.constraints)
        total = num_potentials + num_constraints
        if total == 0:
            return ()
        pot_runs: list[tuple[int, int]] = []
        con_runs: list[tuple[int, int]] = []
        next_pot = next_con = 0
        for pot_lo, pot_hi, con_lo, con_hi in self._block_extents:
            if pot_lo != next_pot or con_lo != next_con:
                return ((0, total),)
            next_pot, next_con = pot_hi, con_hi
            if pot_hi > pot_lo:
                pot_runs.append((pot_lo, pot_hi))
            if con_hi > con_lo:
                con_runs.append((con_lo, con_hi))
        if next_pot != num_potentials or next_con != num_constraints:
            return ((0, total),)
        return tuple(pot_runs) + tuple(
            (num_potentials + lo, num_potentials + hi) for lo, hi in con_runs
        )

    def energy(self, x) -> float:
        """Total weighted hinge loss at *x* (ignores constraints)."""
        return self.constant_energy + sum(p.value(x) for p in self.potentials)

    def max_violation(self, x) -> float:
        """Largest hard-constraint violation at *x*."""
        if not self.constraints:
            return 0.0
        return max(c.violation(x) for c in self.constraints)
