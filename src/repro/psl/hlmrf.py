"""Hinge-loss Markov random fields.

The MAP problem of a HL-MRF (Bach, Broecheler, Huang, Getoor, JMLR 2017)
is the convex program::

    minimize    sum_k  w_k * max(0, a_k^T x + b_k)^{p_k}     (p_k in {1,2})
    subject to  a_c^T x + b_c  (<=|==) 0   for hard constraints
                x in [0, 1]^n

Variables are PSL ground atoms; potentials come from weighted rule
groundings (or are added directly).  Solved by consensus ADMM in
:mod:`repro.psl.admm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import InferenceError
from repro.psl.predicate import GroundAtom


@dataclass(frozen=True)
class HingePotential:
    """``weight * max(0, sum(coeff*x) + offset)``, optionally squared."""

    coefficients: tuple[tuple[int, float], ...]
    offset: float
    weight: float
    squared: bool = False

    def value(self, x) -> float:
        s = self.offset + sum(c * x[i] for i, c in self.coefficients)
        hinge = max(0.0, s)
        return self.weight * (hinge * hinge if self.squared else hinge)


@dataclass(frozen=True)
class HardConstraint:
    """``sum(coeff*x) + offset <= 0`` (or ``== 0`` when *equality*)."""

    coefficients: tuple[tuple[int, float], ...]
    offset: float
    equality: bool = False

    def violation(self, x) -> float:
        s = self.offset + sum(c * x[i] for i, c in self.coefficients)
        return abs(s) if self.equality else max(0.0, s)


@dataclass
class HingeLossMRF:
    """A HL-MRF over named ground atoms.

    Use :meth:`variable_index` to intern atoms as variables, then add
    potentials and constraints in terms of atom keys.
    """

    variables: list[GroundAtom] = field(default_factory=list)
    _index: dict[GroundAtom, int] = field(default_factory=dict)
    potentials: list[HingePotential] = field(default_factory=list)
    constraints: list[HardConstraint] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def variable_index(self, atom: GroundAtom) -> int:
        """Intern *atom* as a variable and return its index."""
        idx = self._index.get(atom)
        if idx is None:
            idx = len(self.variables)
            self._index[atom] = idx
            self.variables.append(atom)
        return idx

    def index_of(self, atom: GroundAtom) -> int:
        try:
            return self._index[atom]
        except KeyError:
            raise InferenceError(f"{atom} is not a variable of this MRF") from None

    def add_potential(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        weight: float,
        squared: bool = False,
    ) -> None:
        """Add ``weight * max(0, sum coeff*atom + offset)^(2 if squared)``."""
        if weight < 0:
            raise InferenceError(f"potential weight must be non-negative, got {weight}")
        if weight == 0 or not coefficients:
            return
        self.potentials.append(
            HingePotential(
                tuple((self.variable_index(a), c) for a, c in coefficients.items() if c),
                offset,
                weight,
                squared,
            )
        )

    def add_constraint(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        equality: bool = False,
    ) -> None:
        """Add a hard linear constraint over atoms."""
        coeffs = tuple((self.variable_index(a), c) for a, c in coefficients.items() if c)
        if not coeffs:
            if (equality and abs(offset) > 1e-9) or (not equality and offset > 1e-9):
                raise InferenceError(f"infeasible constant constraint offset={offset}")
            return
        self.constraints.append(HardConstraint(coeffs, offset, equality))

    def energy(self, x) -> float:
        """Total weighted hinge loss at *x* (ignores constraints)."""
        return sum(p.value(x) for p in self.potentials)

    def max_violation(self, x) -> float:
        """Largest hard-constraint violation at *x*."""
        if not self.constraints:
            return 0.0
        return max(c.violation(x) for c in self.constraints)
