"""Hinge-loss Markov random fields.

The MAP problem of a HL-MRF (Bach, Broecheler, Huang, Getoor, JMLR 2017)
is the convex program::

    minimize    sum_k  w_k * max(0, a_k^T x + b_k)^{p_k}     (p_k in {1,2})
    subject to  a_c^T x + b_c  (<=|==) 0   for hard constraints
                x in [0, 1]^n

Variables are PSL ground atoms; potentials come from weighted rule
groundings (or are added directly).  Solved by consensus ADMM in
:mod:`repro.psl.admm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import InferenceError
from repro.psl.predicate import GroundAtom

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.psl.sharding import TermBlock

#: Term kinds shared by the sharded grounding path and the ADMM solver.
KIND_HINGE = 0
KIND_SQUARED = 1
KIND_LEQ = 2
KIND_EQ = 3


def filter_potential_terms(
    pairs: Iterable[tuple[object, float]],
    offset: float,
    weight: float,
    squared: bool,
) -> tuple[list[tuple[object, float]], float, float]:
    """Shared normalization of one potential's terms.

    The single source of truth for potential semantics, used by both the
    incremental :meth:`HingeLossMRF.add_potential` path and the sharded
    :class:`~repro.psl.sharding.TermBlockBuilder`, so the two can never
    diverge.  Validates the weight, drops zero-weight potentials,
    filters zero coefficients (normalizing values to float), and folds
    potentials that reduce to constants into an energy delta.  Returns
    ``(kept pairs, constant-energy delta, constant hinge mass)`` — the
    mass is the *unweighted* ``hinge^p`` of a folded constant (delta =
    weight * mass), what reweighting needs to rescale the constant
    without re-grounding.  An empty pair list means nothing should be
    appended.
    """
    if weight < 0:
        raise InferenceError(f"potential weight must be non-negative, got {weight}")
    if weight == 0:
        return [], 0.0, 0.0
    kept = [(a, float(c)) for a, c in pairs if c]
    if not kept:
        hinge = max(0.0, float(offset))
        mass = hinge * hinge if squared else hinge
        return [], weight * mass, mass
    return kept, 0.0, 0.0


def filter_constraint_terms(
    pairs: Iterable[tuple[object, float]],
    offset: float,
    equality: bool,
) -> list[tuple[object, float]]:
    """Shared normalization of one hard constraint's terms.

    Filters zero coefficients (normalizing values to float); a constraint
    with no remaining terms is dropped when trivially satisfied and
    rejected when infeasible.  The counterpart of
    :func:`filter_potential_terms` for constraints.
    """
    kept = [(a, float(c)) for a, c in pairs if c]
    if not kept:
        if (equality and abs(offset) > 1e-9) or (not equality and offset > 1e-9):
            raise InferenceError(f"infeasible constant constraint offset={offset}")
        return []
    return kept


@dataclass(frozen=True)
class HingePotential:
    """``weight * max(0, sum(coeff*x) + offset)``, optionally squared."""

    coefficients: tuple[tuple[int, float], ...]
    offset: float
    weight: float
    squared: bool = False

    def value(self, x) -> float:
        s = self.offset + sum(c * x[i] for i, c in self.coefficients)
        hinge = max(0.0, s)
        return self.weight * (hinge * hinge if self.squared else hinge)

    def unit_value(self, x) -> float:
        """The unweighted hinge mass ``max(0, a^T x + b)^p`` at *x*.

        The potential's feature value: ``value(x) == weight *
        unit_value(x)`` up to rounding.  Weight-independent, which is
        what structure fingerprints and per-group hinge masses need.
        """
        s = self.offset + sum(c * x[i] for i, c in self.coefficients)
        hinge = max(0.0, s)
        return hinge * hinge if self.squared else hinge


@dataclass(frozen=True)
class HardConstraint:
    """``sum(coeff*x) + offset <= 0`` (or ``== 0`` when *equality*)."""

    coefficients: tuple[tuple[int, float], ...]
    offset: float
    equality: bool = False

    def violation(self, x) -> float:
        s = self.offset + sum(c * x[i] for i, c in self.coefficients)
        return abs(s) if self.equality else max(0.0, s)


class _LazyTermList:
    """Deferred potential/constraint objects of a store-attached MRF.

    Building the per-term objects is the expensive half of attaching a
    spilled grounding (:func:`rebuild_mrf`), and the hot path never
    reads them: the ADMM stack solves off the precompiled flat arrays,
    :meth:`HingeLossMRF.energy` slices them too, reweighting updates the
    weight *vector* (see :meth:`HingeLossMRF._set_weight`), and the
    structural checks only take ``len()``.  This sequence therefore
    defers building the objects until something actually subscripts,
    iterates, or pickles it — fingerprints, the energy fallback, the
    per-potential diagnostics.  Materialization reads the MRF's *live*
    weight vector, so weights rewritten before the first touch are
    reflected exactly, as if the objects had existed all along.
    """

    __slots__ = ("_length", "_build", "_items")

    def __init__(self, length: int, build):
        self._length = length
        self._build = build
        self._items: list | None = None

    @property
    def materialized(self) -> bool:
        return self._items is not None

    def _force(self) -> list:
        if self._items is None:
            items = self._build()
            if len(items) != self._length:
                raise InferenceError(
                    f"deferred term list built {len(items)} objects, "
                    f"expected {self._length}"
                )
            self._items = items
            self._build = None
        return self._items

    def __len__(self) -> int:
        return self._length if self._items is None else len(self._items)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index):
        return self._force()[index]

    def __setitem__(self, index, value) -> None:
        self._force()[index] = value

    def __iter__(self):
        return iter(self._force())

    def __eq__(self, other):
        if isinstance(other, _LazyTermList):
            other = other._force()
        if isinstance(other, list):
            return self._force() == other
        return NotImplemented

    def append(self, value) -> None:
        self._force().append(value)
        self._length = len(self._items)

    def __reduce__(self):
        # Pickle as the plain list: receivers get ordinary objects, and
        # the build closure (which may hold mmap views) never ships.
        return (list, (self._force(),))


@dataclass
class HingeLossMRF:
    """A HL-MRF over named ground atoms.

    Use :meth:`variable_index` to intern atoms as variables, then add
    potentials and constraints in terms of atom keys — or, on the sharded
    grounding path, :meth:`intern_atoms` + :meth:`add_term_block` to
    append whole compact term blocks at once.

    ``constant_energy`` accumulates potentials whose coefficients all
    vanish (empty or all-zero with a positive offset): they do not affect
    the minimizer, but :meth:`energy` must include them for the reported
    objective to equal the true one.

    Every :meth:`add_term_block` call also records the block's extent in
    the potential and constraint lists, so the shard structure chosen at
    grounding time survives into the model; :meth:`term_partition` hands
    those extents to the partitioned ADMM solver
    (:mod:`repro.psl.partition`) as contiguous runs of the flat
    potentials-then-constraints term order.

    **Weights vs structure.**  The HL-MRF energy is *linear* in the
    potential weights, so weights are first-class mutable state, kept
    separate from the (immutable once grounded) term structure.  Every
    potential carries an optional *origin group* — the rule or objective
    component it was grounded from — and its weight lives in one
    contiguous per-potential vector (:meth:`potential_weights`).
    :meth:`set_group_weights` / :meth:`set_group_potential_weights` /
    :meth:`set_potential_weights` rewrite weights in place (bumping
    :attr:`weights_version` so compiled solver partitions know to
    resync) without touching structure — the "ground once, reweight
    many" contract: a reweighted MRF is element-for-element identical to
    one freshly grounded at the new weights, provided no weight crosses
    zero (zero-weight potentials are dropped at grounding time, so a
    zero-crossing changes structure and is rejected).
    """

    variables: list[GroundAtom] = field(default_factory=list)
    _index: dict[GroundAtom, int] = field(default_factory=dict)
    potentials: list[HingePotential] = field(default_factory=list)
    constraints: list[HardConstraint] = field(default_factory=list)
    constant_energy: float = 0.0
    #: (pot_lo, pot_hi, con_lo, con_hi) extents of each add_term_block call.
    _block_extents: list[tuple[int, int, int, int]] = field(default_factory=list)
    #: Per-potential origin-group id (-1 = fixed weight, no group).
    potential_groups: list[int] = field(default_factory=list)
    #: Bumped by every weight mutation; consumers cache against it.
    weights_version: int = 0
    _pot_weights: list[float] = field(default_factory=list)
    _group_ids: dict[Hashable, int] = field(default_factory=dict)
    _group_keys: list[Hashable] = field(default_factory=list)
    _group_members: dict[int, list[int]] = field(default_factory=dict)
    #: Per-group unweighted constant hinge mass and its currently
    #: weighted contribution to ``constant_energy``.
    _constant_mass: dict[int, float] = field(default_factory=dict)
    _constant_weighted: dict[int, float] = field(default_factory=dict)
    #: Groups that had potentials *dropped* because they were ground at
    #: weight zero: reweighting them to a non-zero weight would need the
    #: dropped structure back, so it is rejected (re-ground instead).
    _zero_dropped: set[int] = field(default_factory=set)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def _ensure_index(self) -> dict[GroundAtom, int]:
        """The atom→index map, rebuilt when it lags ``variables``.

        Normal grounding keeps the two in lockstep; a store-attached MRF
        (:func:`rebuild_mrf`) starts with an empty map and pays the atom
        hashing only when something actually resolves atoms — never on
        the attach path itself.
        """
        index = self._index
        if len(index) != len(self.variables):
            index = {atom: i for i, atom in enumerate(self.variables)}
            self._index = index
        return index

    def variable_index(self, atom: GroundAtom) -> int:
        """Intern *atom* as a variable and return its index."""
        index = self._ensure_index()
        idx = index.get(atom)
        if idx is None:
            idx = len(self.variables)
            index[atom] = idx
            self.variables.append(atom)
        return idx

    def intern_atoms(self, atoms: Iterable[GroundAtom]) -> list[int]:
        """Intern *atoms* in order; returns their variable indices."""
        return [self.variable_index(a) for a in atoms]

    def index_of(self, atom: GroundAtom) -> int:
        try:
            return self._ensure_index()[atom]
        except KeyError:
            raise InferenceError(f"{atom} is not a variable of this MRF") from None

    # -- origin groups and weights -------------------------------------------

    def group_id(self, key: Hashable) -> int:
        """Intern *key* (a rule / objective component) as an origin group."""
        gid = self._group_ids.get(key)
        if gid is None:
            gid = len(self._group_keys)
            self._group_ids[key] = gid
            self._group_keys.append(key)
            self._group_members[gid] = []
        return gid

    @property
    def group_keys(self) -> tuple[Hashable, ...]:
        """All interned origin-group keys, in intern order (id order)."""
        return tuple(self._group_keys)

    def group_members(self, key: Hashable) -> tuple[int, ...]:
        """Potential indices belonging to group *key* (append order)."""
        gid = self._group_ids.get(key)
        if gid is None:
            return ()
        return tuple(self._group_members[gid])

    def potential_weights(self) -> np.ndarray:
        """The per-potential weight vector as a contiguous float64 array.

        A snapshot copy: mutate weights through the ``set_*`` methods
        (which keep the potentials, the constant energy, and
        :attr:`weights_version` consistent), not by writing into this
        array.
        """
        return np.asarray(self._pot_weights, dtype=np.float64)

    def _record_constant(self, gid: int, mass: float, weighted: float) -> None:
        if mass:
            self._constant_mass[gid] = self._constant_mass.get(gid, 0.0) + mass
            self._constant_weighted[gid] = (
                self._constant_weighted.get(gid, 0.0) + weighted
            )

    def _set_weight(self, i: int, weight: float) -> None:
        if self._pot_weights[i] != weight:
            potentials = self.potentials
            if isinstance(potentials, _LazyTermList) and not potentials.materialized:
                # Store-attached MRF whose term objects are still
                # deferred: they materialize from the live weight
                # vector, so updating the vector alone keeps them exact
                # — and reweighting stays free of object construction.
                self._pot_weights[i] = weight
                return
            potentials[i] = replace(potentials[i], weight=weight)
            self._pot_weights[i] = weight

    @staticmethod
    def _check_new_weight(key: Hashable, weight: float) -> float:
        weight = float(weight)
        if weight < 0:
            raise InferenceError(
                f"group {key!r}: potential weight must be non-negative, got {weight}"
            )
        if weight == 0:
            raise InferenceError(
                f"group {key!r}: cannot reweight to zero — zero-weight "
                "potentials are dropped at grounding time, so this would "
                "change the ground structure; re-ground instead"
            )
        return weight

    def set_group_weights(self, weights: Mapping[Hashable, float]) -> None:
        """Set every potential of each group to its group's new weight.

        Unknown group keys are skipped (that origin produced no
        groundings here).  Folded constants belonging to a group are
        rescaled by the new weight, so :attr:`constant_energy` tracks
        exactly what a fresh grounding at the new weights would report.
        """
        for key, weight in weights.items():
            gid = self._group_ids.get(key)
            if gid is None:
                continue
            if gid in self._zero_dropped and float(weight) != 0.0:
                raise InferenceError(
                    f"group {key!r} was ground at weight zero, so its "
                    "potentials were dropped from the structure; reweighting "
                    "it to a non-zero weight cannot restore them — re-ground "
                    "instead"
                )
            members = self._group_members[gid]
            mass = self._constant_mass.get(gid, 0.0)
            if float(weight) == 0.0 and not members and not mass:
                continue  # was ground at zero weight; zero -> zero is a no-op
            weight = self._check_new_weight(key, weight)
            potentials = self.potentials
            if isinstance(potentials, _LazyTermList) and not potentials.materialized:
                # Deferred term objects read the live weight vector when
                # they materialize — bulk-update the vector directly.
                pot_weights = self._pot_weights
                for i in members:
                    pot_weights[i] = weight
            else:
                for i in members:
                    self._set_weight(i, weight)
            if mass:
                weighted = weight * mass
                self.constant_energy += weighted - self._constant_weighted[gid]
                self._constant_weighted[gid] = weighted
        self.weights_version += 1

    def set_group_potential_weights(
        self, key: Hashable, weights: Sequence[float]
    ) -> None:
        """Set one group's member potentials to per-member weights.

        For groups whose members do not share one scalar — e.g. the
        collective model's per-candidate prior, where each potential's
        weight is its own linear combination of objective components.
        *weights* is ordered like :meth:`group_members` (append order).
        """
        gid = self._group_ids.get(key)
        if gid is None:
            if len(weights):
                raise InferenceError(f"unknown origin group {key!r}")
            return
        if gid in self._zero_dropped:
            raise InferenceError(
                f"group {key!r} was ground at weight zero (potentials "
                "dropped); re-ground instead of reweighting"
            )
        members = self._group_members[gid]
        if len(weights) != len(members):
            raise InferenceError(
                f"group {key!r} has {len(members)} potentials, got "
                f"{len(weights)} weights"
            )
        for i, weight in zip(members, weights):
            self._set_weight(i, self._check_new_weight(key, weight))
        self.weights_version += 1

    def set_potential_weights(self, weights: Sequence[float]) -> None:
        """Replace the full per-potential weight vector in place.

        The fully general escape hatch (group APIs cover the common
        cases).  Folded constants cannot be updated through this path —
        they have no potential index — so an MRF whose grounding folded
        group-tagged constants rejects it (use the group APIs there, so
        ``constant_energy`` rescales and the reweighted MRF stays
        identical to a fresh grounding).
        """
        if self._constant_mass:
            raise InferenceError(
                "this MRF has group-folded constant potentials whose energy "
                "the flat weight vector cannot rescale; use "
                "set_group_weights/set_group_potential_weights instead"
            )
        if len(weights) != len(self.potentials):
            raise InferenceError(
                f"expected {len(self.potentials)} weights, got {len(weights)}"
            )
        for i, weight in enumerate(weights):
            self._set_weight(i, self._check_new_weight("<vector>", weight))
        self.weights_version += 1

    def add_potential(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        weight: float,
        squared: bool = False,
        group: Hashable | None = None,
    ) -> None:
        """Add ``weight * max(0, sum coeff*atom + offset)^(2 if squared)``.

        A potential whose coefficients are empty (or all zero) is a
        *constant*: it cannot influence the minimizer, but its energy
        ``weight * max(0, offset)^p`` is real and is tracked in
        :attr:`constant_energy` so :meth:`energy` reports the true
        objective instead of silently dropping it.

        *group* tags the potential (and any folded constant) with its
        origin — the hook the reweighting API keys on.
        """
        kept, constant, mass = filter_potential_terms(
            coefficients.items(), offset, weight, squared
        )
        self.constant_energy += constant
        gid = self.group_id(group) if group is not None else -1
        if not kept:
            if gid >= 0:
                self._record_constant(gid, mass, constant)
                if weight == 0:
                    self._zero_dropped.add(gid)
            return
        if gid >= 0:
            self._group_members[gid].append(len(self.potentials))
        self.potential_groups.append(gid)
        self._pot_weights.append(float(weight))
        self.potentials.append(
            HingePotential(
                tuple((self.variable_index(a), c) for a, c in kept),
                float(offset),
                float(weight),
                squared,
            )
        )

    def add_constraint(
        self,
        coefficients: Mapping[GroundAtom, float],
        offset: float,
        equality: bool = False,
    ) -> None:
        """Add a hard linear constraint over atoms."""
        kept = filter_constraint_terms(coefficients.items(), offset, equality)
        if not kept:
            return
        self.constraints.append(
            HardConstraint(
                tuple((self.variable_index(a), c) for a, c in kept),
                float(offset),
                equality,
            )
        )

    def add_term_block(self, atoms: Iterable[GroundAtom], block: "TermBlock") -> None:
        """Append a compact shard-emitted term block (bulk construction).

        *atoms* is the block's shard-local atom table; it is interned once
        and every term's local indices are remapped through it, so the
        per-potential ``Mapping[GroundAtom, float]`` dicts of the
        incremental API never materialize.  Term order inside the block is
        preserved, which is what makes sharded merges reproduce the serial
        potential/constraint order byte for byte.
        """
        local_to_global = self.intern_atoms(atoms)
        self.constant_energy += block.constant_energy
        # Intern every group the producer mentioned, in mention order —
        # dropped ones included — so the merged registry (group ids,
        # zero-dropped set) matches the serial add_potential path's.
        for key, zero_dropped in block.observed_groups:
            gid = self.group_id(key)
            if zero_dropped:
                self._zero_dropped.add(gid)
        for key, mass, weighted in block.constant_masses:
            self._record_constant(self.group_id(key), mass, weighted)
        pot_before, con_before = len(self.potentials), len(self.constraints)
        kinds = block.kinds
        offsets = block.offsets
        weights = block.weights
        groups = block.groups
        ptr = block.term_ptr
        atom_index = block.atom_index
        coefficient = block.coefficient
        for t in range(block.num_terms):
            pairs = tuple(
                (local_to_global[atom_index[k]], float(coefficient[k]))
                for k in range(ptr[t], ptr[t + 1])
            )
            kind = int(kinds[t])
            if kind in (KIND_HINGE, KIND_SQUARED):
                key = groups[t] if groups is not None else None
                gid = self.group_id(key) if key is not None else -1
                if gid >= 0:
                    self._group_members[gid].append(len(self.potentials))
                self.potential_groups.append(gid)
                self._pot_weights.append(float(weights[t]))
                self.potentials.append(
                    HingePotential(
                        pairs, float(offsets[t]), float(weights[t]), kind == KIND_SQUARED
                    )
                )
            else:
                self.constraints.append(
                    HardConstraint(pairs, float(offsets[t]), kind == KIND_EQ)
                )
        self._block_extents.append(
            (pot_before, len(self.potentials), con_before, len(self.constraints))
        )

    def term_partition(self) -> tuple[tuple[int, int], ...]:
        """Block boundaries as ``[lo, hi)`` runs of the flat term order.

        The flat term order is the one the ADMM solver uses: all
        potentials in list order, then all constraints.  A grounding
        block whose extent holds both potentials and constraints
        contributes two runs (its potential slice and its constraint
        slice), so every run is contiguous in the flat order — the
        property that makes the partitioned solver's consensus
        accumulation bit-identical to the flat one.

        On the legacy incremental path (no :meth:`add_term_block` calls),
        or whenever the recorded extents do not exactly tile the
        potential/constraint lists (mixed bulk + incremental
        construction), the partition degrades to a single run covering
        everything — always safe, never wrong.
        """
        num_potentials, num_constraints = len(self.potentials), len(self.constraints)
        total = num_potentials + num_constraints
        if total == 0:
            return ()
        pot_runs: list[tuple[int, int]] = []
        con_runs: list[tuple[int, int]] = []
        next_pot = next_con = 0
        for pot_lo, pot_hi, con_lo, con_hi in self._block_extents:
            if pot_lo != next_pot or con_lo != next_con:
                return ((0, total),)
            next_pot, next_con = pot_hi, con_hi
            if pot_hi > pot_lo:
                pot_runs.append((pot_lo, pot_hi))
            if con_hi > con_lo:
                con_runs.append((con_lo, con_hi))
        if next_pot != num_potentials or next_con != num_constraints:
            return ((0, total),)
        return tuple(pot_runs) + tuple(
            (num_potentials + lo, num_potentials + hi) for lo, hi in con_runs
        )

    def _energy_arrays(self) -> tuple[np.ndarray, ...]:
        """Partition-style structure arrays for the vectorized energy path.

        Cached, keyed on the potential count: the potentials list is
        append-only, and reweighting replaces entries with
        same-structure copies, so the count fully identifies the
        (weight-independent) structure.  Weights are deliberately *not*
        cached — :meth:`energy` reads them fresh every call, so the
        cache survives any amount of in-place reweighting.
        """
        cached = getattr(self, "_energy_terms", None)
        num = len(self.potentials)
        if cached is not None and cached[0] == num:
            return cached[1]
        flat = getattr(self, "_compiled", None)
        if flat is not None and flat.num_potentials == num:
            # Slice the precompiled flat arrays instead of iterating the
            # potential objects: both emit the identical potentials-first
            # CSR order, the lists are append-only, and an equal count
            # pins an equal prefix — so the content matches bit for bit.
            # Also keeps a store-attached MRF's deferred term objects
            # unmaterialized (the arrays are read-only mmap views there).
            copies = int(flat.term_ptr[num])
            arrays = (
                flat.var[:copies],
                flat.coeff[:copies],
                flat.term[:copies],
                flat.offset[:num],
                np.asarray(flat.kind[:num] == KIND_SQUARED),
            )
            self._energy_terms = (num, arrays)
            return arrays
        counts = np.fromiter(
            (len(p.coefficients) for p in self.potentials),
            dtype=np.int64,
            count=num,
        )
        copies = int(counts.sum())
        var = np.fromiter(
            (i for p in self.potentials for i, _ in p.coefficients),
            dtype=np.int64,
            count=copies,
        )
        coeff = np.fromiter(
            (c for p in self.potentials for _, c in p.coefficients),
            dtype=np.float64,
            count=copies,
        )
        term = np.repeat(np.arange(num, dtype=np.int64), counts)
        offset = np.fromiter(
            (p.offset for p in self.potentials), dtype=np.float64, count=num
        )
        squared = np.fromiter(
            (p.squared for p in self.potentials), dtype=bool, count=num
        )
        arrays = (var, coeff, term, offset, squared)
        self._energy_terms = (num, arrays)
        return arrays

    def __getstate__(self) -> dict:
        # The energy-array cache is a derived O(copies) structure; keep
        # it out of pickles (engine work units ship MRFs) and let the
        # receiver rebuild it lazily.  Likewise the precompiled flat
        # solver arrays a store attach seeds (mmap views must never be
        # pickled as full arrays); the receiver recompiles from the
        # potential lists.
        state = self.__dict__.copy()
        state.pop("_energy_terms", None)
        state.pop("_compiled", None)
        return state

    def energy(self, x) -> float:
        """Total weighted hinge loss at *x* (ignores constraints).

        Computed on cached partition-style arrays — one gather, one
        per-term ``bincount``, one dot with the live weight vector —
        instead of a Python loop over potentials.  Validated against the
        per-potential sum in tests; float summation order differs, so
        the two agree to tolerance, not bit for bit (every bit-identity
        contract in the solver compares energies computed by this same
        function on both sides).
        """
        if not self.potentials:
            return self.constant_energy
        var, coeff, term, offset, squared = self._energy_arrays()
        xv = np.asarray(x, dtype=np.float64)
        s = np.bincount(term, weights=coeff * xv[var], minlength=len(offset))
        s += offset
        mass = np.maximum(s, 0.0)
        np.multiply(mass, mass, out=mass, where=squared)
        return float(self.constant_energy + np.dot(self.potential_weights(), mass))

    def max_violation(self, x) -> float:
        """Largest hard-constraint violation at *x*."""
        if not self.constraints:
            return 0.0
        return max(c.violation(x) for c in self.constraints)


def rebuild_mrf(
    variables: Sequence[GroundAtom],
    *,
    kind: Sequence[int],
    offset: Sequence[float],
    weight: Sequence[float],
    term_ptr: Sequence[int],
    var: Sequence[int],
    coeff: Sequence[float],
    num_potentials: int,
    potential_groups: Sequence[int],
    group_keys: Sequence[Hashable],
    zero_dropped: Iterable[int],
    constant_mass: Mapping[int, float],
    constant_weighted: Mapping[int, float],
    constant_energy: float,
    block_extents: Iterable[tuple[int, int, int, int]],
) -> HingeLossMRF:
    """Reconstruct a grounded :class:`HingeLossMRF` from flat CSR arrays.

    The structural inverse of grounding, used by the disk grounding
    store (:mod:`repro.psl.store`): given the flat term arrays in
    potentials-then-constraints order plus the registry metadata
    (interned variables, origin groups, folded-constant masses, term
    block extents), rebuild the full MRF **without re-interning atoms
    through the grounding path** — no shard planning, no
    ``add_term_block``, no dict-based coefficient maps.  Every field is
    reproduced exactly as the original grounding left it (float64
    round-trips bit for bit), so fingerprints, reweighting, and solves
    on the rebuilt MRF are indistinguishable from the original's.

    Array-likes may be numpy arrays (including read-only mmap views) or
    plain sequences; they are only read.

    The potential/constraint *objects* are deferred
    (:class:`_LazyTermList`): the solver stack works entirely off the
    flat arrays, so an attached MRF solves and reweights without ever
    constructing them — they materialize (from the live weight vector)
    only when something iterates or subscripts the lists, e.g. a
    fingerprint or the per-potential diagnostics.
    """
    def as_list(values) -> list:
        # ndarray.tolist() converts to builtin ints/floats at C speed
        # (exact for int64/float64); plain sequences pass through.
        return values.tolist() if hasattr(values, "tolist") else list(values)

    num_terms = len(kind)
    pot_weights = as_list(weight[:num_potentials])

    shared: dict = {}

    def term_source() -> dict:
        if not shared:
            shared["pairs"] = list(zip(as_list(var), as_list(coeff)))
            shared["ptr"] = as_list(term_ptr)
            shared["kinds"] = as_list(kind)
            shared["offsets"] = as_list(offset)
        return shared

    def build_potentials() -> list:
        s = term_source()
        pairs, ptr, kinds, offsets = s["pairs"], s["ptr"], s["kinds"], s["offsets"]
        # pot_weights is the MRF's live _pot_weights list (mutated in
        # place by reweights), so late materialization stays exact.
        return [
            HingePotential(
                tuple(pairs[ptr[t] : ptr[t + 1]]),
                offsets[t],
                pot_weights[t],
                kinds[t] == KIND_SQUARED,
            )
            for t in range(num_potentials)
        ]

    def build_constraints() -> list:
        s = term_source()
        pairs, ptr, kinds, offsets = s["pairs"], s["ptr"], s["kinds"], s["offsets"]
        return [
            HardConstraint(
                tuple(pairs[ptr[t] : ptr[t + 1]]),
                offsets[t],
                kinds[t] == KIND_EQ,
            )
            for t in range(num_potentials, num_terms)
        ]

    potentials = _LazyTermList(num_potentials, build_potentials)
    constraints = _LazyTermList(num_terms - num_potentials, build_constraints)
    groups = [int(g) for g in as_list(potential_groups)]
    if len(groups) != num_potentials:
        raise InferenceError(
            f"expected {num_potentials} potential group tags, got {len(groups)}"
        )
    keys = list(group_keys)
    members: dict[int, list[int]] = {gid: [] for gid in range(len(keys))}
    for i, gid in enumerate(groups):
        if gid >= 0:
            members[gid].append(i)
    atoms = list(variables)
    return HingeLossMRF(
        variables=atoms,
        _index={},  # rebuilt lazily by _ensure_index on first atom lookup
        potentials=potentials,
        constraints=constraints,
        constant_energy=float(constant_energy),
        _block_extents=[tuple(int(v) for v in e) for e in block_extents],
        potential_groups=groups,
        weights_version=0,
        _pot_weights=pot_weights,
        _group_ids={key: gid for gid, key in enumerate(keys)},
        _group_keys=keys,
        _group_members=members,
        _constant_mass={int(g): float(m) for g, m in constant_mass.items()},
        _constant_weighted={
            int(g): float(m) for g, m in constant_weighted.items()
        },
        _zero_dropped={int(g) for g in zero_dropped},
    )
