"""Chase engine: canonical universal solutions for st tgds."""

from repro.chase.engine import (
    ChaseResult,
    Firing,
    chase,
    chase_single,
    exchanged_instance,
    match_body,
)
from repro.chase.target import TargetChaseResult, chase_target, violates_keys

__all__ = [
    "ChaseResult",
    "Firing",
    "chase",
    "chase_single",
    "exchanged_instance",
    "match_body",
    "TargetChaseResult",
    "chase_target",
    "violates_keys",
]
