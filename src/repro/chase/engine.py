"""Naive chase for source-to-target tgds.

Because st tgds only read the source and only write the target, the chase
terminates after a single pass: every satisfying assignment of a tgd body
against the source instance fires once, instantiating the head with the
assignment's values and **fresh labeled nulls** for existential variables.

The result is the *canonical universal solution* of the source instance
under the given mapping.  Distinct tgds (and distinct firings) introduce
distinct nulls, so e.g. two candidates copying the same source tuple yield
two distinct, isomorphic target facts — matching how the paper's appendix
counts error tuples per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.datamodel.instance import Fact, Instance
from repro.datamodel.values import NullFactory, Value
from repro.mappings.atoms import Atom
from repro.mappings.terms import Variable, is_variable
from repro.mappings.tgd import StTgd


def match_body(
    body: Sequence[Atom], instance: Instance
) -> Iterator[dict[Variable, Value]]:
    """Enumerate assignments of body variables satisfying all atoms in *instance*.

    A straightforward backtracking join: atoms are matched left to right,
    narrowing candidate facts by relation and by already-bound variables.
    Yields each satisfying assignment exactly once, in an order that
    depends only on the instance's contents (facts are scanned in sorted
    repr order, never in set-iteration order) — so chase runs, and the
    null labels they hand out, are reproducible across processes
    regardless of hash randomization.
    """
    ordered = sorted(body, key=lambda a: len(instance.facts_of(a.relation)))
    buckets = [sorted(instance.facts_of(a.relation), key=repr) for a in ordered]
    seen: set[tuple] = set()

    def extend(index: int, assignment: dict[Variable, Value]) -> Iterator[dict[Variable, Value]]:
        if index == len(ordered):
            key = tuple(sorted(((v.name, u) for v, u in assignment.items()), key=lambda p: p[0]))
            if key not in seen:
                seen.add(key)
                yield dict(assignment)
            return
        atom = ordered[index]
        for f in buckets[index]:
            if f.arity != atom.arity:
                continue
            local: dict[Variable, Value] = {}
            ok = True
            for term, value in zip(atom.terms, f.values):
                if is_variable(term):
                    bound = assignment.get(term, local.get(term))
                    if bound is None:
                        local[term] = value
                    elif bound != value:
                        ok = False
                        break
                elif term != value:
                    ok = False
                    break
            if ok:
                assignment.update(local)
                yield from extend(index + 1, assignment)
                for v in local:
                    del assignment[v]

    yield from extend(0, {})


@dataclass(frozen=True)
class Firing:
    """One application of a tgd: the tgd plus the head-variable assignment."""

    tgd: StTgd
    assignment: tuple[tuple[Variable, Value], ...]

    def as_dict(self) -> dict[Variable, Value]:
        return dict(self.assignment)


@dataclass
class ChaseResult:
    """Output of a chase run.

    Attributes:
        instance: union of all facts produced (the canonical solution).
        by_tgd: for each input tgd, the sub-instance its firings produced.
        provenance: facts mapped to the firings that produced them.
    """

    instance: Instance
    by_tgd: dict[StTgd, Instance]
    provenance: dict[Fact, list[Firing]] = field(default_factory=dict)


def chase(
    source: Instance,
    tgds: Iterable[StTgd],
    null_factory: NullFactory | None = None,
) -> ChaseResult:
    """Chase *source* with st *tgds*, returning the canonical solution.

    A shared *null_factory* may be supplied to keep null labels globally
    unique across several chase runs.
    """
    factory = null_factory if null_factory is not None else NullFactory()
    combined = Instance()
    by_tgd: dict[StTgd, Instance] = {}
    provenance: dict[Fact, list[Firing]] = {}

    for tgd in tgds:
        produced = Instance()
        for assignment in match_body(tgd.body, source):
            full_assignment: dict[Variable, Value] = dict(assignment)
            for ev in sorted(tgd.existential_variables, key=lambda v: v.name):
                full_assignment[ev] = factory.fresh()
            firing = Firing(
                tgd,
                tuple(sorted(full_assignment.items(), key=lambda p: p[0].name)),
            )
            for head_atom in tgd.head:
                f = head_atom.instantiate(full_assignment)
                produced.add(f)
                combined.add(f)
                provenance.setdefault(f, []).append(firing)
        by_tgd[tgd] = produced

    return ChaseResult(combined, by_tgd, provenance)


def chase_single(
    source: Instance,
    tgd: StTgd,
    null_factory: NullFactory | None = None,
) -> Instance:
    """Chase with a single tgd, returning just the produced instance."""
    return chase(source, [tgd], null_factory).by_tgd[tgd]


def exchanged_instance(
    source: Instance,
    selection: Iterable[StTgd],
    null_factory: NullFactory | None = None,
) -> Instance:
    """The data-exchange result of migrating *source* under *selection*."""
    return chase(source, list(selection), null_factory).instance
