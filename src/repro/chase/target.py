"""Chasing *target* dependencies: egds from keys, tgds from foreign keys.

Data exchange does not stop at the st tgds: the target schema's own
constraints must hold in the materialized instance.  This module
implements the standard second-phase chase over a target instance:

* **egds** (equality-generating dependencies) from primary keys: two
  facts agreeing on the key must agree everywhere.  Chasing an egd
  *unifies* values — null/anything merges; constant/constant conflicts
  **fail** the chase (the instance admits no solution).

* **tgds** from foreign keys (inclusion dependencies): a referencing
  fact requires a referenced fact; missing parents are invented with
  fresh nulls for their non-key attributes.

The fixpoint of both is the canonical target solution.  Used by the
extension experiment on constraint-aware exchange and available as a
public API for downstream consumers of the exchanged data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datamodel.instance import Fact, Instance
from repro.datamodel.schema import Schema
from repro.datamodel.values import NullFactory, Value, is_null


@dataclass
class TargetChaseResult:
    """Outcome of the target chase.

    Attributes:
        instance: the repaired instance (meaningless if ``failed``).
        failed: True iff an egd required two distinct constants to merge.
        conflict: the offending value pair when failed.
        unifications: number of egd firings applied.
        invented: facts invented by foreign-key tgd firings.
    """

    instance: Instance
    failed: bool = False
    conflict: tuple[Value, Value] | None = None
    unifications: int = 0
    invented: list[Fact] = field(default_factory=list)


class _Unifier:
    """Union-find over values; constants are immovable roots."""

    def __init__(self) -> None:
        self._parent: dict[Value, Value] = {}

    def find(self, value: Value) -> Value:
        path = []
        while value in self._parent:
            path.append(value)
            value = self._parent[value]
        for p in path:
            self._parent[p] = value
        return value

    def union(self, a: Value, b: Value) -> bool:
        """Merge the classes of a and b; False on constant/constant conflict."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if is_null(ra):
            self._parent[ra] = rb
            return True
        if is_null(rb):
            self._parent[rb] = ra
            return True
        return False  # two distinct constants

    def apply(self, fact: Fact) -> Fact:
        return Fact(fact.relation, tuple(self.find(v) for v in fact.values))


def _chase_egds(
    instance: Instance, schema: Schema, unifier: _Unifier
) -> tuple[Instance, bool, tuple[Value, Value] | None, int]:
    """Apply key egds to a fixpoint.  Returns (instance, failed, conflict, firings)."""
    firings = 0
    current = instance
    changed = True
    while changed:
        changed = False
        for relation_name in sorted(current.relation_names):
            if relation_name not in schema:
                continue
            rel = schema.get(relation_name)
            if not rel.key:
                continue
            key_positions = [rel.position_of(k) for k in rel.key]
            by_key: dict[tuple, Fact] = {}
            for f in sorted(current.facts_of(relation_name), key=repr):
                key = tuple(f.values[i] for i in key_positions)
                if any(is_null(v) for v in key):
                    continue  # nulls in key positions do not trigger the egd
                other = by_key.get(key)
                if other is None:
                    by_key[key] = f
                    continue
                for mine, theirs in zip(f.values, other.values):
                    if unifier.find(mine) != unifier.find(theirs):
                        if not unifier.union(mine, theirs):
                            return current, True, (unifier.find(mine), unifier.find(theirs)), firings
                        firings += 1
                        changed = True
        if changed:
            current = Instance(unifier.apply(f) for f in current)
    return current, False, None, firings


def _chase_fk_tgds(
    instance: Instance,
    schema: Schema,
    factory: NullFactory,
) -> tuple[Instance, list[Fact]]:
    """Invent missing FK parents to a fixpoint (terminates: one parent per child key)."""
    current = instance.copy()
    invented: list[Fact] = []
    changed = True
    while changed:
        changed = False
        for fk in schema.foreign_keys:
            parent_rel = schema.get(fk.target)
            parent_positions = [parent_rel.position_of(a) for a in fk.target_attributes]
            child_rel = schema.get(fk.source)
            child_positions = [child_rel.position_of(a) for a in fk.source_attributes]

            existing_keys = {
                tuple(f.values[i] for i in parent_positions)
                for f in current.facts_of(fk.target)
            }
            for child in sorted(current.facts_of(fk.source), key=repr):
                key = tuple(child.values[i] for i in child_positions)
                if key in existing_keys:
                    continue
                values: list[Value] = []
                for position in range(parent_rel.arity):
                    if position in parent_positions:
                        values.append(key[parent_positions.index(position)])
                    else:
                        values.append(factory.fresh())
                parent = Fact(fk.target, tuple(values))
                current.add(parent)
                invented.append(parent)
                existing_keys.add(key)
                changed = True
    return current, invented


def chase_target(
    instance: Instance,
    schema: Schema,
    null_factory: NullFactory | None = None,
) -> TargetChaseResult:
    """Chase *instance* with the target schema's keys and foreign keys.

    Runs the egd chase and the FK tgd chase alternately until both are at
    a fixpoint (inventing a parent can enable a key merge and vice versa).
    """
    factory = null_factory if null_factory is not None else NullFactory(10_000_000)
    unifier = _Unifier()
    current = instance.copy()
    total_unifications = 0
    all_invented: list[Fact] = []

    for _ in range(1 + len(schema.foreign_keys) + len(schema.relations)):
        current, failed, conflict, firings = _chase_egds(current, schema, unifier)
        total_unifications += firings
        if failed:
            return TargetChaseResult(
                current, failed=True, conflict=conflict, unifications=total_unifications
            )
        expanded, invented = _chase_fk_tgds(current, schema, factory)
        all_invented.extend(invented)
        if len(expanded) == len(current) and not firings:
            current = expanded
            break
        current = expanded

    return TargetChaseResult(
        current,
        unifications=total_unifications,
        invented=[unifier.apply(f) for f in all_invented],
    )


def violates_keys(instance: Instance, schema: Schema) -> bool:
    """Quick check: does any relation contain two facts sharing a key?

    Unlike :func:`chase_target` this does not attempt repairs — facts
    whose key values are nulls are ignored, matching the egd trigger.
    """
    for relation_name in instance.relation_names:
        if relation_name not in schema:
            continue
        rel = schema.get(relation_name)
        if not rel.key:
            continue
        positions = [rel.position_of(k) for k in rel.key]
        seen: dict[tuple, Fact] = {}
        for f in instance.facts_of(relation_name):
            key = tuple(f.values[i] for i in positions)
            if any(is_null(v) for v in key):
                continue
            if key in seen and seen[key] != f:
                return True
            seen[key] = f
    return False
