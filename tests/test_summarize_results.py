"""Tests for the benchmark-artifact summarizer (CI speedup table)."""

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "summarize_results.py"


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args], capture_output=True, text=True
    )


def test_summarizes_known_artifacts_into_markdown(tmp_path):
    (tmp_path / "reweight.json").write_text(
        json.dumps(
            {
                "host_cpus": 4,
                "num_potentials": 500,
                "weight_settings": 6,
                "fresh_sec_per_update": 0.05,
                "reweight_sec_per_update": 0.005,
                "speedup_per_update": 10.0,
                "learning_epochs": 8,
                "learning_legacy_sec_per_epoch": 0.012,
                "learning_sec_per_epoch": 0.002,
                "learning_speedup": 6.0,
            }
        )
    )
    (tmp_path / "persistent_pool.json").write_text(
        json.dumps(
            {
                "host_cpus": 4,
                "workers": 2,
                "legacy_fresh_sec_per_map": 0.016,
                "shared_sec_per_map": 0.002,
                "dispatch_overhead_drop": 8.0,
            }
        )
    )
    (tmp_path / "grounding_store.json").write_text(
        json.dumps(
            {
                "host_cpus": 4,
                "ground_shard_size": 64,
                "reps": 5,
                "scenarios": {
                    "large": {
                        "num_potentials": 4100,
                        "ground_seconds": 0.15,
                        "attach_seconds": 0.02,
                        "warm_reweight_seconds": 0.001,
                        "speedup": 7.5,
                        "entry_bytes": 800000,
                        "bit_identical": True,
                    }
                },
            }
        )
    )
    out = tmp_path / "TABLE.md"
    result = _run("--results-dir", str(tmp_path), "--output", str(out))
    assert result.returncode == 0, result.stderr
    text = out.read_text()
    assert "| benchmark" in text
    assert "10.0×" in text and "8.0×" in text
    assert "reweight many (sweep)" in text
    assert "reweight many (learning)" in text
    assert "grounding store cold start (large)" in text
    assert "7.5×" in text
    assert "warm in-process reweight" in text  # the cold-vs-warm column
    assert "host CPUs: 4" in text


def test_malformed_artifact_skipped_not_fatal(tmp_path):
    (tmp_path / "reweight.json").write_text("{not json")
    (tmp_path / "parallel_engine_build.json").write_text(
        json.dumps(
            {
                "host_cpus": 2,
                "workers": 2,
                "serial_seconds": 2.0,
                "parallel_seconds": 1.0,
                "speedup": 2.0,
            }
        )
    )
    result = _run("--results-dir", str(tmp_path))
    assert result.returncode == 0
    assert "skipping" in result.stderr
    assert "parallel problem build" in result.stdout


def test_no_artifacts_is_an_error(tmp_path):
    result = _run("--results-dir", str(tmp_path))
    assert result.returncode == 1
    assert "no known benchmark artifacts" in result.stderr


def test_summarizes_the_repo_results_when_present():
    results = SCRIPT.parent / "results"
    if not any(
        (results / name).exists()
        for name in ("sharded_grounding.json", "reweight.json")
    ):  # pragma: no cover - depends on prior bench runs
        return
    result = _run("--results-dir", str(results), "--output", "/dev/null")
    assert result.returncode == 0
