"""Mutation chains replay edits with the exact from-scratch semantics.

The equivalence contract of :mod:`repro.ibench.mutations`: after any
sequence of primitive-level edits, the incrementally maintained
:class:`SelectionProblem` fingerprints identically to
:func:`build_selection_problem` run fresh on the mutated data — chase
reuse, candidate-local null labels, and the merge shift are invisible.
"""

import pytest

from repro.datamodel.instance import Fact
from repro.errors import SelectionError
from repro.examples_data import paper_example
from repro.ibench.config import ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.ibench.mutations import (
    AddSourceTuple,
    AddTargetTuple,
    FlipCandidate,
    MutableSelection,
    RemoveSourceTuple,
    RemoveTargetTuple,
    mutation_chain,
)
from repro.selection.metrics import build_selection_problem, problem_fingerprint


@pytest.fixture
def example():
    return paper_example(extra_projects=3)


def _chain(example, executor=None) -> MutableSelection:
    return MutableSelection(
        example.source, example.target, example.candidates, executor=executor
    )


def _assert_matches_scratch(chain: MutableSelection) -> None:
    scratch = build_selection_problem(chain.source, chain.target, chain.candidates)
    assert problem_fingerprint(chain.problem) == problem_fingerprint(scratch)


def test_base_problem_matches_scratch(example):
    chain = _chain(example)
    _assert_matches_scratch(chain)
    assert chain.problem.lineage is not None
    assert chain.problem.lineage.parent is None
    assert chain.rechased_candidates == 0


@pytest.mark.parametrize("executor", ("serial", "process:2"))
def test_executor_independent(example, executor):
    serial = _chain(example, executor=None)
    pooled = _chain(example, executor=executor)
    assert problem_fingerprint(serial.problem) == problem_fingerprint(pooled.problem)


def test_target_edits_match_scratch_without_rechasing(example):
    chain = _chain(example)
    fact = sorted(chain.target, key=repr)[-1]
    chain.apply(RemoveTargetTuple(fact))
    _assert_matches_scratch(chain)
    chain.apply(AddTargetTuple(fact))
    _assert_matches_scratch(chain)
    assert chain.rechased_candidates == 0  # target edits reuse every chase


def test_source_edits_rechase_only_touching_candidates():
    # Distinct primitives read distinct source relations, so one edit
    # touches only its own primitive's candidates.
    scenario = generate_scenario(
        ScenarioConfig(num_primitives=3, rows_per_relation=6, seed=11)
    )
    chain = MutableSelection(scenario.source, scenario.target, scenario.candidates)
    fact = next(iter(chain.source))
    touching = sum(
        1
        for i in range(len(chain.candidates))
        if fact.relation in chain._body_relations(i)
    )
    assert 0 < touching < len(chain.candidates)
    chain.apply(RemoveSourceTuple(fact))
    _assert_matches_scratch(chain)
    assert chain.rechased_candidates == touching
    chain.apply(AddSourceTuple(fact))
    _assert_matches_scratch(chain)
    assert chain.rechased_candidates == 2 * touching


def test_source_edit_to_foreign_relation_rechases_nothing(example):
    chain = _chain(example)
    chain.apply(AddSourceTuple(Fact("unrelated_relation", ("v1", "v2"))))
    _assert_matches_scratch(chain)
    assert chain.rechased_candidates == 0


def test_flip_candidate_matches_scratch(example):
    chain = _chain(example)
    # Swap the first two candidates' tgds — each flip re-chases one slot.
    flipped = chain.candidates[1]
    chain.apply(FlipCandidate(0, flipped))
    _assert_matches_scratch(chain)
    assert chain.rechased_candidates == 1


def test_mixed_chain_matches_scratch(example):
    chain = _chain(example)
    t_fact = sorted(chain.target, key=repr)[-1]
    s_fact = next(iter(chain.source))
    for edit in (
        RemoveTargetTuple(t_fact),
        RemoveSourceTuple(s_fact),
        AddTargetTuple(t_fact),
        AddSourceTuple(s_fact),
        FlipCandidate(0, chain.candidates[1]),
    ):
        chain.apply(edit)
        _assert_matches_scratch(chain)


def test_generated_scenario_chain_matches_scratch():
    scenario = generate_scenario(
        ScenarioConfig(num_primitives=3, rows_per_relation=6, seed=11)
    )
    chain = MutableSelection(scenario.source, scenario.target, scenario.candidates)
    for fact in sorted(chain.target, key=repr)[-3:]:
        chain.apply(RemoveTargetTuple(fact))
        _assert_matches_scratch(chain)
        chain.apply(AddTargetTuple(fact))
        _assert_matches_scratch(chain)


def test_invalid_edits_raise(example):
    chain = _chain(example)
    present_target = next(iter(chain.target))
    present_source = next(iter(chain.source))
    missing = Fact("nowhere", ("x",))
    with pytest.raises(SelectionError):
        chain.apply(AddTargetTuple(present_target))
    with pytest.raises(SelectionError):
        chain.apply(RemoveTargetTuple(missing))
    with pytest.raises(SelectionError):
        chain.apply(AddSourceTuple(present_source))
    with pytest.raises(SelectionError):
        chain.apply(RemoveSourceTuple(missing))
    with pytest.raises(SelectionError):
        chain.apply(FlipCandidate(len(chain.candidates), chain.candidates[0]))
    # Failed edits must not have changed the problem.
    _assert_matches_scratch(chain)


def test_mutation_chain_yields_lineage_linked_revisions(example):
    fact = sorted(example.target, key=repr)[-1]
    revisions = list(
        mutation_chain(
            example.source,
            example.target,
            example.candidates,
            [RemoveTargetTuple(fact), AddTargetTuple(fact)],
        )
    )
    assert len(revisions) == 3
    assert revisions[0][0] is None
    assert revisions[0][1].lineage.parent is None
    for (_, parent), (edit, child) in zip(revisions, revisions[1:]):
        assert edit is not None
        assert child.lineage.parent == parent.lineage.token
