"""Unit tests for source-instance population."""

import random

import pytest

from repro.datamodel.schema import ForeignKey, Schema, relation
from repro.errors import ScenarioError
from repro.ibench.datagen import populate


def test_row_counts():
    schema = Schema("S")
    schema.add(relation("r", "a", "b"))
    schema.add(relation("s", "x"))
    inst = populate(schema, 7, random.Random(0))
    assert len(inst.facts_of("r")) == 7
    assert len(inst.facts_of("s")) == 7


def test_key_attributes_are_unique():
    schema = Schema("S")
    schema.add(relation("r", "k", "v", key=("k",)))
    inst = populate(schema, 20, random.Random(0))
    keys = [f.values[0] for f in inst.facts_of("r")]
    assert len(set(keys)) == 20


def test_fk_values_reference_parent_keys():
    schema = Schema("S")
    schema.add(relation("parent", "k", key=("k",)))
    schema.add(relation("child", "k", "v"))
    schema.add_foreign_key(ForeignKey("child", ("k",), "parent", ("k",)))
    inst = populate(schema, 10, random.Random(0))
    parent_keys = {f.values[0] for f in inst.facts_of("parent")}
    for f in inst.facts_of("child"):
        assert f.values[0] in parent_keys


def test_me_style_join_is_nonempty():
    from repro.chase.engine import chase_single
    from repro.mappings.parser import parse_tgd

    schema = Schema("S")
    schema.add(relation("s1", "k", "a", key=("k",)))
    schema.add(relation("s2", "k", "b"))
    schema.add_foreign_key(ForeignKey("s2", ("k",), "s1", ("k",)))
    inst = populate(schema, 10, random.Random(1))
    joined = chase_single(inst, parse_tgd("s1(K, A) & s2(K, B) -> t(K, A, B)"))
    assert len(joined) >= 10  # every s2 row joins with its parent


def test_value_pool_bounds_distinct_values():
    schema = Schema("S")
    schema.add(relation("r", "a"))
    inst = populate(schema, 100, random.Random(0), value_pool=3)
    values = {f.values[0] for f in inst.facts_of("r")}
    assert len(values) <= 3


def test_deterministic_under_seed():
    schema = Schema("S")
    schema.add(relation("r", "a", "b"))
    a = populate(schema, 10, random.Random(42))
    b = populate(schema, 10, random.Random(42))
    assert a == b


def test_cyclic_fks_rejected():
    schema = Schema("S")
    schema.add(relation("a", "x"))
    schema.add(relation("b", "x"))
    schema.add_foreign_key(ForeignKey("a", ("x",), "b", ("x",)))
    schema.add_foreign_key(ForeignKey("b", ("x",), "a", ("x",)))
    with pytest.raises(ScenarioError):
        populate(schema, 3, random.Random(0))


def test_instance_validates_against_schema():
    schema = Schema("S")
    schema.add(relation("r", "a", "b", "c"))
    inst = populate(schema, 5, random.Random(0))
    inst.validate_against(schema)
