"""Unit tests for the seven iBench primitives."""

import random

import pytest

from repro.errors import ScenarioError
from repro.ibench.primitives import PRIMITIVE_MAKERS, make_primitive


@pytest.fixture
def rng():
    return random.Random(0)


ADD_REMOVE = (2, 4)


def test_all_seven_primitives_registered():
    assert set(PRIMITIVE_MAKERS) == {"CP", "ADD", "DL", "ADL", "ME", "VP", "VNM"}


def test_unknown_primitive_rejected(rng):
    with pytest.raises(ScenarioError):
        make_primitive("XX", 0, rng, ADD_REMOVE)


def test_cp_copies_arity(rng):
    out = make_primitive("CP", 0, rng, ADD_REMOVE)
    (source,), (target,) = out.source_relations, out.target_relations
    assert source.arity == target.arity
    gold = out.gold_tgds[0]
    assert gold.is_full
    assert len(out.correspondences) == source.arity


def test_add_appends_two_to_four_existential_attributes(rng):
    for seed in range(10):
        out = make_primitive("ADD", 0, random.Random(seed), ADD_REMOVE)
        (source,), (target,) = out.source_relations, out.target_relations
        added = target.arity - source.arity
        assert 2 <= added <= 4
        gold = out.gold_tgds[0]
        assert len(gold.existential_variables) == added


def test_dl_removes_two_to_four_attributes(rng):
    for seed in range(10):
        out = make_primitive("DL", 0, random.Random(seed), ADD_REMOVE)
        (source,), (target,) = out.source_relations, out.target_relations
        removed = source.arity - target.arity
        assert 2 <= removed <= 4
        assert out.gold_tgds[0].is_full


def test_adl_adds_and_removes(rng):
    for seed in range(10):
        out = make_primitive("ADL", 0, random.Random(seed), ADD_REMOVE)
        gold = out.gold_tgds[0]
        assert 2 <= len(gold.existential_variables) <= 4
        (source,) = out.source_relations
        kept = len(gold.exported_variables)
        assert source.arity - kept >= 2


def test_me_joins_two_sources(rng):
    out = make_primitive("ME", 0, rng, ADD_REMOVE)
    assert len(out.source_relations) == 2
    assert len(out.source_fks) == 1
    gold = out.gold_tgds[0]
    assert len(gold.body) == 2
    assert gold.is_full
    # join variable shared between the two body atoms
    shared = set(gold.body[0].variables) & set(gold.body[1].variables)
    assert len(shared) == 1


def test_vp_produces_joined_target_pair(rng):
    out = make_primitive("VP", 0, rng, ADD_REMOVE)
    assert len(out.target_relations) == 2
    assert len(out.target_fks) == 1
    gold = out.gold_tgds[0]
    assert len(gold.head) == 2
    assert len(gold.existential_variables) == 1


def test_vnm_produces_bridge(rng):
    out = make_primitive("VNM", 0, rng, ADD_REMOVE)
    assert len(out.target_relations) == 3
    assert len(out.target_fks) == 2
    gold = out.gold_tgds[0]
    assert len(gold.head) == 3
    assert len(gold.existential_variables) == 2


def test_names_include_index_for_uniqueness(rng):
    a = make_primitive("CP", 0, random.Random(1), ADD_REMOVE)
    b = make_primitive("CP", 1, random.Random(1), ADD_REMOVE)
    assert a.relation_names.isdisjoint(b.relation_names)


@pytest.mark.parametrize("kind", sorted(PRIMITIVE_MAKERS))
def test_correspondences_reference_own_relations(kind, rng):
    out = make_primitive(kind, 0, rng, ADD_REMOVE)
    source_names = {r.name for r in out.source_relations}
    target_names = {r.name for r in out.target_relations}
    for c in out.correspondences:
        assert c.source_relation in source_names
        assert c.target_relation in target_names


@pytest.mark.parametrize("kind", sorted(PRIMITIVE_MAKERS))
def test_gold_tgds_validate_against_schemas(kind, rng):
    from repro.datamodel.schema import Schema

    out = make_primitive(kind, 0, rng, ADD_REMOVE)
    source_schema, target_schema = Schema("S"), Schema("T")
    for rel in out.source_relations:
        source_schema.add(rel)
    for rel in out.target_relations:
        target_schema.add(rel)
    for gold in out.gold_tgds:
        gold.validate_against(source_schema, target_schema)
