"""Unit and integration tests for scenario generation (incl. noise)."""

import pytest

from repro.errors import ScenarioError
from repro.ibench.config import ScenarioConfig
from repro.ibench.generator import generate_scenario


@pytest.fixture(scope="module")
def clean_scenario():
    return generate_scenario(ScenarioConfig(num_primitives=4, seed=11))


def test_config_validation():
    with pytest.raises(ScenarioError):
        ScenarioConfig(num_primitives=0)
    with pytest.raises(ScenarioError):
        ScenarioConfig(pi_corresp=150)
    with pytest.raises(ScenarioError):
        ScenarioConfig(primitive_kinds=("NOPE",))
    with pytest.raises(ScenarioError):
        ScenarioConfig(rows_per_relation=0)
    with pytest.raises(ScenarioError):
        ScenarioConfig(add_remove_range=(0, 3))


def test_determinism(clean_scenario):
    again = generate_scenario(ScenarioConfig(num_primitives=4, seed=11))
    assert [c.canonical() for c in again.candidates] == [
        c.canonical() for c in clean_scenario.candidates
    ]
    assert again.target == clean_scenario.target


def test_gold_is_subset_of_candidates(clean_scenario):
    assert len(clean_scenario.gold_indices) >= clean_scenario.config.num_primitives
    for tgd in clean_scenario.gold_mapping:
        assert tgd in clean_scenario.candidates


def test_target_example_is_ground(clean_scenario):
    assert clean_scenario.target.is_ground
    assert clean_scenario.reference_target.is_ground


def test_clean_scenario_has_no_noise_edits(clean_scenario):
    assert clean_scenario.deleted_facts == []
    assert clean_scenario.added_facts == []
    assert clean_scenario.target == clean_scenario.reference_target


def test_instances_validate_against_schemas(clean_scenario):
    clean_scenario.source.validate_against(clean_scenario.source_schema)
    clean_scenario.target.validate_against(clean_scenario.target_schema)


def test_candidates_validate_against_schemas(clean_scenario):
    for c in clean_scenario.candidates:
        c.validate_against(clean_scenario.source_schema, clean_scenario.target_schema)


def test_pi_corresp_adds_candidates():
    clean = generate_scenario(ScenarioConfig(num_primitives=4, seed=5))
    noisy = generate_scenario(ScenarioConfig(num_primitives=4, seed=5, pi_corresp=100))
    assert len(noisy.candidates) > len(clean.candidates)
    assert len(noisy.correspondences) > len(clean.correspondences)
    # Gold must survive metadata noise (the appendix's donor restriction).
    assert len(noisy.gold_indices) == len(clean.gold_indices)


def test_pi_errors_deletes_from_target():
    noisy = generate_scenario(
        ScenarioConfig(num_primitives=4, seed=5, pi_errors=50)
    )
    assert noisy.deleted_facts
    for f in noisy.deleted_facts:
        assert f not in noisy.target
        assert f in noisy.reference_target


def test_pi_unexplained_adds_to_target():
    noisy = generate_scenario(
        ScenarioConfig(num_primitives=4, seed=5, pi_corresp=100, pi_unexplained=50)
    )
    assert noisy.added_facts
    for f in noisy.added_facts:
        assert f in noisy.target
        assert f not in noisy.reference_target
        assert f.is_ground


def test_added_facts_are_not_fully_explainable_by_gold():
    from fractions import Fraction

    from repro.chase.engine import chase
    from repro.homomorphism.covers import CoverComputer

    noisy = generate_scenario(
        ScenarioConfig(num_primitives=3, seed=7, pi_corresp=100, pi_unexplained=100)
    )
    gold_chase = chase(noisy.source, noisy.gold_mapping)
    computer = CoverComputer(gold_chase.instance, noisy.target)
    for added in noisy.added_facts:
        # An all-null gold chase fact may weakly match anything, but the
        # gold mapping must never fully explain an added noise fact.
        assert computer.degree(added) < Fraction(1)
        assert added not in noisy.reference_target


def test_single_kind_scenarios():
    for kind in ("CP", "ME", "VP", "VNM"):
        scenario = generate_scenario(
            ScenarioConfig(num_primitives=2, primitive_kinds=(kind,), seed=3)
        )
        assert all(p.kind == kind for p in scenario.primitives)
        assert scenario.gold_indices


def test_summary_mentions_key_quantities(clean_scenario):
    text = clean_scenario.summary()
    assert "|C|=" in text and "|J|=" in text


def test_selection_problem_roundtrip(clean_scenario):
    problem = clean_scenario.selection_problem()
    assert problem.num_candidates == len(clean_scenario.candidates)
    assert set(problem.j_facts) == set(clean_scenario.target)
