"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_demo_prints_appendix_table(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "Eq.(9)" in out
    assert "22/3" in out  # the {t1} row's exact value
    assert "collective selection" in out


def test_generate_then_select(tmp_path, capsys):
    path = tmp_path / "scenario.json"
    assert (
        main(
            [
                "generate",
                str(path),
                "--primitives",
                "3",
                "--pi-corresp",
                "50",
                "--seed",
                "4",
            ]
        )
        == 0
    )
    assert path.exists()
    assert main(["select", str(path)]) == 0
    out = capsys.readouterr().out
    for method in ("collective", "greedy", "all-candidates", "exact", "independent", "gold"):
        assert method in out


def test_select_single_method(tmp_path, capsys):
    path = tmp_path / "scenario.json"
    main(["generate", str(path), "--primitives", "2", "--seed", "1"])
    assert main(["select", str(path), "--method", "greedy"]) == 0
    out = capsys.readouterr().out
    assert "greedy" in out
    assert "exact" not in out


def test_sweep_prints_levels(capsys):
    assert (
        main(
            [
                "sweep",
                "--noise",
                "pi_errors",
                "--primitives",
                "2",
                "--rows",
                "6",
                "--seeds",
                "1",
                "--levels",
                "0",
                "50",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "pi_errors" in out
    assert "collective" in out


def test_select_solver_knobs(tmp_path, capsys):
    path = tmp_path / "scenario.json"
    main(["generate", str(path), "--primitives", "2", "--seed", "1"])
    assert (
        main(
            [
                "select",
                str(path),
                "--method",
                "collective",
                "--solve-executor",
                "thread:2",
                "--solve-block-size",
                "16",
                "--ground-shard-size",
                "8",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "collective" in out


def test_sweep_solver_knobs(capsys):
    assert (
        main(
            [
                "sweep",
                "--primitives",
                "2",
                "--rows",
                "6",
                "--seeds",
                "1",
                "--levels",
                "0",
                "--solve-executor",
                "serial",
                "--solve-block-size",
                "4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "collective" in out


def test_generate_respects_kind_restriction(tmp_path, capsys):
    path = tmp_path / "scenario.json"
    main(["generate", str(path), "--primitives", "2", "--kinds", "CP", "--seed", "2"])
    out = capsys.readouterr().out
    assert "CP,CP" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_missing_required_argument_exits():
    with pytest.raises(SystemExit):
        main(["generate"])
