"""Unit tests for relations, schemas, and foreign keys."""

import pytest

from repro.datamodel.schema import Attribute, ForeignKey, Relation, Schema, relation
from repro.errors import SchemaError


def test_relation_constructor_helper():
    r = relation("task", "pname", "emp", "oid")
    assert r.name == "task"
    assert r.arity == 3
    assert r.attribute_names == ("pname", "emp", "oid")


def test_relation_rejects_duplicate_attributes():
    with pytest.raises(SchemaError):
        relation("r", "a", "a")


def test_relation_key_must_exist():
    with pytest.raises(SchemaError):
        Relation("r", (Attribute("a"),), key=("b",))


def test_position_of():
    r = relation("r", "x", "y", "z")
    assert r.position_of("y") == 1
    with pytest.raises(SchemaError):
        r.position_of("w")


def test_schema_add_and_get():
    s = Schema("S")
    r = s.add(relation("r", "a"))
    assert s.get("r") is r
    assert "r" in s
    assert "q" not in s
    assert len(s) == 1


def test_schema_rejects_duplicate_relation():
    s = Schema("S")
    s.add(relation("r", "a"))
    with pytest.raises(SchemaError):
        s.add(relation("r", "b"))


def test_schema_get_unknown_raises():
    with pytest.raises(SchemaError):
        Schema("S").get("nope")


def test_foreign_key_validation_on_add():
    s = Schema("S")
    s.add(relation("child", "pid", "v"))
    s.add(relation("parent", "pid", key=("pid",)))
    fk = s.add_foreign_key(ForeignKey("child", ("pid",), "parent", ("pid",)))
    assert fk in s.foreign_keys


def test_foreign_key_unknown_attribute_rejected():
    s = Schema("S")
    s.add(relation("child", "pid"))
    s.add(relation("parent", "pid"))
    with pytest.raises(SchemaError):
        s.add_foreign_key(ForeignKey("child", ("nope",), "parent", ("pid",)))


def test_foreign_key_mismatched_lengths_rejected():
    with pytest.raises(SchemaError):
        ForeignKey("a", ("x", "y"), "b", ("z",))


def test_foreign_key_empty_attributes_rejected():
    with pytest.raises(SchemaError):
        ForeignKey("a", (), "b", ())


def test_relation_repr_lists_columns():
    assert repr(relation("org", "oid", "company")) == "org(oid, company)"
