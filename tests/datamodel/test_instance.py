"""Unit tests for facts and instances."""

import pytest

from repro.datamodel.instance import DataExample, Fact, Instance, fact
from repro.datamodel.schema import Schema, relation
from repro.datamodel.values import Constant, LabeledNull
from repro.errors import InstanceError


def test_fact_helper_wraps_constants():
    f = fact("task", "ML", "Alice", 111)
    assert f.values == (Constant("ML"), Constant("Alice"), Constant(111))


def test_fact_helper_keeps_nulls():
    n = LabeledNull(5)
    f = fact("task", "ML", n)
    assert f.values[1] is n
    assert f.nulls == (n,)
    assert not f.is_ground


def test_ground_fact_has_no_nulls():
    assert fact("r", 1, 2).is_ground


def test_fact_substitute():
    n = LabeledNull(0)
    f = fact("r", "a", n)
    g = f.substitute({n: Constant(111)})
    assert g == fact("r", "a", 111)
    assert f.values[1] is n  # original untouched


def test_instance_add_and_membership():
    inst = Instance()
    assert inst.add(fact("r", 1))
    assert not inst.add(fact("r", 1))  # duplicate
    assert fact("r", 1) in inst
    assert fact("r", 2) not in inst
    assert len(inst) == 1


def test_instance_discard():
    inst = Instance([fact("r", 1)])
    assert inst.discard(fact("r", 1))
    assert not inst.discard(fact("r", 1))
    assert len(inst) == 0
    assert inst.relation_names == frozenset()


def test_instance_facts_of_groups_by_relation():
    inst = Instance([fact("r", 1), fact("r", 2), fact("s", 1)])
    assert inst.facts_of("r") == {fact("r", 1), fact("r", 2)}
    assert inst.facts_of("missing") == frozenset()


def test_instance_union_and_difference():
    a = Instance([fact("r", 1), fact("r", 2)])
    b = Instance([fact("r", 2), fact("s", 3)])
    assert set(a | b) == {fact("r", 1), fact("r", 2), fact("s", 3)}
    assert set(a - b) == {fact("r", 1)}


def test_instance_equality_is_set_based():
    assert Instance([fact("r", 1), fact("r", 2)]) == Instance([fact("r", 2), fact("r", 1)])
    assert Instance([fact("r", 1)]) != Instance([fact("r", 2)])


def test_instance_copy_is_independent():
    a = Instance([fact("r", 1)])
    b = a.copy()
    b.add(fact("r", 2))
    assert len(a) == 1
    assert len(b) == 2


def test_instance_nulls_and_groundness():
    n = LabeledNull(9)
    inst = Instance([fact("r", 1), fact("r", n)])
    assert inst.nulls == {n}
    assert not inst.is_ground
    assert Instance([fact("r", 1)]).is_ground


def test_validate_against_schema():
    schema = Schema("S")
    schema.add(relation("r", "a", "b"))
    Instance([fact("r", 1, 2)]).validate_against(schema)
    with pytest.raises(InstanceError):
        Instance([fact("r", 1)]).validate_against(schema)  # wrong arity
    with pytest.raises(InstanceError):
        Instance([fact("q", 1)]).validate_against(schema)  # unknown relation


def test_non_fact_membership_is_false():
    assert "not a fact" not in Instance([fact("r", 1)])


def test_data_example_holds_both_sides():
    ex = DataExample(Instance([fact("r", 1)]), Instance([fact("t", 2)]))
    assert fact("r", 1) in ex.source
    assert fact("t", 2) in ex.target


def test_iteration_is_insertion_ordered():
    # Hash-order iteration here leaked the per-process hash seed into
    # the scenario generator's skolem-constant numbering, making
    # "deterministic" generation differ across processes.
    facts = [fact("r", f"a{i}") for i in range(20)] + [fact("s", i) for i in range(5)]
    inst = Instance(facts)
    assert list(inst) == facts
    # Discard-then-re-add moves a fact to the back of its bucket —
    # iteration tracks current insertion order, not history.
    inst.discard(facts[0])
    inst.add(facts[0])
    assert list(inst) == facts[1:20] + [facts[0]] + facts[20:]


def test_scenario_generation_is_hash_seed_independent():
    # End to end: same config, same bytes, whatever the hash seed.
    import os
    import subprocess
    import sys

    script = (
        "from repro.ibench.config import ScenarioConfig\n"
        "from repro.ibench.generator import generate_scenario\n"
        "s = generate_scenario(ScenarioConfig(num_primitives=3, rows_per_relation=6, seed=11))\n"
        "print(sorted(repr(f) for f in s.target))\n"
        "print(sorted(repr(f) for f in s.source))\n"
    )
    outputs = set()
    for seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        outputs.add(
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            ).stdout
        )
    assert len(outputs) == 1
