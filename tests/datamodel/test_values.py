"""Unit tests for constants, labeled nulls, and the null factory."""

import pytest

from repro.datamodel.values import (
    Constant,
    LabeledNull,
    NullFactory,
    constants_in,
    is_constant,
    is_null,
    nulls_in,
)


def test_constants_compare_by_value():
    assert Constant("a") == Constant("a")
    assert Constant("a") != Constant("b")
    assert Constant(1) != Constant("1")


def test_nulls_compare_by_label():
    assert LabeledNull(0) == LabeledNull(0)
    assert LabeledNull(0) != LabeledNull(1)


def test_constant_and_null_never_equal():
    assert Constant(0) != LabeledNull(0)


def test_is_null_and_is_constant():
    assert is_null(LabeledNull(3))
    assert not is_null(Constant(3))
    assert is_constant(Constant("x"))
    assert not is_constant(LabeledNull(1))


def test_values_are_hashable():
    s = {Constant("a"), LabeledNull(1), Constant("a")}
    assert len(s) == 2


def test_null_factory_produces_distinct_labels():
    factory = NullFactory()
    produced = [factory.fresh() for _ in range(100)]
    assert len(set(produced)) == 100


def test_null_factory_start_offset():
    factory = NullFactory(start=42)
    assert factory.fresh() == LabeledNull(42)
    assert factory.fresh() == LabeledNull(43)


def test_null_factory_fresh_many():
    factory = NullFactory()
    batch = factory.fresh_many(5)
    assert len(batch) == 5
    assert len(set(batch)) == 5


def test_two_factories_collide_without_offset():
    # Documents why chase runs must share a factory.
    a, b = NullFactory(), NullFactory()
    assert a.fresh() == b.fresh()


def test_constants_in_and_nulls_in():
    values = [Constant(1), LabeledNull(1), Constant(2), LabeledNull(1)]
    assert constants_in(values) == {Constant(1), Constant(2)}
    assert nulls_in(values) == {LabeledNull(1)}


def test_repr_forms():
    assert repr(LabeledNull(7)) == "N7"
    assert repr(Constant("SAP")) == "SAP"
