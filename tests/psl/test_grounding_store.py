"""Robustness of the content-addressed disk grounding store.

Every way an entry can go wrong on disk — truncation, corruption,
version skew, racing writers, unwritable directories, reclamation under
a live reader — must degrade to a cache miss (or a ``verify`` failure),
never to a crash or a torn read.  Functional equivalence (bit-identical
solves from attached entries) is covered by the frozen-solver harness in
``test_partitioned_admm.py``; this module is about failure modes.
"""

import functools
import os
import pickle
import threading

import numpy as np
import pytest

from repro.ibench.config import ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.psl.admm import AdmmSettings, AdmmSolver
from repro.psl.sharding import mrf_fingerprint, structure_fingerprint
from repro.psl.store import ARRAY_NAMES, STORE_FORMAT, GroundingStore
from repro.selection.collective import (
    CollectiveGroundingCache,
    CollectiveSettings,
    GroundedCollective,
    collective_structure_key,
    ground_collective,
)
from repro.selection.metrics import build_selection_problem

CONFIG = ScenarioConfig(
    num_primitives=4, rows_per_relation=8, pi_errors=50, pi_corresp=50, seed=13
)


@functools.cache
def _problem():
    scenario = generate_scenario(CONFIG)
    return build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )


@functools.cache
def _grounding():
    mrf, plan, _ = ground_collective(_problem(), CollectiveSettings(), shard_size=8)
    return mrf, plan


def _populated(tmp_path):
    mrf, plan = _grounding()
    store = GroundingStore(tmp_path)
    key = collective_structure_key(_problem(), CollectiveSettings())
    assert store.put(key, mrf) is True
    return store, key, mrf


# -- roundtrip ----------------------------------------------------------------


def test_variable_packing_roundtrip_and_generic_fallback():
    # Single-int-arg atom tables pack into predicate-registry + int64
    # blobs (the fast attach path); anything else keeps the generic
    # tuple encoding.  Both decode back to equal atoms.
    from repro.psl.predicate import GroundAtom, Predicate
    from repro.psl.store import _pack_variables, _unpack_variables

    p = Predicate("in", 1, closed=False)
    q = Predicate("explained", 1, closed=False)
    atoms = [GroundAtom(p, (3,)), GroundAtom(q, (0,)), GroundAtom(p, (5,))]
    packed = _pack_variables(atoms)
    assert isinstance(packed, tuple) and packed[0] == "packed-atoms-v1"
    assert _unpack_variables(packed) == atoms

    generic = (GroundAtom(p, ("a",)), GroundAtom(p, (3,)))
    assert _pack_variables(list(generic)) == generic
    assert _unpack_variables(generic) == list(generic)


def test_roundtrip_reproduces_both_fingerprints(tmp_path):
    store, key, mrf = _populated(tmp_path)
    loaded = store.load(key)
    assert loaded is not None
    assert mrf_fingerprint(loaded.mrf) == mrf_fingerprint(mrf)
    assert structure_fingerprint(loaded.mrf) == structure_fingerprint(mrf)
    assert loaded.mrf.term_partition() == mrf.term_partition()


def test_loaded_arrays_are_readonly_mmap_views(tmp_path):
    store, key, _ = _populated(tmp_path)
    loaded = store.load(key)
    flat = loaded.mrf._compiled
    # Everything attaches zero-copy read-only except the weight vector,
    # which reweighting must write in place.
    assert isinstance(flat.coeff, np.memmap) and not flat.coeff.flags.writeable
    assert isinstance(flat.var, np.memmap) and not flat.var.flags.writeable
    assert not isinstance(flat.weight, np.memmap) and flat.weight.flags.writeable


def test_put_is_idempotent(tmp_path):
    store, key, mrf = _populated(tmp_path)
    assert store.put(key, mrf) is False
    assert store.keys() == [key]


def test_extra_payload_roundtrips(tmp_path):
    mrf, _ = _grounding()
    store = GroundingStore(tmp_path)
    assert store.put("k", mrf, extra={"weights": ("frozen", 1)})
    assert store.load("k").extra == {"weights": ("frozen", 1)}


def test_invalid_keys_rejected(tmp_path):
    store = GroundingStore(tmp_path)
    for bad in ("", "a/b", ".hidden"):
        with pytest.raises(ValueError):
            store.entry_dir(bad)


# -- corruption and skew ------------------------------------------------------


def test_truncated_array_is_a_miss(tmp_path):
    store, key, _ = _populated(tmp_path)
    path = store.entry_dir(key) / "coeff.npy"
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert store.load(key) is None


def test_corrupt_payload_fails_verify_but_not_load_of_others(tmp_path):
    store, key, _ = _populated(tmp_path)
    path = store.entry_dir(key) / "offset.npy"
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF  # flip one payload byte: same shape, wrong content
    path.write_bytes(bytes(raw))
    results = store.verify(key)
    assert results == [(key, False, "payload hash mismatch (corrupt or torn entry)")]


def test_verify_catches_wrong_structure(tmp_path):
    store, key, _ = _populated(tmp_path)
    import json

    manifest_path = store.entry_dir(key) / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["structure_sha256"] = "0" * 64
    manifest_path.write_text(json.dumps(manifest, sort_keys=True))
    (_, ok, message), = store.verify(key)
    assert not ok and "mismatch" in message


def test_format_version_skew_is_a_miss(tmp_path):
    store, key, _ = _populated(tmp_path)
    import json

    manifest_path = store.entry_dir(key) / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format"] = STORE_FORMAT + 1
    manifest_path.write_text(json.dumps(manifest, sort_keys=True))
    assert store.load(key) is None
    (entry,) = store.ls()
    assert entry.stale
    assert store.gc() == [key]
    assert store.keys() == []


def test_unpicklable_meta_is_a_miss(tmp_path):
    # The classic version-skew failure: meta.pkl references a module
    # that no longer exists -> ModuleNotFoundError inside pickle.loads.
    store, key, _ = _populated(tmp_path)
    skew = b"cnonexistent_mod\nattr\n."
    with pytest.raises(ModuleNotFoundError):
        pickle.loads(skew)
    (store.entry_dir(key) / "meta.pkl").write_bytes(skew)
    assert store.load(key) is None


def test_missing_array_file_is_a_miss(tmp_path):
    store, key, _ = _populated(tmp_path)
    (store.entry_dir(key) / "normsq.npy").unlink()
    assert store.load(key) is None
    (_, ok, _), = store.verify(key)
    assert not ok


# -- write atomicity ----------------------------------------------------------


def test_concurrent_writers_single_winner(tmp_path):
    mrf, plan = _grounding()
    store = GroundingStore(tmp_path)
    barrier = threading.Barrier(2)
    results = []

    def writer():
        barrier.wait()
        results.append(store.put("raced", mrf))

    threads = [threading.Thread(target=writer) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results.count(True) == 1
    # No torn read: the surviving entry is fully valid.
    (_, ok, message), = store.verify("raced")
    assert ok, message
    assert not any("tmp-" in name for name in os.listdir(tmp_path))


def test_rename_loser_cleans_up_and_reports_false(tmp_path):
    # Deterministic race loss: another writer published a (partial)
    # entry directory between our existence check and the rename.
    mrf, _ = _grounding()
    store = GroundingStore(tmp_path)
    entry = store.entry_dir("contested")
    entry.mkdir(parents=True)
    (entry / "squatter").write_text("partial")
    assert store.put("contested", mrf) is False
    assert (entry / "squatter").exists()  # the published dir is untouched
    assert not any("tmp-" in name for name in os.listdir(tmp_path))


def test_readonly_store_degrades_to_false(tmp_path, monkeypatch):
    # Tests run as root, so chmod cannot produce EACCES; simulate the
    # unwritable directory at the publish step instead.
    mrf, _ = _grounding()
    store = GroundingStore(tmp_path)

    def denied(src, dst):
        raise PermissionError(13, "read-only store")

    monkeypatch.setattr(os, "rename", denied)
    assert store.put("k", mrf) is False
    monkeypatch.undo()
    assert store.keys() == []
    assert not any("tmp-" in name for name in os.listdir(tmp_path))


def test_store_root_being_a_file_degrades_to_false(tmp_path):
    mrf, _ = _grounding()
    root = tmp_path / "not-a-dir"
    root.write_text("file")
    assert GroundingStore(root).put("k", mrf) is False
    assert GroundingStore(root).load("k") is None
    assert GroundingStore(root).keys() == []


# -- gc -----------------------------------------------------------------------


def test_gc_reclaims_crashed_writer_tmp_dirs(tmp_path):
    store, key, _ = _populated(tmp_path)
    crashed = tmp_path / "deadbeef.tmp-99999-0"
    crashed.mkdir()
    (crashed / "kind.npy").write_bytes(b"partial")
    assert store.gc() == [crashed.name]
    assert store.keys() == [key]  # live entries survive a plain gc


def test_gc_never_breaks_a_loaded_open_mmap(tmp_path):
    # POSIX unlink semantics: a reader holding attached mmap views keeps
    # the inodes alive; gc after load must not perturb the solve.
    store, key, mrf = _populated(tmp_path)
    loaded = store.load(key)
    reference = AdmmSolver(mrf, AdmmSettings(max_iterations=300))
    expected = reference.solve()
    assert store.gc(all_entries=True) == [key]
    assert store.keys() == []
    solver = AdmmSolver(loaded.mrf, AdmmSettings(max_iterations=300))
    result = solver.solve()
    assert result.iterations == expected.iterations
    assert np.array_equal(result.x, expected.x)
    assert result.energy == expected.energy
    reference.close()
    solver.close()


# -- the collective disk tier -------------------------------------------------


def test_cache_disk_tier_attaches_and_spills(tmp_path):
    problem = _problem()
    settings = CollectiveSettings(grounding_store=str(tmp_path))

    populate = CollectiveGroundingCache()
    grounded = populate.grounded(problem, settings, shard_size=8)
    assert populate.disk_misses == 1 and populate.disk_hits == 0
    assert grounded.stats is not None  # a real ground happened
    assert len(GroundingStore(tmp_path).keys()) == 1

    attach = CollectiveGroundingCache()  # a "new process lifetime"
    attached = attach.grounded(problem, settings, shard_size=8)
    assert attach.disk_hits == 1 and attach.disk_misses == 0
    assert attached.stats is None  # attached, nothing ground
    assert mrf_fingerprint(attached.mrf) == mrf_fingerprint(grounded.mrf)
    grounded.close()
    attached.close()


def test_disk_tier_key_is_shard_size_independent(tmp_path):
    # Solves are bit-identical under any term partition, so one stored
    # entry serves readers grounding at any shard size.
    problem = _problem()
    settings = CollectiveSettings(grounding_store=str(tmp_path))
    populate = CollectiveGroundingCache()
    populate.grounded(problem, settings, shard_size=8).close()
    attach = CollectiveGroundingCache()
    attach.grounded(problem, settings, shard_size=256).close()
    assert attach.disk_hits == 1
    assert len(GroundingStore(tmp_path).keys()) == 1


def test_disk_tier_corrupt_entry_falls_back_to_fresh_ground(tmp_path):
    problem = _problem()
    settings = CollectiveSettings(grounding_store=str(tmp_path))
    populate = CollectiveGroundingCache()
    populate.grounded(problem, settings, shard_size=8).close()
    store = GroundingStore(tmp_path)
    (key,) = store.keys()
    path = store.entry_dir(key) / "var.npy"
    path.write_bytes(path.read_bytes()[:16])
    attach = CollectiveGroundingCache()
    grounded = attach.grounded(problem, settings, shard_size=8)
    assert attach.disk_hits == 0
    assert grounded.stats is not None  # fell back to a real ground
    grounded.close()


def test_from_store_reweight_guard(tmp_path):
    # The stored grounding-time weights drive can_reweight, exactly as
    # on an in-process artifact.
    settings = CollectiveSettings()
    writer = GroundedCollective(_problem(), settings, shard_size=8)
    store = GroundingStore(tmp_path)
    key = collective_structure_key(_problem(), settings)
    store.put(key, writer.mrf, extra=writer.store_extra())
    stored = store.load(key)
    attached = GroundedCollective.from_store(_problem(), settings, stored)
    assert attached.weights == settings.weights
    assert attached.can_reweight(settings.weights)
    writer.close()


def test_from_store_rejects_entry_without_reweight_registry(tmp_path):
    # An entry spilled without the prior components / grounding weights
    # cannot be reweighted safely; from_store must refuse it (and the
    # disk cache tier then falls back to a fresh ground).
    from repro.errors import InferenceError

    mrf, _plan = _grounding()
    settings = CollectiveSettings()
    store = GroundingStore(tmp_path)
    key = collective_structure_key(_problem(), settings)
    store.put(key, mrf, extra={"weights": settings.weights})
    stored = store.load(key)
    with pytest.raises(InferenceError):
        GroundedCollective.from_store(_problem(), settings, stored)
