"""Journal / delta semantics of the observation database.

Covers the structured change journal behind incremental grounding:
``state_token`` identity, ``delta_since`` replay (net-out, windowing,
foreign tokens), the token-stable value-identical re-observe, and the
insertion-order ``__iter__`` guarantee (with a lint regression pinning
the RPL002 hash-order class out of ``database.py``).
"""

import pickle

import pytest

from repro.errors import GroundingError
from repro.psl.database import EMPTY_DELTA, JOURNAL_LIMIT, Database, DatabaseDelta
from repro.psl.predicate import Predicate

P = Predicate("p", 1, closed=True)
Q = Predicate("q", 1, closed=False)


def test_state_token_changes_on_mutation():
    db = Database()
    t0 = db.state_token()
    db.observe(P("a"), 0.5)
    t1 = db.state_token()
    assert t0 != t1
    db.add_target(Q("x"))
    assert db.state_token() != t1


def test_tokens_of_distinct_databases_never_alias():
    a, b = Database(), Database()
    a.observe(P("a"), 1.0)
    b.observe(P("a"), 1.0)
    # Same mutation sequence, same version — still distinct snapshots.
    assert a.state_token() != b.state_token()
    assert b.delta_since(a.state_token()) is None


def test_pickled_copy_keeps_its_salt():
    db = Database()
    db.observe(P("a"), 1.0)
    copy = pickle.loads(pickle.dumps(db))
    assert copy.state_token() == db.state_token()
    assert copy.delta_since(db.state_token()) == EMPTY_DELTA


def test_delta_since_equal_version_is_empty_and_falsy():
    db = Database()
    db.observe(P("a"), 1.0)
    delta = db.delta_since(db.state_token())
    assert delta == EMPTY_DELTA
    assert not delta


def test_delta_since_reports_new_observations_and_targets():
    db = Database()
    token = db.state_token()
    db.observe(P("a"), 0.25)
    db.add_target(Q("x"))
    delta = db.delta_since(token)
    assert delta
    assert delta.observed == ((P("a"), 0.25),)
    assert delta.added_targets == (Q("x"),)
    assert delta.retracted_observations == ()
    assert delta.retracted_targets == ()
    assert delta.touched_atoms == (P("a"), Q("x"))
    assert delta.predicates == {P, Q}


def test_delta_since_nets_out_observe_then_retract():
    db = Database()
    token = db.state_token()
    db.observe(P("a"), 0.5)
    db.retract_observation(P("a"))
    assert db.delta_since(token) == EMPTY_DELTA
    # ... but the version did move: the token is not the current one.
    assert db.state_token() != token


def test_delta_since_nets_out_value_roundtrip():
    db = Database()
    db.observe(P("a"), 0.5)
    token = db.state_token()
    db.observe(P("a"), 0.9)
    db.observe(P("a"), 0.5)
    assert db.delta_since(token) == EMPTY_DELTA


def test_delta_since_reports_net_value_change_once():
    db = Database()
    db.observe(P("a"), 0.1)
    token = db.state_token()
    db.observe(P("a"), 0.2)
    db.observe(P("a"), 0.3)
    delta = db.delta_since(token)
    assert delta.observed == ((P("a"), 0.3),)


def test_delta_since_retract_then_re_add_target():
    db = Database()
    db.add_target(Q("x"))
    token = db.state_token()
    db.retract_target(Q("x"))
    db.add_target(Q("x"))
    assert db.delta_since(token) == EMPTY_DELTA
    db.retract_target(Q("x"))
    delta = db.delta_since(token)
    assert delta.retracted_targets == (Q("x"),)
    assert delta.added_targets == ()


def test_delta_since_observation_becomes_target():
    db = Database()
    db.observe(Q("x"), 1.0)
    token = db.state_token()
    db.retract_observation(Q("x"))
    db.add_target(Q("x"))
    delta = db.delta_since(token)
    assert delta.retracted_observations == (Q("x"),)
    assert delta.added_targets == (Q("x"),)
    assert delta.observed == ()


def test_delta_since_rejects_foreign_future_and_malformed_tokens():
    db = Database()
    db.observe(P("a"), 1.0)
    other = Database()
    assert db.delta_since(other.state_token()) is None
    salt, version = db.state_token()
    assert db.delta_since((salt, version + 1)) is None  # from the future
    assert db.delta_since((salt, "0")) is None
    assert db.delta_since("not-a-token") is None
    assert db.delta_since(None) is None


def test_delta_since_pre_window_token_returns_none():
    db = Database()
    token = db.state_token()
    for i in range(JOURNAL_LIMIT + 1):
        db.observe(P(f"a{i}"), 1.0)
    # The journal truncated from the front; the root token predates it.
    assert db.delta_since(token) is None
    # A recent token is still inside the retained window.
    recent = db.state_token()
    db.observe(P("tail"), 1.0)
    assert db.delta_since(recent) == DatabaseDelta(
        observed=((P("tail"), 1.0),),
        retracted_observations=(),
        added_targets=(),
        retracted_targets=(),
    )


def test_value_identical_reobserve_is_token_stable():
    db = Database()
    db.observe(P("a"), 0.75)
    token = db.state_token()
    db.observe(P("a"), 0.75)
    assert db.state_token() == token
    assert db.delta_since(token) == EMPTY_DELTA


def test_retract_unknown_raises():
    db = Database()
    with pytest.raises(GroundingError):
        db.retract_observation(P("a"))
    with pytest.raises(GroundingError):
        db.retract_target(Q("x"))


def test_duplicate_add_target_is_token_stable():
    db = Database()
    db.add_target(Q("x"))
    token = db.state_token()
    db.add_target(Q("x"))
    assert db.state_token() == token


def test_retract_restores_closed_world_default():
    db = Database()
    db.observe(P("a"), 0.8)
    db.retract_observation(P("a"))
    assert db.truth(P("a")) == 0.0
    assert db.atoms_of(P) == frozenset()
    db.add_target(Q("x"))
    db.retract_target(Q("x"))
    assert not db.is_target(Q("x"))
    assert Q("x") not in db.targets_in_order


def test_iteration_is_insertion_ordered():
    db = Database()
    atoms = [P(f"a{i}") for i in range(20)] + [Q(f"b{i}") for i in range(5)]
    for atom in atoms[:20]:
        db.observe(atom, 1.0)
    for atom in atoms[20:]:
        db.add_target(atom)
    assert list(db) == atoms
    # Retract-then-re-add moves the atom to the back of its bucket —
    # iteration order tracks *current* insertion order, not history.
    db.retract_observation(atoms[0])
    db.observe(atoms[0], 1.0)
    assert list(db) == atoms[1:20] + [atoms[0]] + atoms[20:]


def test_database_module_is_hash_order_clean():
    """Lint regression: no RPL002 (hash-order iteration) in database.py."""
    from repro.psl import database
    from repro.analysis.runner import lint_paths

    report = lint_paths([database.__file__])
    assert not report.parse_errors
    assert [f for f in report.new if f.rule == "RPL002"] == []
    assert [f for f in report.baselined if f.rule == "RPL002"] == []
