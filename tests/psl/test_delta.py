"""Delta grounding is bit-identical to grounding from scratch.

The contract of :class:`repro.psl.delta.IncrementalProgramGrounding`:
after ANY journal-replayable edit sequence, the patched MRF has the same
:func:`structure_fingerprint` / :func:`mrf_fingerprint` — and therefore
the same ADMM solve trajectory — as a from-scratch ground of the edited
program, under every executor and shard size.  Only shards whose rules
read a touched predicate are re-ground; everything else splices.
"""

import numpy as np
import pytest

from repro.psl.admm import AdmmSettings, AdmmSolver
from repro.psl.delta import IncrementalProgramGrounding
from repro.psl.program import PslProgram
from repro.psl.rule import lit
from repro.psl.sharding import mrf_fingerprint, structure_fingerprint

SHARD_SIZES = (1, 2, 7, None)
EXECUTORS = ("serial", "thread:2", "process:2")


def _program() -> PslProgram:
    """Four-rule voting model over two predicate families.

    ``likes`` feeds only the last two rules, so edits to it must leave
    the friend-driven shards spliced, not re-ground.
    """
    program = PslProgram()
    friend = program.predicate("friend", 2)
    likes = program.predicate("likes", 2)
    votes = program.predicate("votes", 2, closed=False)
    program.rule(
        [lit(friend, "A", "B"), lit(votes, "A", "P")], [lit(votes, "B", "P")], weight=0.5
    )
    program.rule([lit(friend, "A", "B")], [lit(friend, "B", "A")], weight=0.25)
    program.rule([lit(likes, "A", "P")], [lit(votes, "A", "P")], weight=2.0)
    program.rule([lit(votes, "A", "P")], [], weight=0.1)
    for pair in (("a", "b"), ("b", "c"), ("a", "c")):
        program.observe(friend(*pair))
    program.observe(likes("a", "l"), 0.9)
    for who in "abc":
        for party in ("l", "r"):
            program.target(votes(who, party))
    return program


def _fresh_mrf(program: PslProgram):
    mrf, _ = program.ground_sharded()
    return mrf


def _assert_same_solve(patched, fresh) -> None:
    assert structure_fingerprint(patched) == structure_fingerprint(fresh)
    assert mrf_fingerprint(patched) == mrf_fingerprint(fresh)
    settings = AdmmSettings(max_iterations=120)
    a = AdmmSolver(patched, settings).solve()
    b = AdmmSolver(fresh, settings).solve()
    assert a.iterations == b.iterations
    np.testing.assert_array_equal(a.x, b.x)
    assert a.energy == b.energy


@pytest.mark.parametrize("shard_size", SHARD_SIZES)
@pytest.mark.parametrize("executor", EXECUTORS)
def test_observation_edit_matches_scratch(executor, shard_size):
    program = _program()
    likes = program.predicate("likes", 2)
    inc = IncrementalProgramGrounding(program, executor=executor, shard_size=shard_size)
    assert inc.full_grounds == 1

    program.observe(likes("b", "r"), 0.7)
    patched = inc.refresh()
    assert inc.patched_grounds == 1
    _assert_same_solve(patched, _fresh_mrf(program))


def test_untouched_predicates_splice():
    program = _program()
    likes = program.predicate("likes", 2)
    inc = IncrementalProgramGrounding(program, shard_size=1)
    program.observe(likes("c", "l"), 0.4)
    inc.refresh()
    stats = inc.splice_stats
    assert stats is not None
    # Only the likes->votes rule shards re-ground; friend rules, the
    # symmetry rule, and the prior splice straight through.
    assert stats.reused_shards > 0
    assert stats.fresh_shards < stats.num_shards
    assert stats.reuse_fraction > 0.5


def test_noop_refresh_keeps_mrf_object():
    program = _program()
    inc = IncrementalProgramGrounding(program)
    mrf = inc.mrf
    assert inc.refresh() is mrf
    assert inc.full_grounds == 1
    assert inc.patched_grounds == 0


def test_value_identical_reobserve_does_not_reground():
    program = _program()
    likes = program.predicate("likes", 2)
    inc = IncrementalProgramGrounding(program)
    mrf = inc.mrf
    program.observe(likes("a", "l"), 0.9)  # same value: token-stable
    assert inc.refresh() is mrf
    assert inc.patched_grounds == 0


@pytest.mark.parametrize("shard_size", (1, 3, None))
def test_multi_step_chain_matches_scratch(shard_size):
    program = _program()
    friend = program.predicate("friend", 2)
    likes = program.predicate("likes", 2)
    votes = program.predicate("votes", 2, closed=False)
    inc = IncrementalProgramGrounding(program, shard_size=shard_size)

    steps = [
        lambda: program.observe(likes("b", "l"), 0.6),
        lambda: program.observe(friend("c", "b"), 0.8),
        lambda: program.database.retract_observation(likes("a", "l")),
        lambda: program.observe(likes("a", "l"), 0.9),  # re-add after retract
        lambda: program.target(votes("d", "l")),
        lambda: program.database.retract_target(votes("d", "l")),
    ]
    for step in steps:
        step()
        patched = inc.refresh()
        _assert_same_solve(patched, _fresh_mrf(program))
    assert inc.full_grounds == 1
    assert inc.patched_grounds == len(steps)


def test_retract_then_readd_round_trips_to_original_structure():
    program = _program()
    likes = program.predicate("likes", 2)
    inc = IncrementalProgramGrounding(program)
    before = structure_fingerprint(inc.mrf)
    program.database.retract_observation(likes("a", "l"))
    inc.refresh()
    program.observe(likes("a", "l"), 0.9)
    after = inc.refresh()
    assert structure_fingerprint(after) == before
    _assert_same_solve(after, _fresh_mrf(program))


def test_weight_override_change_forces_reground_of_that_rule():
    program = _program()
    rule = program._rules[0]
    inc = IncrementalProgramGrounding(program, shard_size=1)
    likes = program.predicate("likes", 2)
    program.observe(likes("b", "r"), 0.3)
    inc.weight_overrides = {rule: 1.5}
    patched = inc.refresh()
    fresh, _ = program.ground_sharded({rule: 1.5})
    assert mrf_fingerprint(patched) == mrf_fingerprint(fresh)


def test_foreign_database_swap_degrades_to_full_ground():
    program = _program()
    likes = program.predicate("likes", 2)
    inc = IncrementalProgramGrounding(program)
    # Replace the database wholesale: a foreign salt the journal cannot
    # bridge.  Refresh must fall back to a full re-ground, never error.
    import pickle

    program.database = pickle.loads(pickle.dumps(program.database))
    program.database._salt = ("foreign", 0)
    program.observe(likes("c", "r"), 0.2)
    refreshed = inc.refresh()
    assert inc.full_grounds == 2
    assert inc.patched_grounds == 0
    _assert_same_solve(refreshed, _fresh_mrf(program))


def test_journal_truncation_degrades_to_full_ground(monkeypatch):
    import repro.psl.database as database_module

    monkeypatch.setattr(database_module, "JOURNAL_LIMIT", 4)
    program = _program()
    likes = program.predicate("likes", 2)
    inc = IncrementalProgramGrounding(program)
    for i in range(6):  # overflow the tiny journal window
        program.observe(likes(f"p{i}", "l"), 0.5)
    refreshed = inc.refresh()
    assert inc.full_grounds == 2
    assert inc.patched_grounds == 0
    _assert_same_solve(refreshed, _fresh_mrf(program))
