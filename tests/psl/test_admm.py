"""Unit tests for the ADMM solver, cross-checked against scipy's LP solver."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.psl.admm import AdmmSettings, AdmmSolver
from repro.psl.hlmrf import HingeLossMRF
from repro.psl.predicate import Predicate

X = Predicate("x", 1, closed=False)


def _mrf(num_vars: int) -> HingeLossMRF:
    mrf = HingeLossMRF()
    for i in range(num_vars):
        mrf.variable_index(X(i))
    return mrf


def test_single_hinge_pulls_variable_down():
    mrf = _mrf(1)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=2.0)  # 2*max(0, x)
    result = AdmmSolver(mrf).solve()
    assert result.converged
    assert result.x[0] == pytest.approx(0.0, abs=1e-4)


def test_opposing_hinges_balance_by_weight():
    # min 3*max(0,1-x) + 1*max(0,x): optimum x=1 (coverage beats size).
    mrf = _mrf(1)
    mrf.add_potential({X(0): -1.0}, 1.0, weight=3.0)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    result = AdmmSolver(mrf).solve()
    assert result.x[0] == pytest.approx(1.0, abs=1e-3)


def test_hard_constraint_respected():
    # min max(0, 1-x) subject to x <= 0.25
    mrf = _mrf(1)
    mrf.add_potential({X(0): -1.0}, 1.0, weight=1.0)
    mrf.add_constraint({X(0): 1.0}, -0.25)
    result = AdmmSolver(mrf).solve()
    assert result.x[0] == pytest.approx(0.25, abs=1e-3)


def test_equality_constraint():
    mrf = _mrf(2)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    mrf.add_constraint({X(0): 1.0, X(1): -1.0}, 0.0, equality=True)
    mrf.add_potential({X(1): -1.0}, 0.5, weight=10.0)  # pull x1 up to 0.5
    result = AdmmSolver(mrf).solve()
    assert result.x[0] == pytest.approx(result.x[1], abs=1e-3)


def test_squared_hinge_quadratic_optimum():
    # min 1*max(0,x)^2 + 1*max(0, 0.8-x)^2 -> x = 0.4
    mrf = _mrf(1)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0, squared=True)
    mrf.add_potential({X(0): -1.0}, 0.8, weight=1.0, squared=True)
    result = AdmmSolver(mrf).solve()
    assert result.x[0] == pytest.approx(0.4, abs=1e-3)


def test_box_constraints_enforced():
    mrf = _mrf(1)
    mrf.add_potential({X(0): -1.0}, 5.0, weight=100.0)  # wants x -> 5
    result = AdmmSolver(mrf).solve()
    assert result.x[0] == pytest.approx(1.0, abs=1e-4)


def test_empty_mrf_returns_immediately():
    mrf = _mrf(2)
    result = AdmmSolver(mrf).solve()
    assert result.converged
    assert result.iterations == 0


def test_warm_start_is_used():
    mrf = _mrf(1)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    cold = AdmmSolver(mrf).solve()
    warm = AdmmSolver(mrf).solve(warm_start=np.array([0.0]))
    assert warm.iterations <= cold.iterations


def _random_linear_hinge_mrf(rng: np.random.Generator, n: int, m: int) -> HingeLossMRF:
    mrf = _mrf(n)
    for _ in range(m):
        size = rng.integers(1, min(4, n) + 1)
        idx = rng.choice(n, size=size, replace=False)
        coeffs = {X(int(i)): float(rng.normal()) for i in idx}
        mrf.add_potential(coeffs, float(rng.normal()), weight=float(rng.uniform(0.1, 3)))
    return mrf


def _lp_reference(mrf: HingeLossMRF) -> float:
    """Optimal energy via scipy linprog (hinges -> slack variables)."""
    n = mrf.num_variables
    m = len(mrf.potentials)
    c = np.zeros(n + m)
    a_ub, b_ub = [], []
    for k, p in enumerate(mrf.potentials):
        c[n + k] = p.weight
        row = np.zeros(n + m)
        for i, coeff in p.coefficients:
            row[i] = coeff
        row[n + k] = -1.0
        a_ub.append(row)
        b_ub.append(-p.offset)
    bounds = [(0, 1)] * n + [(0, None)] * m
    res = linprog(c, A_ub=np.array(a_ub), b_ub=np.array(b_ub), bounds=bounds, method="highs")
    assert res.success
    return res.fun


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_admm_matches_lp_reference_on_random_problems(seed):
    rng = np.random.default_rng(seed)
    mrf = _random_linear_hinge_mrf(rng, n=6, m=12)
    settings = AdmmSettings(max_iterations=20000, epsilon_abs=1e-7, epsilon_rel=1e-6)
    result = AdmmSolver(mrf, settings).solve()
    reference = _lp_reference(mrf)
    assert result.energy == pytest.approx(reference, abs=2e-3)


def test_reports_non_convergence_when_capped():
    mrf = _mrf(3)
    rng = np.random.default_rng(7)
    for _ in range(10):
        mrf.add_potential(
            {X(int(i)): float(rng.normal()) for i in range(3)},
            float(rng.normal()),
            weight=1.0,
        )
    result = AdmmSolver(mrf, AdmmSettings(max_iterations=3)).solve()
    assert not result.converged
    assert result.iterations == 3


@pytest.mark.parametrize(
    "bad",
    [
        {"check_every": 0},
        {"check_every": -3},
        {"rho": 0.0},
        {"rho": -1.0},
        {"max_iterations": -1},
    ],
    ids=lambda bad: next(iter(bad.items()))[0] + "=" + str(next(iter(bad.values()))),
)
def test_invalid_settings_rejected_at_construction(bad):
    # check_every=0 used to crash mid-solve with ZeroDivisionError at
    # the `iteration % check_every` gate; now every nonsense knob fails
    # fast at solver construction with a clear InferenceError.
    from repro.errors import InferenceError

    mrf = _mrf(1)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=2.0)
    with pytest.raises(InferenceError):
        AdmmSolver(mrf, AdmmSettings(**bad))


def test_zero_max_iterations_is_valid_and_returns_initial_point():
    # max_iterations=0 is a legitimate "evaluate, don't iterate" knob.
    mrf = _mrf(1)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=2.0)
    result = AdmmSolver(mrf, AdmmSettings(max_iterations=0)).solve()
    assert result.iterations == 0
    assert result.x[0] == 0.5


def test_truncated_exit_matches_scheduled_check_residuals():
    # Regression for the deduplicated convergence helper: a run capped
    # between checks (max_iterations < check_every) must report exactly
    # the residuals a run whose schedule lands on that iteration reports
    # — the two exit paths now share one definition of the criterion.
    mrf = _mrf(2)
    mrf.add_potential({X(0): -1.0, X(1): -1.0}, 1.0, weight=3.0)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    between = AdmmSolver(mrf, AdmmSettings(max_iterations=3, check_every=10)).solve()
    on_schedule = AdmmSolver(mrf, AdmmSettings(max_iterations=3, check_every=3)).solve()
    assert between.iterations == on_schedule.iterations == 3
    assert between.primal_residual == on_schedule.primal_residual
    assert between.dual_residual == on_schedule.dual_residual
    assert between.converged == on_schedule.converged
    assert np.array_equal(between.x, on_schedule.x)


def test_unconverged_exit_reports_finite_residuals():
    # max_iterations < check_every: the loop used to exit without ever
    # computing residuals, reporting inf for both.
    mrf = _mrf(2)
    mrf.add_potential({X(0): -1.0, X(1): -1.0}, 1.0, weight=3.0)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    result = AdmmSolver(mrf, AdmmSettings(max_iterations=3, check_every=10)).solve()
    assert result.iterations == 3
    assert np.isfinite(result.primal_residual)
    assert np.isfinite(result.dual_residual)


def test_exit_between_checks_reports_fresh_residuals():
    # 25 iterations with check_every=10: the last check is at 20; the
    # residuals must describe iteration 25, not iteration 20.
    mrf = _mrf(2)
    mrf.add_potential({X(0): -1.0, X(1): -1.0}, 1.0, weight=3.0)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    settings = AdmmSettings(
        max_iterations=25, check_every=10, epsilon_abs=1e-12, epsilon_rel=1e-12
    )
    result = AdmmSolver(mrf, settings).solve()
    reference = AdmmSolver(mrf, AdmmSettings()).solve()
    assert np.isfinite(result.primal_residual)
    assert np.isfinite(result.dual_residual)
    # Sanity: the truncated run's residuals are no better than a
    # converged run's.
    assert result.primal_residual >= reference.primal_residual or (
        result.dual_residual >= reference.dual_residual
    )


def test_final_check_can_credit_convergence():
    # An easy problem converges within a handful of iterations; even if
    # the cap falls between checks the final residual test should mark it
    # converged rather than claiming failure with tiny residuals.
    mrf = _mrf(1)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=2.0)
    result = AdmmSolver(mrf, AdmmSettings(max_iterations=99, check_every=1000)).solve()
    assert np.isfinite(result.primal_residual)
    assert np.isfinite(result.dual_residual)
    assert result.converged


def test_warm_state_resumes_near_optimum():
    mrf = _mrf(3)
    mrf.add_potential({X(0): -1.0, X(1): -1.0}, 1.0, weight=3.0)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    mrf.add_potential({X(1): 1.0, X(2): 1.0}, -0.5, weight=2.0)
    settings = AdmmSettings(check_every=1)
    cold = AdmmSolver(mrf, settings).solve()
    assert cold.converged and cold.state is not None
    rewarm = AdmmSolver(mrf, settings).solve(warm_state=cold.state)
    assert rewarm.converged
    assert rewarm.iterations < cold.iterations
    assert np.allclose(rewarm.x, cold.x, atol=1e-3)


def test_warm_state_shape_mismatch_falls_back():
    mrf = _mrf(2)
    mrf.add_potential({X(0): -1.0, X(1): -1.0}, 1.0, weight=3.0)
    other = _mrf(1)
    other.add_potential({X(0): 1.0}, 0.0, weight=2.0)
    foreign = AdmmSolver(other).solve().state
    result = AdmmSolver(mrf).solve(warm_state=foreign)
    assert result.converged  # state silently ignored, cold start used
    reference = AdmmSolver(mrf).solve()
    assert np.allclose(result.x, reference.x, atol=1e-3)
