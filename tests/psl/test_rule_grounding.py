"""Unit tests for rule construction and grounding."""

import pytest

from repro.errors import GroundingError
from repro.psl.database import Database
from repro.psl.grounding import ground_rule, linearize, substitutions
from repro.psl.predicate import Predicate
from repro.psl.rule import Rule, lit, neg

FRIEND = Predicate("friend", 2, closed=True)
VOTES = Predicate("votes", 2, closed=False)


def _db():
    db = Database()
    db.observe(FRIEND("a", "b"))
    db.observe(FRIEND("b", "c"), 0.5)
    for person in ("a", "b", "c"):
        db.add_target(VOTES(person, "left"))
    return db


def test_rule_repr_and_weight_validation():
    r = Rule((lit(FRIEND, "X", "Y"),), (lit(VOTES, "X", "p"),), 2.0)
    assert "friend" in repr(r)
    with pytest.raises(GroundingError):
        Rule((lit(FRIEND, "X", "Y"),), (), weight=-1.0)


def test_unsafe_rule_rejected():
    with pytest.raises(GroundingError):
        Rule((lit(FRIEND, "X", "X"),), (lit(VOTES, "Y", "p"),))


def test_literal_arity_checked():
    with pytest.raises(GroundingError):
        lit(FRIEND, "X")


def test_neg_flips():
    l = lit(FRIEND, "X", "Y")
    assert neg(l).negated
    assert not neg(neg(l)).negated


def test_substitutions_join_over_body():
    rule = Rule(
        (lit(FRIEND, "X", "Y"), lit(VOTES, "X", "P")),
        (lit(VOTES, "Y", "P"),),
        1.0,
    )
    subs = list(substitutions(rule, _db()))
    # friend(a,b) with votes(a,left); friend(b,c) with votes(b,left)
    bound = {(s[next(v for v in s if v.name == "X")], s[next(v for v in s if v.name == "Y")]) for s in subs}
    assert bound == {("a", "b"), ("b", "c")}


def test_grounding_drops_trivially_satisfied():
    db = _db()
    rule = Rule((lit(FRIEND, "X", "Y"),), (lit(VOTES, "Y", "left"),), 1.0)
    groundings = ground_rule(rule, db)
    assert len(groundings) == 2  # friend(a,b) and friend(b,c), none trivial

    # A body literal observed at 0 makes the grounding trivially satisfied.
    db2 = Database()
    db2.observe(FRIEND("a", "b"), 0.0)
    db2.add_target(VOTES("b", "left"))
    assert ground_rule(rule, db2) == []


def test_variables_only_in_head_rejected_at_grounding():
    other = Predicate("other", 1, closed=False)
    rule = Rule((lit(FRIEND, "X", "X"),), (lit(other, "X"),), 1.0)
    # Safe rule, groundable: X bound in body.
    assert ground_rule(rule, _db()) == []  # no friend(x,x) facts

    negated_only = Rule(
        (lit(FRIEND, "X", "Y"), neg(lit(VOTES, "Z", "left"))),
        (),
        1.0,
    )
    with pytest.raises(GroundingError):
        list(substitutions(negated_only, _db()))


def test_linearize_coefficients():
    db = _db()
    rule = Rule(
        (lit(FRIEND, "X", "Y"), lit(VOTES, "X", "left")),
        (lit(VOTES, "Y", "left"),),
        1.0,
    )
    grounding = next(
        g for g in ground_rule(rule, db) if g.body[0] == FRIEND("a", "b")
    )
    coefficients, constant = linearize(grounding, db)
    # s = friend(a,b) + votes(a) - 1 - votes(b) = 1 + x_a - 1 - x_b
    assert coefficients[VOTES("a", "left")] == 1.0
    assert coefficients[VOTES("b", "left")] == -1.0
    assert constant == pytest.approx(0.0)


def test_linearize_negated_target():
    db = Database()
    db.add_target(VOTES("a", "left"))
    rule = Rule((neg(lit(VOTES, "X", "left")),), (), 1.0)
    # Need a binding source: observe a driver atom.
    driver = Predicate("person", 1, closed=True)
    db.observe(driver("a"))
    rule = Rule((lit(driver, "X"), neg(lit(VOTES, "X", "left"))), (), 1.0)
    grounding = ground_rule(rule, db)[0]
    coefficients, constant = linearize(grounding, db)
    # s = person(a) + (1 - votes(a)) - 1 = 1 - votes(a)
    assert coefficients[VOTES("a", "left")] == -1.0
    assert constant == pytest.approx(1.0)


def test_soft_observed_body_scales_constant():
    db = _db()
    rule = Rule((lit(FRIEND, "b", "c"),), (lit(VOTES, "c", "left"),), 1.0)
    grounding = ground_rule(rule, db)[0]
    coefficients, constant = linearize(grounding, db)
    # s = 0.5 - votes(c)
    assert constant == pytest.approx(0.5)
    assert coefficients[VOTES("c", "left")] == -1.0
