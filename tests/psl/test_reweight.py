"""Ground once, reweight many: the weight/structure split end to end.

The contract under test, at every layer: the HL-MRF energy is linear in
the potential weights, so a *reweighted* artifact — MRF, compiled ADMM
partition, shared-memory staging, grounded program, grounded collective
— must be element-for-element identical to one freshly ground at the new
weights, and solves from it bit-identical to the re-grounding path.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.ibench.config import ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.psl.admm import AdmmSettings, AdmmSolver
from repro.psl.hlmrf import HingeLossMRF
from repro.psl.partition import SharedPartitionBuffers, build_partition
from repro.psl.predicate import Predicate
from repro.psl.program import PslProgram
from repro.psl.rule import lit
from repro.psl.sharding import mrf_fingerprint, structure_fingerprint
from repro.selection.collective import (
    CollectiveGroundingCache,
    CollectiveSettings,
    GroundedCollective,
    ground_collective,
    solve_collective,
)
from repro.selection.metrics import build_selection_problem
from repro.selection.objective import ObjectiveWeights

X = Predicate("x", 1, closed=False)


def _grouped_mrf() -> HingeLossMRF:
    mrf = HingeLossMRF()
    for i in range(4):
        mrf.variable_index(X(i))
    mrf.add_potential({X(0): 1.0, X(1): -1.0}, 0.25, weight=2.0, group="a")
    mrf.add_potential({X(1): 1.0}, 0.0, weight=2.0, squared=True, group="a")
    mrf.add_potential({X(2): 1.0}, -0.5, weight=3.0, group="b")
    mrf.add_potential({X(3): 1.0}, 0.1, weight=1.0)  # ungrouped: fixed
    mrf.add_potential({}, 0.5, weight=2.0, group="a")  # constant, mass 0.5
    mrf.add_constraint({X(0): 1.0, X(3): 1.0}, -1.0)
    return mrf


# -- HingeLossMRF weight mutation ---------------------------------------------


def test_set_group_weights_rewrites_members_and_constants():
    mrf = _grouped_mrf()
    assert mrf.constant_energy == pytest.approx(2.0 * 0.5)
    version = mrf.weights_version
    mrf.set_group_weights({"a": 5.0})
    assert mrf.weights_version == version + 1
    assert [p.weight for p in mrf.potentials] == [5.0, 5.0, 3.0, 1.0]
    assert np.array_equal(mrf.potential_weights(), [5.0, 5.0, 3.0, 1.0])
    # The folded constant rescales with its group: 5.0 * mass 0.5.
    assert mrf.constant_energy == pytest.approx(2.5)
    # Unknown groups are skipped (no groundings from that origin here).
    mrf.set_group_weights({"nope": 7.0})
    assert [p.weight for p in mrf.potentials] == [5.0, 5.0, 3.0, 1.0]


def test_reweighted_mrf_energy_matches_fresh_construction():
    mrf = _grouped_mrf()
    mrf.set_group_weights({"a": 0.7, "b": 9.0})
    fresh = HingeLossMRF()
    for i in range(4):
        fresh.variable_index(X(i))
    fresh.add_potential({X(0): 1.0, X(1): -1.0}, 0.25, weight=0.7, group="a")
    fresh.add_potential({X(1): 1.0}, 0.0, weight=0.7, squared=True, group="a")
    fresh.add_potential({X(2): 1.0}, -0.5, weight=9.0, group="b")
    fresh.add_potential({X(3): 1.0}, 0.1, weight=1.0)
    fresh.add_potential({}, 0.5, weight=0.7, group="a")
    fresh.add_constraint({X(0): 1.0, X(3): 1.0}, -1.0)
    assert mrf_fingerprint(mrf) == mrf_fingerprint(fresh)


def _grouped_mrf_no_constant() -> HingeLossMRF:
    mrf = HingeLossMRF()
    for i in range(4):
        mrf.variable_index(X(i))
    mrf.add_potential({X(0): 1.0, X(1): -1.0}, 0.25, weight=2.0, group="a")
    mrf.add_potential({X(1): 1.0}, 0.0, weight=2.0, squared=True, group="a")
    mrf.add_potential({X(2): 1.0}, -0.5, weight=3.0, group="b")
    mrf.add_potential({X(3): 1.0}, 0.1, weight=1.0)
    mrf.add_constraint({X(0): 1.0, X(3): 1.0}, -1.0)
    return mrf


def test_zero_and_negative_reweights_rejected():
    mrf = _grouped_mrf()
    with pytest.raises(InferenceError):
        mrf.set_group_weights({"a": 0.0})  # members exist: structure change
    with pytest.raises(InferenceError):
        mrf.set_group_weights({"b": -1.0})
    with pytest.raises(InferenceError):
        _grouped_mrf_no_constant().set_potential_weights([1.0, 1.0, 0.0, 1.0])
    # Zero -> zero on a group that was ground at weight zero is a no-op;
    # zero -> NON-zero cannot restore the dropped potentials and raises.
    empty = HingeLossMRF()
    empty.variable_index(X(0))
    empty.add_potential({X(0): 1.0}, 0.0, weight=0.0, group="off")
    assert not empty.potentials
    assert "off" in empty.group_keys  # registry matches the sharded path
    empty.set_group_weights({"off": 0.0})  # does not raise
    with pytest.raises(InferenceError):
        empty.set_group_weights({"off": 1.0})
    with pytest.raises(InferenceError):
        empty.set_group_potential_weights("off", [])


def test_set_group_potential_weights_per_member():
    mrf = _grouped_mrf()
    mrf.set_group_potential_weights("a", [1.5, 2.5])
    assert [p.weight for p in mrf.potentials[:2]] == [1.5, 2.5]
    with pytest.raises(InferenceError):
        mrf.set_group_potential_weights("a", [1.0])  # member count mismatch
    with pytest.raises(InferenceError):
        mrf.set_group_potential_weights("nope", [1.0])  # unknown, non-empty
    mrf.set_group_potential_weights("nope", [])  # unknown, empty: no-op


def test_set_potential_weights_full_vector():
    mrf = _grouped_mrf_no_constant()
    mrf.set_potential_weights([4.0, 3.0, 2.0, 1.0])
    assert np.array_equal(mrf.potential_weights(), [4.0, 3.0, 2.0, 1.0])
    with pytest.raises(InferenceError):
        mrf.set_potential_weights([1.0])  # length mismatch
    # An MRF with group-folded constants rejects the flat vector: it
    # cannot rescale constant_energy, so the group APIs must be used.
    with pytest.raises(InferenceError):
        _grouped_mrf().set_potential_weights([4.0, 3.0, 2.0, 1.0])


# -- partition / solver reweight ----------------------------------------------


def test_partition_weight_views_see_in_place_writes():
    mrf = _grouped_mrf()
    partition = build_partition(mrf)
    mrf.set_group_weights({"a": 6.0, "b": 0.25})
    partition.set_potential_weights(mrf.potential_weights())
    fresh = build_partition(mrf)
    assert np.array_equal(partition.term_weights, fresh.term_weights)
    for old_block, new_block in zip(partition.blocks, fresh.blocks):
        assert np.array_equal(old_block.weight, new_block.weight)
    with pytest.raises(InferenceError):
        partition.set_potential_weights(np.ones(99))


def test_shared_buffers_weight_write_through():
    partition = build_partition(_grouped_mrf(), block_size=2)
    with SharedPartitionBuffers(partition) as shared:
        partition.term_weights[: partition.num_potentials] = [9.0, 8.0, 7.0, 6.0]
        shared.write_weights(partition)
        for block, mirror in zip(partition.blocks, shared.blocks):
            assert np.array_equal(mirror.weight, block.weight)
            # Structure fields were left alone.
            assert np.array_equal(mirror.coeff, block.coeff)
    with pytest.raises(InferenceError):
        shared.write_weights(partition)  # released


def test_solver_reweighted_solve_matches_fresh_solver():
    mrf = _grouped_mrf()
    solver = AdmmSolver(mrf, AdmmSettings(check_every=1))
    first = solver.solve()
    resolved = solver.solve(weights={"a": 4.0, "b": 0.5})
    fresh = AdmmSolver(mrf, AdmmSettings(check_every=1)).solve()
    assert resolved.iterations == fresh.iterations
    assert np.array_equal(resolved.x, fresh.x)
    assert resolved.energy == fresh.energy
    assert first.iterations > 0  # the first solve really ran


def test_solver_vector_reweight_and_warm_state():
    mrf = _grouped_mrf_no_constant()
    solver = AdmmSolver(mrf, AdmmSettings(check_every=1))
    cold = solver.solve(weights=np.array([2.0, 2.0, 3.0, 1.0]))
    warm = solver.solve(
        weights=np.array([2.1, 2.1, 3.1, 1.0]), warm_state=cold.state
    )
    assert warm.converged
    assert warm.iterations <= cold.iterations


# -- GroundedProgram ----------------------------------------------------------


def _learning_program():
    program = PslProgram()
    evidence = program.predicate("evidence", 1)
    label = program.predicate("label", 1, closed=False)
    support = program.rule([lit(evidence, "X")], [lit(label, "X")], weight=0.5)
    prior = program.rule([lit(label, "X")], [], weight=1.5)
    for item in ("a", "b", "c"):
        program.observe(evidence(item))
        program.target(label(item))
    return program, label, support, prior


def test_grounded_program_reweight_matches_fresh_ground():
    program, label, support, prior = _learning_program()
    grounded = program.ground_program()
    assert program.grounding_count == 1
    grounded.set_rule_weights({support: 2.0, prior: 0.25})
    fresh = program.ground({support: 2.0, prior: 0.25})
    assert mrf_fingerprint(grounded.mrf) == mrf_fingerprint(fresh)
    # And the reused solver solves the reweighted model exactly.
    reweighted = grounded.solve()
    reference = AdmmSolver(fresh).solve()
    assert np.array_equal(reweighted.x, reference.x)
    assert reweighted.iterations == reference.iterations


def test_grounded_program_rule_features_match_standalone():
    from repro.psl.learning import rule_features

    program, label, support, prior = _learning_program()
    grounded = program.ground_program()
    assignment = {label(i): v for i, v in zip("abc", (1.0, 0.0, 0.5))}
    via_artifact = grounded.rule_features(assignment)
    standalone = rule_features(program, assignment)
    assert via_artifact == standalone
    reused = rule_features(program, assignment, grounded=grounded)
    assert reused == standalone


# -- GroundedCollective + cache -----------------------------------------------


def _problem():
    scenario = generate_scenario(
        ScenarioConfig(
            num_primitives=3, rows_per_relation=8, pi_errors=40, pi_corresp=30, seed=7
        )
    )
    return build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )


def _weights(explains="1", errors="1", size="1") -> ObjectiveWeights:
    return ObjectiveWeights(
        explains=Fraction(explains), errors=Fraction(errors), size=Fraction(size)
    )


def test_grounded_collective_reweight_matches_fresh_ground():
    problem = _problem()
    grounded = GroundedCollective(problem, CollectiveSettings())
    for weights in (_weights("2", "1/2", "3"), _weights("1/4", "5", "1/8")):
        settings = CollectiveSettings(weights=weights)
        assert grounded.can_reweight(weights)
        grounded.reweight(weights)
        fresh, _, _ = ground_collective(problem, settings)
        assert mrf_fingerprint(grounded.mrf) == mrf_fingerprint(fresh)
        # Weight-independent structure: identical across the sweep.
        assert structure_fingerprint(grounded.mrf) == structure_fingerprint(fresh)


def test_grounded_collective_rejects_zero_pattern_changes():
    problem = _problem()
    grounded = GroundedCollective(problem, CollectiveSettings())
    assert not grounded.can_reweight(_weights(explains="0"))
    assert not grounded.can_reweight(_weights(errors="0", size="0"))
    with pytest.raises(InferenceError):
        grounded.reweight(_weights(explains="0"))


def test_grounding_cache_reweights_hits_and_regrouds_on_pattern_change():
    problem = _problem()
    cache = CollectiveGroundingCache(capacity=2)
    first = cache.grounded(problem, CollectiveSettings())
    again = cache.grounded(
        problem, CollectiveSettings(weights=_weights("3", "2", "1"))
    )
    assert again is first  # hit: same structure, reweighted in place
    assert cache.hits == 1 and cache.misses == 1
    assert first.weights == _weights("3", "2", "1")
    # A zero-crossing forces a fresh ground under the same key.
    reground = cache.grounded(
        problem, CollectiveSettings(weights=_weights(errors="0", size="0"))
    )
    assert reground is not first
    assert cache.misses == 2
    other = _problem()
    cache.grounded(other, CollectiveSettings())
    cache.grounded(_problem(), CollectiveSettings())  # evicts past capacity
    assert len(cache._entries) == 2
    cache.clear()
    assert not cache._entries and cache.hits == cache.misses == 0


def test_grounding_cache_concurrent_threads_with_tiny_capacity():
    # Thread-keyed entries + lock + owner-only eviction close: threads
    # churning distinct problems through a capacity-1 cache must never
    # see another thread's artifact closed (released solver) mid-use.
    import threading

    problems = [_problem() for _ in range(3)]
    cache = CollectiveGroundingCache(capacity=1)
    errors: list[BaseException] = []

    def lane(problem):
        try:
            for weights in (_weights(), _weights("2", "1", "1"), _weights("1", "2", "1")):
                grounded = cache.grounded(
                    problem, CollectiveSettings(weights=weights)
                )
                result = grounded.solver.solve()
                assert result.converged
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=lane, args=(p,)) for p in problems]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    cache.clear()


def test_solve_collective_reuse_matches_fresh_ground_path():
    problem = _problem()
    sweep = [
        _weights("1", "1", "1"),
        _weights("2", "1", "1/2"),
        _weights("1/2", "3", "2"),
    ]
    fresh_results = [
        solve_collective(
            problem, CollectiveSettings(weights=w, reuse_grounding=False)
        )
        for w in sweep
    ]
    reused_results = [
        solve_collective(problem, CollectiveSettings(weights=w)) for w in sweep
    ]
    for fresh, reused in zip(fresh_results, reused_results):
        assert reused.selected == fresh.selected
        assert reused.objective == fresh.objective
        assert reused.fractional == fresh.fractional
        assert reused.iterations == fresh.iterations
