"""Direct unit tests for the HL-MRF container."""

import pytest

from repro.errors import InferenceError
from repro.psl.hlmrf import HardConstraint, HingeLossMRF, HingePotential
from repro.psl.predicate import Predicate

X = Predicate("x", 1, closed=False)


def test_variable_interning_is_stable():
    mrf = HingeLossMRF()
    a = mrf.variable_index(X(0))
    b = mrf.variable_index(X(1))
    assert a == 0 and b == 1
    assert mrf.variable_index(X(0)) == 0  # idempotent
    assert mrf.num_variables == 2


def test_index_of_unknown_atom_raises():
    mrf = HingeLossMRF()
    with pytest.raises(InferenceError):
        mrf.index_of(X(9))


def test_potential_value_linear_and_squared():
    linear = HingePotential(((0, 1.0),), -0.25, weight=2.0)
    assert linear.value([0.75]) == pytest.approx(1.0)
    assert linear.value([0.0]) == 0.0
    squared = HingePotential(((0, 1.0),), -0.25, weight=2.0, squared=True)
    assert squared.value([0.75]) == pytest.approx(0.5)


def test_zero_weight_potentials_skipped():
    mrf = HingeLossMRF()
    mrf.add_potential({X(0): 1.0}, 0.0, weight=0.0)
    assert mrf.potentials == []


def test_negative_weight_rejected():
    mrf = HingeLossMRF()
    with pytest.raises(InferenceError):
        mrf.add_potential({X(0): 1.0}, 0.0, weight=-1.0)


def test_zero_coefficients_dropped():
    mrf = HingeLossMRF()
    mrf.add_potential({X(0): 0.0, X(1): 1.0}, 0.0, weight=1.0)
    assert len(mrf.potentials[0].coefficients) == 1


def test_constant_constraint_feasibility_check():
    mrf = HingeLossMRF()
    mrf.add_constraint({X(0): 0.0}, -1.0)  # trivially satisfied, dropped
    assert mrf.constraints == []
    with pytest.raises(InferenceError):
        mrf.add_constraint({}, 1.0)  # 1 <= 0: infeasible
    with pytest.raises(InferenceError):
        mrf.add_constraint({}, 1.0, equality=True)


def test_energy_sums_potentials():
    mrf = HingeLossMRF()
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    mrf.add_potential({X(0): -1.0}, 1.0, weight=3.0)
    assert mrf.energy([0.25]) == pytest.approx(0.25 + 3 * 0.75)


def test_constant_potentials_tracked_not_dropped():
    """Regression: constant potentials must contribute to the energy.

    Empty (or all-zero) coefficients with a positive offset used to be
    silently discarded, making reported energies smaller than the true
    objective."""
    mrf = HingeLossMRF()
    mrf.add_potential({}, 0.7, weight=2.0)  # 2 * max(0, 0.7)
    mrf.add_potential({X(0): 0.0}, 0.5, weight=4.0, squared=True)  # 4 * 0.5^2
    mrf.add_potential({}, -1.0, weight=5.0)  # hinge is 0: no energy
    assert mrf.potentials == []
    assert mrf.constant_energy == pytest.approx(2 * 0.7 + 4 * 0.25)
    assert mrf.energy([0.0]) == pytest.approx(2.4)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    assert mrf.energy([0.25]) == pytest.approx(2.4 + 0.25)


def test_admm_reported_energy_includes_constant_term():
    from repro.psl.admm import AdmmSolver

    mrf = HingeLossMRF()
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    mrf.add_potential({}, 1.5, weight=2.0)
    result = AdmmSolver(mrf).solve()
    assert result.x[0] == pytest.approx(0.0, abs=1e-4)
    assert result.energy == pytest.approx(mrf.energy(result.x))
    assert result.energy >= 3.0  # the constant floor


def test_program_grounding_keeps_fully_observed_constant_energy():
    """A grounding whose atoms are all observed still costs real energy."""
    from repro.psl.program import PslProgram
    from repro.psl.rule import lit

    program = PslProgram()
    p = program.predicate("p", 1)
    q = program.predicate("q", 1, closed=False)
    program.observe(p("a"))
    program.observe(q("a"), 0.25)  # observed open atom: fully observed grounding
    program.rule([lit(p, "X")], [lit(q, "X")], weight=2.0)
    mrf = program.ground()
    assert mrf.potentials == []
    # distance to satisfaction = max(0, 1 - 0.25) weighted by 2.
    assert mrf.constant_energy == pytest.approx(1.5)
    assert mrf.energy([]) == pytest.approx(1.5)


def test_max_violation():
    mrf = HingeLossMRF()
    mrf.add_constraint({X(0): 1.0}, -0.5)  # x <= 0.5
    mrf.add_constraint({X(0): 1.0}, -1.0, equality=True)  # x == 1
    assert mrf.max_violation([1.0]) == pytest.approx(0.5)
    assert mrf.max_violation([0.5]) == pytest.approx(0.5)  # equality violated


def test_constraint_violation_forms():
    leq = HardConstraint(((0, 1.0),), -0.5)
    assert leq.violation([0.4]) == 0.0
    assert leq.violation([0.9]) == pytest.approx(0.4)
    eq = HardConstraint(((0, 1.0),), -0.5, equality=True)
    assert eq.violation([0.4]) == pytest.approx(0.1)
