"""End-to-end tests of PslProgram: the classic collective-voting model."""

import pytest

from repro.errors import GroundingError, InferenceError
from repro.psl.program import PslProgram
from repro.psl.rule import lit, neg


def _voting_program():
    """Friends vote alike; one person's vote is observed via a strong prior."""
    program = PslProgram()
    friend = program.predicate("friend", 2)
    leans = program.predicate("leans", 2)  # observed side information
    votes = program.predicate("votes", 2, closed=False)

    program.rule(
        [lit(friend, "A", "B"), lit(votes, "A", "P")],
        [lit(votes, "B", "P")],
        weight=1.0,
        name="peer-influence",
    )
    program.rule(
        [lit(leans, "A", "P")],
        [lit(votes, "A", "P")],
        weight=2.0,
        name="own-leaning",
    )
    program.rule([lit(votes, "A", "P")], [], weight=0.1, name="abstain-prior")
    return program, friend, leans, votes


def test_influence_propagates_through_friendship():
    program, friend, leans, votes = _voting_program()
    program.observe(friend("alice", "bob"))
    program.observe(leans("alice", "left"))
    for person in ("alice", "bob"):
        program.target(votes(person, "left"))
    result = program.infer()
    assert result.converged
    assert result.truth(votes("alice", "left")) > 0.8
    assert result.truth(votes("bob", "left")) > 0.5


def test_no_evidence_means_low_truth():
    program, friend, leans, votes = _voting_program()
    program.target(votes("carol", "left"))
    result = program.infer()
    assert result.truth(votes("carol", "left")) < 0.1


def test_soft_evidence_gives_intermediate_truth():
    program, friend, leans, votes = _voting_program()
    program.observe(leans("dave", "left"), 0.5)
    program.target(votes("dave", "left"))
    result = program.infer()
    assert 0.2 < result.truth(votes("dave", "left")) < 0.9


def test_hard_rule_becomes_constraint():
    program = PslProgram()
    person = program.predicate("person", 1)
    a_pred = program.predicate("a", 1, closed=False)
    b_pred = program.predicate("b", 1, closed=False)
    # hard: a(X) -> b(X); weighted: pull a up, b down a bit
    program.rule([lit(person, "X"), lit(a_pred, "X")], [lit(b_pred, "X")], weight=None)
    program.rule([lit(person, "X")], [lit(a_pred, "X")], weight=5.0)
    program.rule([lit(person, "X"), lit(b_pred, "X")], [], weight=1.0)
    program.observe(person("p"))
    program.target(a_pred("p"))
    program.target(b_pred("p"))
    result = program.infer()
    assert result.truth(b_pred("p")) >= result.truth(a_pred("p")) - 1e-3


def test_raw_potential_and_constraint():
    program = PslProgram()
    x = program.predicate("x", 1, closed=False)
    program.target(x(0))
    program.add_raw_potential({x(0): -1.0}, 1.0, weight=1.0)  # pull up
    program.add_linear_constraint({x(0): 1.0}, -0.5)  # x <= 0.5
    result = program.infer()
    assert result.truth(x(0)) == pytest.approx(0.5, abs=1e-3)


def test_inconsistent_predicate_redeclaration_rejected():
    program = PslProgram()
    program.predicate("p", 1)
    with pytest.raises(GroundingError):
        program.predicate("p", 2)


def test_redeclaration_with_same_signature_is_idempotent():
    program = PslProgram()
    p1 = program.predicate("p", 1)
    p2 = program.predicate("p", 1)
    assert p1 is p2


def test_truth_of_non_target_raises():
    program, friend, leans, votes = _voting_program()
    program.target(votes("x", "left"))
    result = program.infer()
    with pytest.raises(InferenceError):
        result.truth(votes("y", "left"))


def test_negated_head_pushes_down():
    program = PslProgram()
    person = program.predicate("person", 1)
    bad = program.predicate("bad", 1, closed=False)
    program.rule([lit(person, "X")], [neg(lit(bad, "X"))], weight=3.0)
    program.rule([lit(person, "X")], [lit(bad, "X")], weight=1.0)
    program.observe(person("p"))
    program.target(bad("p"))
    result = program.infer()
    assert result.truth(bad("p")) < 0.2


def test_warm_start_accepts_partial_assignment():
    program, friend, leans, votes = _voting_program()
    program.observe(leans("alice", "left"))
    program.target(votes("alice", "left"))
    result = program.infer(warm_start={votes("alice", "left"): 1.0})
    assert result.truth(votes("alice", "left")) > 0.8


def test_grounding_counts_reported():
    program, friend, leans, votes = _voting_program()
    program.observe(friend("a", "b"))
    program.observe(leans("a", "left"))
    program.target(votes("a", "left"))
    program.target(votes("b", "left"))
    result = program.infer()
    assert result.num_potentials >= 3


def _shared_database_installed(_):
    from repro.psl.program import _shared_database

    return _shared_database() is not None


def test_process_serial_fallback_scopes_shared_database():
    # A 1-worker ProcessExecutor runs stripped rule shards (and their
    # install_shared_database initializer) in the driver; the handle
    # must be visible during the map and restored — not permanently
    # installed — afterwards.
    from repro.executors import ProcessExecutor
    from repro.psl.database import Database
    from repro.psl.program import _shared_database, install_shared_database

    assert install_shared_database.scope is not None
    database = Database()
    results = list(
        ProcessExecutor(1).map(
            _shared_database_installed,
            [0, 1],
            initializer=install_shared_database,
            initargs=(database,),
        )
    )
    assert results == [True, True]
    assert _shared_database() is None


def test_reground_after_mutation_matches_serial_on_shared_process_executor():
    # Regression: the shared persistent "process:2" executor ships the
    # database once per worker; after observe()/add_target() mutate it
    # in place, a re-ground must NOT reuse workers holding the stale
    # snapshot (Database.state_token feeds the executor's reuse check).
    from repro.psl.sharding import mrf_fingerprint

    program, friend, leans, votes = _voting_program()
    program.observe(friend("a", "b"))
    program.observe(leans("a", "left"))
    program.target(votes("a", "left"))
    program.target(votes("b", "left"))
    first = program.ground(executor="process:2")
    assert mrf_fingerprint(first) == mrf_fingerprint(program.ground())

    program.observe(friend("b", "c"))
    program.target(votes("c", "left"))
    second = program.ground(executor="process:2")
    assert mrf_fingerprint(second) == mrf_fingerprint(program.ground())
    assert mrf_fingerprint(second) != mrf_fingerprint(first)


def test_ground_sharded_single_worker_process_matches_serial():
    from repro.executors import ProcessExecutor
    from repro.psl.program import _shared_database
    from repro.psl.sharding import mrf_fingerprint

    program, friend, leans, votes = _voting_program()
    program.observe(friend("a", "b"))
    program.observe(leans("a", "left"))
    program.target(votes("a", "left"))
    program.target(votes("b", "left"))
    serial = program.ground()
    sharded = program.ground(executor=ProcessExecutor(1))
    assert mrf_fingerprint(sharded) == mrf_fingerprint(serial)
    assert _shared_database() is None  # nothing leaked into the driver
