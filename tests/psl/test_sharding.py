"""Shard/serial equivalence properties of the sharded grounding path.

The contract under test: for ANY executor and ANY shard size — including
degenerate single-entry and empty shards — the sharded merge produces an
MRF that is byte-identical (variables, potentials, constraints, constant
energy, energies at random points) to the serial dict-based compilation.
"""

import numpy as np
import pytest

from repro.errors import InferenceError
from repro.examples_data import paper_example
from repro.ibench.config import ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.psl.hlmrf import HingeLossMRF
from repro.psl.predicate import Predicate
from repro.psl.program import PslProgram
from repro.psl.rule import lit
from repro.psl.sharding import (
    TermBlockBuilder,
    ground_shards,
    iter_slices,
    mrf_fingerprint,
    structure_fingerprint,
)
from repro.selection.collective import (
    CollectiveSettings,
    CoverageShard,
    build_program,
    ground_collective,
)
from repro.selection.metrics import build_selection_problem

SHARD_SIZES = (1, 2, 7, None)
EXECUTORS = ("serial", "process:2")

X = Predicate("x", 1, closed=False)


def _assert_identical(serial: HingeLossMRF, sharded: HingeLossMRF) -> None:
    assert mrf_fingerprint(serial) == mrf_fingerprint(sharded)
    # Belt and braces: same energies/violations at random points too.
    rng = np.random.default_rng(7)
    for _ in range(3):
        x = rng.random(serial.num_variables)
        assert serial.energy(x) == sharded.energy(x)
        assert serial.max_violation(x) == sharded.max_violation(x)


def _sample_program() -> PslProgram:
    program = PslProgram()
    friend = program.predicate("friend", 2)
    votes = program.predicate("votes", 2, closed=False)
    program.rule(
        [lit(friend, "A", "B"), lit(votes, "A", "P")], [lit(votes, "B", "P")], weight=0.5
    )
    program.rule([lit(votes, "A", "l")], [lit(votes, "A", "r")], weight=None)
    for pair in (("a", "b"), ("b", "c"), ("a", "c")):
        program.observe(friend(*pair))
    program.observe(friend("c", "a"), 0.6)
    for who in "abc":
        for party in ("l", "r"):
            program.target(votes(who, party))
    program.add_raw_potential({votes("a", "l"): 1.0}, -0.5, 2.0)
    program.add_raw_potential({votes("b", "l"): 1.0, votes("b", "r"): 0.5}, -0.25, 1.0, True)
    program.add_raw_potential({}, 0.25, 2.0)  # constant: folds into constant_energy
    program.add_linear_constraint({votes("a", "l"): 1.0, votes("a", "r"): 1.0}, -1.0)
    program.add_linear_constraint({votes("c", "l"): 1.0}, -0.5, equality=True)
    return program


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_program_sharded_ground_matches_serial(executor, shard_size):
    program = _sample_program()
    serial = program.ground()
    sharded, stats = program.ground_sharded(executor=executor, shard_size=shard_size)
    _assert_identical(serial, sharded)
    assert stats.num_shards == len(program.grounding_shards(shard_size=shard_size))
    assert stats.num_potentials == len(serial.potentials)
    assert stats.num_constraints == len(serial.constraints)
    assert stats.peak_shard_terms <= stats.total_terms


def test_program_ground_dispatches_to_sharded_path():
    program = _sample_program()
    _assert_identical(program.ground(), program.ground(shard_size=2))
    _assert_identical(program.ground(), program.ground(executor="serial"))


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_collective_sharded_ground_matches_serial(executor, shard_size):
    ex = paper_example(extra_projects=3)
    problem = build_selection_problem(ex.source, ex.target, ex.candidates)
    settings = CollectiveSettings()
    program, _ = build_program(problem, settings)
    serial = program.ground()
    sharded, plan, stats = ground_collective(
        problem, settings, executor=executor, shard_size=shard_size
    )
    _assert_identical(serial, sharded)
    assert len(plan.in_atoms) == problem.num_candidates
    assert stats.num_potentials == len(serial.potentials)


def test_collective_sharded_ground_matches_serial_on_noisy_scenario():
    scenario = generate_scenario(
        ScenarioConfig(
            num_primitives=5, rows_per_relation=10, pi_errors=50, pi_corresp=50, seed=13
        )
    )
    problem = build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )
    settings = CollectiveSettings(squared_hinges=True)
    serial = build_program(problem, settings)[0].ground()
    for shard_size in (1, 5, 64):
        sharded, _, _ = ground_collective(problem, settings, shard_size=shard_size)
        _assert_identical(serial, sharded)


def test_collective_degenerate_problems():
    """No candidates / no coverage / shared errors all shard correctly."""
    from repro.datamodel.instance import Instance, fact
    from repro.mappings.parser import parse_tgds

    source = Instance([fact("r", 1), fact("s", 1)])
    target = Instance([fact("u", 2)])  # u(1) is an error for both candidates
    tgds = parse_tgds("r(X) -> u(X)\ns(X) -> u(X)")
    shared_errors = build_selection_problem(source, target, tgds)
    empty = build_selection_problem(source, target, [])
    for problem in (shared_errors, empty):
        serial = build_program(problem, CollectiveSettings())[0].ground()
        for shard_size in (1, None):
            sharded, _, _ = ground_collective(problem, shard_size=shard_size)
            _assert_identical(serial, sharded)


def test_empty_shard_merges_as_noop():
    shard = CoverageShard(order=0, entries=(), weight=1.0, squared=False)
    mrf, stats = ground_shards([shard])
    assert mrf.num_variables == 0
    assert mrf.potentials == [] and mrf.constraints == []
    assert stats.num_shards == 1 and stats.total_terms == 0


def test_out_of_order_shard_results_rejected():
    shards = [
        CoverageShard(order=1, entries=(), weight=1.0, squared=False),
        CoverageShard(order=0, entries=(), weight=1.0, squared=False),
    ]
    with pytest.raises(InferenceError):
        ground_shards(shards)


def test_term_block_builder_mirrors_mrf_semantics():
    builder = TermBlockBuilder()
    builder.add_potential([(X(0), 1.0)], 0.0, 0.0)  # zero weight: dropped
    builder.add_potential([(X(0), 0.0)], 0.5, 2.0)  # all-zero coeffs: constant
    builder.add_potential([], -1.0, 3.0)  # negative offset constant: no energy
    builder.add_constraint([(X(1), 0.0)], -1.0)  # satisfied constant: dropped
    atoms, block = builder.finish()
    assert atoms == ()
    assert block.num_terms == 0
    assert block.constant_energy == pytest.approx(1.0)
    with pytest.raises(InferenceError):
        builder.add_potential([(X(0), 1.0)], 0.0, -1.0)
    with pytest.raises(InferenceError):
        builder.add_constraint([], 1.0)


def test_structure_fingerprint_weight_independent_across_sweep():
    # The scenario-cache contract: a weight-only change leaves the
    # structure fingerprint untouched (the full fingerprint must move).
    from fractions import Fraction

    from repro.selection.objective import ObjectiveWeights

    ex = paper_example(extra_projects=3)
    problem = build_selection_problem(ex.source, ex.target, ex.candidates)
    base, _, _ = ground_collective(problem, CollectiveSettings())
    reference_structure = structure_fingerprint(base)
    for triple in (("2", "1", "1"), ("1/2", "3", "1"), ("1", "1", "1/4")):
        weights = ObjectiveWeights(*(Fraction(w) for w in triple))
        mrf, _, _ = ground_collective(
            problem, CollectiveSettings(weights=weights)
        )
        assert structure_fingerprint(mrf) == reference_structure
        assert mrf_fingerprint(mrf) != mrf_fingerprint(base)


@pytest.mark.parametrize("executor", ("serial", "thread:2", "process:2"))
@pytest.mark.parametrize("shard_size", (1, 7, None))
def test_structure_fingerprint_identical_across_executors_and_shards(
    executor, shard_size
):
    ex = paper_example(extra_projects=3)
    problem = build_selection_problem(ex.source, ex.target, ex.candidates)
    reference, _, _ = ground_collective(problem, CollectiveSettings())
    mrf, _, _ = ground_collective(
        problem, CollectiveSettings(), executor=executor, shard_size=shard_size
    )
    assert structure_fingerprint(mrf) == structure_fingerprint(reference)


def test_structure_fingerprint_weight_independent_for_rule_overrides():
    program = _sample_program()
    rules = [r for r in program.rules if not r.is_hard]
    base = program.ground()
    overridden = program.ground({rules[0]: 4.25})
    assert structure_fingerprint(base) == structure_fingerprint(overridden)
    assert mrf_fingerprint(base) != mrf_fingerprint(overridden)


def test_structure_fingerprint_agrees_on_zero_weight_rules():
    # A zero-weight rule contributes no potentials, but both paths must
    # still agree on the group registry (intern order and the
    # zero-dropped marker), or equal programs would miss the structure
    # cache — and a later reweight of the dropped group must raise on
    # either path instead of silently diverging from a fresh ground.
    from repro.errors import InferenceError as IE

    def build():
        program = PslProgram()
        friend = program.predicate("friend", 2)
        votes = program.predicate("votes", 2, closed=False)
        program.rule(
            [lit(friend, "A", "B")], [lit(votes, "A", "B")], weight=0.0, name="off"
        )
        program.rule([lit(votes, "A", "B")], [], weight=1.0, name="prior")
        program.observe(friend("a", "b"))
        program.target(votes("a", "b"))
        return program

    serial = build().ground()
    sharded = build().ground(shard_size=4)
    assert structure_fingerprint(serial) == structure_fingerprint(sharded)
    assert [repr(k) for k in serial.group_keys] == [
        repr(k) for k in sharded.group_keys
    ]
    for mrf in (serial, sharded):
        off = next(k for k in mrf.group_keys if getattr(k, "name", "") == "off")
        with pytest.raises(IE):
            mrf.set_group_weights({off: 1.0})


def test_structure_fingerprint_sees_structural_changes():
    a = HingeLossMRF()
    a.variable_index(X(0))
    a.add_potential({X(0): 1.0}, 0.0, weight=1.0, group="g")
    b = HingeLossMRF()
    b.variable_index(X(0))
    b.add_potential({X(0): 1.0}, 0.5, weight=1.0, group="g")  # offset differs
    c = HingeLossMRF()
    c.variable_index(X(0))
    c.add_potential({X(0): 1.0}, 0.0, weight=1.0, group="other")  # group differs
    assert structure_fingerprint(a) != structure_fingerprint(b)
    assert structure_fingerprint(a) != structure_fingerprint(c)


def test_fingerprint_distinguishes_repr_colliding_atoms():
    """p(1) and p("1") render identically via str; fingerprints must not."""
    a = HingeLossMRF()
    a.add_potential({X(1): 1.0}, 0.0, weight=1.0)
    b = HingeLossMRF()
    b.add_potential({X("1"): 1.0}, 0.0, weight=1.0)
    assert repr(X(1)) == repr(X("1"))  # the collision the key must survive
    assert mrf_fingerprint(a) != mrf_fingerprint(b)


def test_sharded_ground_deterministic_with_repr_colliding_constants():
    program = PslProgram()
    p = program.predicate("p", 1)
    q = program.predicate("q", 1, closed=False)
    for const in (1, "1", 2, "2"):
        program.observe(p(const))
        program.target(q(const))
    program.rule([lit(p, "X")], [lit(q, "X")], weight=1.0)
    serial = program.ground()
    for executor in EXECUTORS:
        sharded, _ = program.ground_sharded(executor=executor, shard_size=1)
        _assert_identical(serial, sharded)


def test_iter_slices_covers_range_exactly():
    assert list(iter_slices(0, 4)) == []
    assert list(iter_slices(10, 4)) == [(0, 4), (4, 8), (8, 10)]
    assert list(iter_slices(3, None))[0] == (0, 3)


# -- rule-shard payload diet (database shipped once per worker) ---------------


def test_rule_shards_can_travel_without_database():
    from repro.psl.program import RuleGroundingShard, install_shared_database

    program = _sample_program()
    lean = program.grounding_shards(embed_database=False)
    fat = program.grounding_shards()
    rule_shards = [s for s in lean if isinstance(s, RuleGroundingShard)]
    assert rule_shards and all(s.database is None for s in rule_shards)
    assert all(
        s.database is program.database
        for s in fat
        if isinstance(s, RuleGroundingShard)
    )
    # Without a shared handle the stripped shard must fail loudly...
    from repro.errors import GroundingError

    install_shared_database(None)
    with pytest.raises(GroundingError):
        rule_shards[0].build()
    # ...and with one installed it emits exactly the embedded shard's block.
    install_shared_database(program.database)
    try:
        lean_result = rule_shards[0].build()
        fat_result = fat[0].build()
        assert lean_result.atoms == fat_result.atoms
        assert lean_result.block.num_terms == fat_result.block.num_terms
        assert np.array_equal(lean_result.block.coefficient, fat_result.block.coefficient)
    finally:
        install_shared_database(None)


@pytest.mark.parametrize("executor", ["process:2", "process:1"])
def test_process_grounding_with_shared_database_matches_serial(executor):
    # ground_sharded strips the database from rule shards on process
    # executors and ships it through the pool initializer (including the
    # one-worker serial fallback, where the initializer runs in-process).
    program = _sample_program()
    serial = program.ground()
    sharded, _ = program.ground_sharded(executor=executor, shard_size=2)
    _assert_identical(serial, sharded)


def test_shared_database_handle_is_scoped_to_the_grounding_run():
    # The one-worker fallback runs the initializer in this process; the
    # handle must not outlive the run, or a later stripped shard of a
    # *different* program would silently ground against a stale database.
    import repro.psl.program as program_module

    program = _sample_program()
    assert program_module._shared_database() is None
    program.ground_sharded(executor="process:1", shard_size=2)
    assert program_module._shared_database() is None
    stray = program.grounding_shards(embed_database=False)[0]
    with pytest.raises(Exception):
        stray.build()  # fails loudly instead of using a leaked handle


def test_initializer_rejected_on_thread_executor():
    # The shared-payload hook is thread-scoped; a thread pool's workers
    # would never see it, so the combination must fail loudly up front.
    from repro.psl.program import install_shared_database

    program = _sample_program()
    shards = program.grounding_shards(embed_database=False, shard_size=2)
    with pytest.raises(InferenceError):
        ground_shards(
            shards,
            executor="thread:2",
            initializer=(install_shared_database, (program.database,)),
        )


def test_concurrent_grounds_do_not_cross_shared_databases():
    # The shared handle is thread-local: two threads grounding different
    # programs through the stripped-payload path (process:1 falls back
    # in-process) must each see their own database.
    from concurrent.futures import ThreadPoolExecutor

    programs = [_sample_program() for _ in range(2)]
    programs[1].observe(programs[1].predicate("friend", 2)("c", "b"), 0.4)
    references = [mrf_fingerprint(p.ground()) for p in programs]
    assert references[0] != references[1]

    def ground(i: int) -> bytes:
        mrf, _ = programs[i].ground_sharded(executor="process:1", shard_size=2)
        return mrf_fingerprint(mrf)

    with ThreadPoolExecutor(max_workers=2) as pool:
        for _ in range(3):
            results = list(pool.map(ground, [0, 1]))
            assert results == references
