"""Partitioned-vs-flat ADMM equivalence, verified against the old solver.

``_ReferenceFlatSolver`` is a frozen copy of the pre-partitioning
``AdmmSolver`` (one monolithic term array).  The contract under test:
for ANY block size and ANY executor, the partitioned solver produces the
*identical* run — same iterates, same iteration count, same residuals,
same energy, same dual state — on fingerprint-verified collective
problems and on random MRFs alike.  Not approximately: bit for bit.
"""

import functools
import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.executors import ProcessExecutor
from repro.ibench.config import ScenarioConfig
from repro.ibench.generator import generate_scenario
from repro.psl.admm import AdmmResult, AdmmSettings, AdmmSolver, AdmmWarmState
from repro.psl.hlmrf import HingeLossMRF
from repro.psl.predicate import Predicate
from repro.psl.sharding import mrf_fingerprint
from repro.selection.collective import (
    CollectiveSettings,
    build_program,
    ground_collective,
    solve_collective,
)
from repro.selection.metrics import build_selection_problem

X = Predicate("x", 1, closed=False)

_KIND_HINGE = 0
_KIND_SQUARED = 1
_KIND_LEQ = 2
_KIND_EQ = 3


class _ReferenceFlatSolver:
    """The pre-refactor AdmmSolver, kept verbatim as the ground truth."""

    def __init__(self, mrf, settings=None):
        self._mrf = mrf
        self._settings = settings or AdmmSettings()
        self._build_arrays()

    def _build_arrays(self):
        mrf = self._mrf
        terms = [
            (_KIND_SQUARED if p.squared else _KIND_HINGE, p.coefficients, p.offset, p.weight)
            for p in mrf.potentials
        ] + [
            (_KIND_EQ if c.equality else _KIND_LEQ, c.coefficients, c.offset, 0.0)
            for c in mrf.constraints
        ]
        var_index, term_index, coeff = [], [], []
        kinds, offsets, weights = [], [], []
        for t, (kind, coefficients, offset, weight) in enumerate(terms):
            kinds.append(kind)
            offsets.append(offset)
            weights.append(weight)
            for i, c in coefficients:
                var_index.append(i)
                term_index.append(t)
                coeff.append(c)
        self._n = mrf.num_variables
        self._num_terms = len(terms)
        self._var = np.asarray(var_index, dtype=np.int64)
        self._term = np.asarray(term_index, dtype=np.int64)
        self._a = np.asarray(coeff, dtype=np.float64)
        self._kind = np.asarray(kinds, dtype=np.int64)
        self._b = np.asarray(offsets, dtype=np.float64)
        self._w = np.asarray(weights, dtype=np.float64)
        self._normsq = np.maximum(
            np.bincount(self._term, weights=self._a**2, minlength=self._num_terms),
            1e-12,
        )
        degree = np.bincount(self._var, minlength=self._n).astype(np.float64)
        self._degree = np.maximum(degree, 1.0)

    def solve(self, warm_start=None, warm_state=None):
        settings = self._settings
        n, copies = self._n, len(self._var)
        use_state = (
            warm_state is not None
            and warm_state.z.shape == (n,)
            and warm_state.u.shape == (copies,)
        )
        if use_state:
            z = np.clip(warm_state.z.astype(np.float64), 0.0, 1.0)
        elif warm_start is not None:
            z = np.clip(warm_start.astype(np.float64), 0.0, 1.0)
        else:
            z = np.full(n, 0.5)
        if copies == 0:
            return AdmmResult(
                z, 0, True, 0.0, 0.0, self._mrf.energy(z),
                state=AdmmWarmState(z.copy(), np.zeros(0)),
            )
        u = warm_state.u.astype(np.float64).copy() if use_state else np.zeros(copies)
        x_local = z[self._var].copy()
        rho = settings.rho
        primal = dual = float("inf")
        iteration = 0
        converged = False
        z_old = z
        checked_at = -1
        for iteration in range(1, settings.max_iterations + 1):
            v = z[self._var] - u
            dot = np.bincount(self._term, weights=self._a * v, minlength=self._num_terms)
            d0 = dot + self._b
            lam = np.zeros(self._num_terms)
            hinge = self._kind == _KIND_HINGE
            if hinge.any():
                w_over_rho = self._w[hinge] / rho
                d0_h = d0[hinge]
                full_step_ok = d0_h - w_over_rho * self._normsq[hinge] >= 0.0
                lam[hinge] = np.where(
                    d0_h <= 0.0,
                    0.0,
                    np.where(full_step_ok, w_over_rho, d0_h / self._normsq[hinge]),
                )
            squared = self._kind == _KIND_SQUARED
            if squared.any():
                d0_s = d0[squared]
                s = d0_s / (1.0 + 2.0 * self._w[squared] * self._normsq[squared] / rho)
                lam[squared] = np.where(d0_s <= 0.0, 0.0, 2.0 * self._w[squared] * s / rho)
            leq = self._kind == _KIND_LEQ
            if leq.any():
                lam[leq] = np.maximum(0.0, d0[leq]) / self._normsq[leq]
            eq = self._kind == _KIND_EQ
            if eq.any():
                lam[eq] = d0[eq] / self._normsq[eq]
            x_local = v - lam[self._term] * self._a
            z_old = z
            z = np.clip(
                np.bincount(self._var, weights=x_local + u, minlength=n) / self._degree,
                0.0,
                1.0,
            )
            u = u + x_local - z[self._var]
            if iteration % settings.check_every == 0:
                checked_at = iteration
                primal = float(np.linalg.norm(x_local - z[self._var]))
                dual = float(rho * np.linalg.norm((z - z_old)[self._var]))
                eps = settings.epsilon_abs * np.sqrt(copies) + settings.epsilon_rel * max(
                    float(np.linalg.norm(x_local)), float(np.linalg.norm(z[self._var]))
                )
                if primal < eps and dual < eps:
                    converged = True
                    break
        if iteration > 0 and checked_at != iteration:
            primal = float(np.linalg.norm(x_local - z[self._var]))
            dual = float(rho * np.linalg.norm((z - z_old)[self._var]))
            eps = settings.epsilon_abs * np.sqrt(copies) + settings.epsilon_rel * max(
                float(np.linalg.norm(x_local)), float(np.linalg.norm(z[self._var]))
            )
            converged = primal < eps and dual < eps
        return AdmmResult(
            x=z,
            iterations=iteration,
            converged=converged,
            primal_residual=primal,
            dual_residual=dual,
            energy=self._mrf.energy(z),
            state=AdmmWarmState(z.copy(), u.copy()),
        )


def _assert_identical_run(result: AdmmResult, reference: AdmmResult) -> None:
    assert result.iterations == reference.iterations
    assert result.converged == reference.converged
    assert np.array_equal(result.x, reference.x)
    assert result.primal_residual == reference.primal_residual
    assert result.dual_residual == reference.dual_residual
    assert result.energy == reference.energy
    assert np.array_equal(result.state.z, reference.state.z)
    assert np.array_equal(result.state.u, reference.state.u)


def _random_mrf(seed: int, n: int = 8, m: int = 20) -> HingeLossMRF:
    rng = np.random.default_rng(seed)
    mrf = HingeLossMRF()
    for i in range(n):
        mrf.variable_index(X(i))
    for k in range(m):
        size = int(rng.integers(1, 4))
        idx = rng.choice(n, size=size, replace=False)
        coeffs = {X(int(i)): float(rng.normal()) for i in idx}
        if k % 5 == 4:
            mrf.add_constraint(coeffs, float(rng.normal()), equality=k % 10 == 9)
        else:
            mrf.add_potential(
                coeffs,
                float(rng.normal()),
                weight=float(rng.uniform(0.1, 3)),
                squared=k % 3 == 0,
            )
    return mrf


@functools.cache
def _collective_mrf() -> HingeLossMRF:
    scenario = generate_scenario(
        ScenarioConfig(
            num_primitives=4, rows_per_relation=8, pi_errors=50, pi_corresp=50, seed=13
        )
    )
    problem = build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )
    settings = CollectiveSettings()
    mrf, _, _ = ground_collective(problem, settings, shard_size=8)
    # Fingerprint-verified: the sharded grounding reproduced the serial
    # reference compilation, so the solve equivalence below is measured
    # on the exact model of the paper pipeline.
    assert mrf_fingerprint(mrf) == mrf_fingerprint(
        build_program(problem, settings)[0].ground()
    )
    return mrf


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("block_size", [1, 3, 17, None])
def test_partitioned_matches_flat_reference_on_random_mrfs(seed, block_size):
    mrf = _random_mrf(seed)
    reference = _ReferenceFlatSolver(mrf).solve()
    result = AdmmSolver(mrf, AdmmSettings(block_size=block_size)).solve()
    _assert_identical_run(result, reference)


@pytest.mark.parametrize("block_size", [1, 7, 64, None])
@pytest.mark.parametrize("executor", [None, "thread:2"])
def test_partitioned_matches_flat_reference_on_collective_problem(
    block_size, executor
):
    mrf = _collective_mrf()
    reference = _ReferenceFlatSolver(mrf).solve()
    settings = AdmmSettings(block_size=block_size, executor=executor)
    result = AdmmSolver(mrf, settings).solve()
    _assert_identical_run(result, reference)
    # The grounding-shard partition really is non-trivial here.
    if block_size is None:
        assert AdmmSolver(mrf, settings).partition.num_blocks > 1


@pytest.mark.parametrize("block_size", [32, None])
def test_process_executor_blocks_match_reference(block_size):
    # The process path now rides the shared persistent pool plus
    # shared-memory block arrays; a truncated run must still be
    # bit-identical, for the grounding partition and a re-chunking alike.
    mrf = _collective_mrf()
    settings = AdmmSettings(max_iterations=4, check_every=2)
    reference = _ReferenceFlatSolver(mrf, settings).solve()
    result = AdmmSolver(
        mrf,
        AdmmSettings(
            max_iterations=4,
            check_every=2,
            block_size=block_size,
            executor="process:2",
        ),
    ).solve()
    _assert_identical_run(result, reference)


class _RecordingProcessExecutor(ProcessExecutor):
    """Persistent process executor that records the mapped payloads."""

    def __init__(self, explode: bool = False):
        super().__init__(2, persistent=True)
        self.explode = explode
        self.payloads: list = []

    def map(self, fn, items, **kwargs):
        items = list(items)
        self.payloads.extend(items)
        if self.explode:
            raise RuntimeError("boom")
        return super().map(fn, items, **kwargs)


def _assert_unlinked(names):
    assert names
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def _segment_names(solver: AdmmSolver) -> set[str]:
    """Both solver-owned segments: block staging + shared solve state."""
    names = {solver._shared.name, solver._solve_state.name}
    assert None not in names
    return names


def test_process_solve_ships_tiny_acks_and_unlinks_after():
    mrf = _collective_mrf()
    executor = _RecordingProcessExecutor()
    try:
        settings = AdmmSettings(
            max_iterations=3, check_every=3, block_size=64, executor=executor
        )
        reference = _ReferenceFlatSolver(
            mrf, AdmmSettings(max_iterations=3, check_every=3)
        ).solve()
        solver = AdmmSolver(mrf, settings)
        _assert_identical_run(solver.solve(), reference)
        # Every per-iteration payload is (segment name, block index,
        # rho, generation) — O(1) bytes, independent of problem size...
        assert executor.payloads
        state_name = solver._solve_state.name
        for payload in executor.payloads:
            name, index, rho, generation = payload
            assert name == state_name
            assert isinstance(index, int) and isinstance(generation, int)
            assert len(pickle.dumps(payload)) < 128
        names = _segment_names(solver)
        del solver
        # ...and both driver-owned segments unlink with the solver.
        _assert_unlinked(names)
    finally:
        executor.close()


def test_shared_segments_released_when_solver_closes_after_raise():
    # The staging + solve-state segments are solver-owned and survive a
    # raising solve (the solver stays usable for a retry / reweighted
    # re-solve); close() — also run on context exit and garbage
    # collection — is the leak-free teardown.
    mrf = _collective_mrf()
    executor = _RecordingProcessExecutor(explode=True)
    solver = AdmmSolver(
        mrf, AdmmSettings(max_iterations=3, block_size=64, executor=executor)
    )
    with pytest.raises(RuntimeError):
        solver.solve()
    from repro.psl.partition import _attach_segment

    names = _segment_names(solver)
    for name in names:  # still staged while the solver lives
        assert _attach_segment(name).size >= 8
    solver.close()
    _assert_unlinked(names)  # leak-free teardown on close
    executor.close()


def test_solver_releases_shared_segments_when_garbage_collected():
    mrf = _collective_mrf()
    executor = _RecordingProcessExecutor()
    try:
        settings = AdmmSettings(
            max_iterations=2, check_every=2, block_size=64, executor=executor
        )
        solver = AdmmSolver(mrf, settings)
        solver.solve()
        names = _segment_names(solver)
        del solver  # one-shot: solver dies right away
        _assert_unlinked(names)
    finally:
        executor.close()


def test_concurrent_solvers_do_not_release_each_other():
    # Two live solvers on the same executor own disjoint segments; one
    # closing (or dying) must not tear down the other's state mid-use.
    mrf = _collective_mrf()
    executor = _RecordingProcessExecutor()
    try:
        settings = AdmmSettings(
            max_iterations=2, check_every=2, block_size=64, executor=executor
        )
        first = AdmmSolver(mrf, settings)
        second = AdmmSolver(mrf, settings)
        result_first = first.solve()
        result_second = second.solve()
        names_first = _segment_names(first)
        names_second = _segment_names(second)
        assert not names_first & names_second
        first.close()
        _assert_unlinked(names_first)
        # The survivor still re-solves bit-identically on its own state.
        again = second.solve()
        assert np.array_equal(again.x, result_second.x)
        assert again.iterations == result_second.iterations
        second.close()
        _assert_unlinked(names_second)
        del result_first
    finally:
        executor.close()


@pytest.mark.parametrize("executor", [None, "thread:2", "process:2"])
def test_reweight_resolve_bit_identical_to_fresh_ground_and_solve(executor):
    # The ground-once/reweight-many acceptance contract, measured against
    # the frozen pre-partitioning solver: reweighting a cached grounding
    # in place and re-solving must reproduce — bit for bit — the run of
    # a solver built on a *fresh* grounding at the new weights.
    from fractions import Fraction

    from repro.selection.collective import GroundedCollective
    from repro.selection.objective import ObjectiveWeights

    scenario = generate_scenario(
        ScenarioConfig(
            num_primitives=4, rows_per_relation=8, pi_errors=50, pi_corresp=50, seed=13
        )
    )
    problem = build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )
    grounded = GroundedCollective(
        problem, CollectiveSettings(), shard_size=8
    )
    settings = AdmmSettings(
        max_iterations=40, check_every=5, block_size=32, executor=executor
    )
    solver = AdmmSolver(grounded.mrf, settings)
    solver.solve()  # prime the compiled partition (and any staging)
    for triple in (("2", "1", "1/2"), ("1/3", "5", "1"), ("1", "1", "1")):
        weights = ObjectiveWeights(*(Fraction(w) for w in triple))
        grounded.reweight(weights)
        resolved = solver.solve()
        fresh_mrf, _, _ = ground_collective(
            problem, CollectiveSettings(weights=weights), shard_size=8
        )
        assert mrf_fingerprint(grounded.mrf) == mrf_fingerprint(fresh_mrf)
        reference = _ReferenceFlatSolver(
            fresh_mrf, AdmmSettings(max_iterations=40, check_every=5)
        ).solve()
        _assert_identical_run(resolved, reference)
    solver.close()


@pytest.mark.parametrize("executor", [None, "thread:2", "process:2"])
def test_store_attach_reweight_solve_bit_identical_to_fresh_ground(
    executor, tmp_path
):
    # The disk-store acceptance contract, measured against the frozen
    # pre-partitioning solver: attaching a spilled grounding (mmap) and
    # reweighting it must reproduce — bit for bit — the run of a solver
    # built on a *fresh* grounding at the new weights, under every
    # executor, with no grounding work on the attach path.
    from fractions import Fraction

    from repro.psl.store import GroundingStore
    from repro.selection.collective import (
        GroundedCollective,
        collective_structure_key,
    )
    from repro.selection.objective import ObjectiveWeights

    scenario = generate_scenario(
        ScenarioConfig(
            num_primitives=4, rows_per_relation=8, pi_errors=50, pi_corresp=50, seed=13
        )
    )
    problem = build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )
    base = CollectiveSettings()
    writer = GroundedCollective(problem, base, shard_size=8)
    store = GroundingStore(tmp_path)
    key = collective_structure_key(problem, base)
    assert store.put(key, writer.mrf, extra=writer.store_extra())
    writer.close()

    stored = store.load(key)
    assert stored is not None
    attached = GroundedCollective.from_store(problem, base, stored)
    assert attached.stats is None  # attached, not ground
    settings = AdmmSettings(
        max_iterations=40, check_every=5, block_size=32, executor=executor
    )
    solver = AdmmSolver(attached.mrf, settings)
    for triple in (("1", "1", "1"), ("2", "1", "1/2"), ("1/3", "5", "1")):
        weights = ObjectiveWeights(*(Fraction(w) for w in triple))
        attached.reweight(weights)
        resolved = solver.solve()
        fresh_mrf, _, _ = ground_collective(
            problem, CollectiveSettings(weights=weights), shard_size=8
        )
        assert mrf_fingerprint(attached.mrf) == mrf_fingerprint(fresh_mrf)
        reference = _ReferenceFlatSolver(
            fresh_mrf, AdmmSettings(max_iterations=40, check_every=5)
        ).solve()
        _assert_identical_run(resolved, reference)
    solver.close()


def test_reweight_resolve_with_warm_state_matches_reference_warm_run():
    # Warm-state reuse across reweighted solves: same trajectory as the
    # frozen solver restarted from the same state on a fresh grounding.
    from fractions import Fraction

    from repro.selection.collective import GroundedCollective
    from repro.selection.objective import ObjectiveWeights

    scenario = generate_scenario(
        ScenarioConfig(
            num_primitives=4, rows_per_relation=8, pi_errors=40, pi_corresp=40, seed=5
        )
    )
    problem = build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )
    grounded = GroundedCollective(problem, CollectiveSettings(), shard_size=16)
    settings = AdmmSettings(check_every=1)
    solver = AdmmSolver(grounded.mrf, settings)
    state = solver.solve().state
    weights = ObjectiveWeights(Fraction(3, 2), Fraction(1), Fraction(1, 2))
    grounded.reweight(weights)
    warm = solver.solve(warm_state=state)
    fresh_mrf, _, _ = ground_collective(
        problem, CollectiveSettings(weights=weights), shard_size=16
    )
    reference = _ReferenceFlatSolver(fresh_mrf, settings).solve(warm_state=state)
    _assert_identical_run(warm, reference)


def test_warm_state_with_warm_start_interactions_match_reference():
    mrf = _random_mrf(4)
    flat_cold = _ReferenceFlatSolver(mrf).solve()
    part_cold = AdmmSolver(mrf, AdmmSettings(block_size=5)).solve()
    _assert_identical_run(part_cold, flat_cold)
    flat_warm = _ReferenceFlatSolver(mrf).solve(warm_state=flat_cold.state)
    part_warm = AdmmSolver(mrf, AdmmSettings(block_size=5)).solve(
        warm_state=part_cold.state
    )
    _assert_identical_run(part_warm, flat_warm)
    start = np.linspace(0.0, 1.0, mrf.num_variables)
    _assert_identical_run(
        AdmmSolver(mrf, AdmmSettings(block_size=2)).solve(warm_start=start),
        _ReferenceFlatSolver(mrf).solve(warm_start=start),
    )


def test_warm_state_survives_repartitioning():
    mrf = _collective_mrf()
    settings = AdmmSettings(check_every=1)
    first = AdmmSolver(mrf, settings).solve()
    assert first.converged and first.state is not None
    # Same MRF, different block structure: the state must still be
    # honoured (dual layout is the flat copy order, partition-agnostic).
    resumed = AdmmSolver(
        mrf, AdmmSettings(check_every=1, block_size=11, executor="thread:2")
    ).solve(warm_state=first.state)
    assert resumed.iterations < first.iterations
    assert np.allclose(resumed.x, first.x, atol=1e-3)


def test_warm_state_rejected_on_structurally_different_mrf():
    # Same variable count AND same copy count, but a different number of
    # terms: raw shape checks alone would wrongly accept this state.
    two_terms = HingeLossMRF()
    for i in range(2):
        two_terms.variable_index(X(i))
    two_terms.add_potential({X(0): 1.0}, 0.0, weight=1.0)
    two_terms.add_potential({X(1): -1.0}, 0.5, weight=2.0)

    one_term = HingeLossMRF()
    for i in range(2):
        one_term.variable_index(X(i))
    one_term.add_potential({X(0): 1.0, X(1): -1.0}, 0.25, weight=1.5)

    foreign = AdmmSolver(two_terms).solve().state
    assert foreign.num_terms == 2
    solver = AdmmSolver(one_term)
    assert not foreign.matches(solver.partition)
    result = solver.solve(warm_state=foreign)
    cold = AdmmSolver(one_term).solve()
    _assert_identical_run(result, cold)  # the stale state was ignored


def test_legacy_warm_state_without_signature_still_accepted():
    mrf = _random_mrf(6)
    state = AdmmSolver(mrf).solve().state
    legacy = AdmmWarmState(state.z, state.u)  # num_terms defaults to None
    resumed = AdmmSolver(mrf).solve(warm_state=legacy)
    reference = AdmmSolver(mrf).solve(warm_state=state)
    _assert_identical_run(resumed, reference)


def test_solve_collective_threads_solver_knobs():
    scenario = generate_scenario(
        ScenarioConfig(num_primitives=2, rows_per_relation=6, seed=3)
    )
    problem = build_selection_problem(
        scenario.source, scenario.target, scenario.candidates
    )
    plain = solve_collective(problem)
    tuned = solve_collective(
        problem,
        CollectiveSettings(
            admm=AdmmSettings(executor="thread:2", block_size=16)
        ),
    )
    assert tuned.selected == plain.selected
    assert tuned.objective == plain.objective
    assert tuned.fractional == plain.fractional
    assert tuned.iterations == plain.iterations
