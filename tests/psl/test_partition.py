"""Unit tests for the term-partition layer under the ADMM solver.

The contract: block boundaries recorded at grounding time (or a uniform
``block_size`` re-chunking) tile the flat potentials-then-constraints
term order without ever splitting a term, and the per-block arrays
concatenate back to exactly the flat solver arrays.
"""

import os
import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.psl.hlmrf import HingeLossMRF
from repro.psl.partition import (
    _KINDS,
    SharedBlockArrays,
    SharedPartitionBuffers,
    SharedSolveState,
    _attach_segment,
    apply_shared_solve_update,
    block_x_update,
    build_partition,
)
from repro.psl.predicate import Predicate
from repro.psl.sharding import TermBlockBuilder
from repro.selection.collective import CollectiveSettings, ground_collective
from repro.selection.metrics import build_selection_problem
from repro.examples_data import paper_example

X = Predicate("x", 1, closed=False)


def _legacy_mrf() -> HingeLossMRF:
    mrf = HingeLossMRF()
    mrf.add_potential({X(0): 1.0, X(1): -0.5}, 0.25, weight=2.0)
    mrf.add_potential({X(1): 1.0}, 0.0, weight=1.0, squared=True)
    mrf.add_constraint({X(0): 1.0, X(2): 1.0}, -1.0)
    mrf.add_constraint({X(2): 1.0}, -0.5, equality=True)
    return mrf


def _block_built_mrf(num_blocks: int = 3, terms_per_block: int = 4) -> HingeLossMRF:
    mrf = HingeLossMRF()
    for b in range(num_blocks):
        builder = TermBlockBuilder()
        for t in range(terms_per_block):
            i = b * terms_per_block + t
            builder.add_potential([(X(i), 1.0), (X(i + 1), -1.0)], 0.1 * t, 1.0 + b)
            builder.add_constraint([(X(i), 1.0)], -0.75)
        atoms, block = builder.finish()
        mrf.add_term_block(atoms, block)
    return mrf


def test_legacy_mrf_partitions_as_single_run():
    mrf = _legacy_mrf()
    assert mrf.term_partition() == ((0, 4),)
    partition = build_partition(mrf)
    assert partition.num_blocks == 1
    assert partition.num_terms == 4


def test_empty_mrf_has_no_blocks():
    mrf = HingeLossMRF()
    assert mrf.term_partition() == ()
    partition = build_partition(mrf)
    assert partition.num_blocks == 0
    assert partition.num_copies == 0


def test_block_built_mrf_records_extents_per_shard():
    mrf = _block_built_mrf(num_blocks=3, terms_per_block=4)
    runs = mrf.term_partition()
    # Each add_term_block holds potentials AND constraints, so it
    # contributes one run in the potential range and one in the
    # constraint range: 3 blocks -> 6 runs tiling all 24 terms.
    assert len(runs) == 6
    assert runs[0][0] == 0
    flat = []
    for lo, hi in runs:
        assert lo < hi
        flat.extend(range(lo, hi))
    assert sorted(flat) == list(range(24))
    # Potential runs come first (flat order is potentials then constraints).
    assert runs[:3] == ((0, 4), (4, 8), (8, 12))
    assert runs[3:] == ((12, 16), (16, 20), (20, 24))


def test_mixed_bulk_and_incremental_falls_back_to_single_run():
    mrf = _block_built_mrf(num_blocks=2, terms_per_block=2)
    mrf.add_potential({X(0): 1.0}, 0.0, weight=1.0)  # incremental append
    runs = mrf.term_partition()
    assert runs == ((0, len(mrf.potentials) + len(mrf.constraints)),)


def test_nonpositive_block_size_rejected():
    from repro.errors import InferenceError

    mrf = _legacy_mrf()
    for bad in (0, -1, -256):
        with pytest.raises(InferenceError):
            build_partition(mrf, block_size=bad)


def test_uniform_block_size_overrides_recorded_extents():
    mrf = _block_built_mrf(num_blocks=2, terms_per_block=3)
    partition = build_partition(mrf, block_size=5)
    assert partition.boundaries() == ((0, 5), (5, 10), (10, 12))
    assert partition.max_block_terms == 5


def test_blocks_concatenate_to_flat_arrays():
    mrf = _block_built_mrf()
    for block_size in (None, 1, 4, 7, 1000):
        partition = build_partition(mrf, block_size=block_size)
        var = np.concatenate([b.var for b in partition.blocks])
        coeff = np.concatenate([b.coeff for b in partition.blocks])
        term = np.concatenate(
            [b.term + b.term_lo for b in partition.blocks]
        )
        assert np.array_equal(var, partition.var)
        flat = build_partition(mrf, block_size=10**9)
        assert np.array_equal(coeff, np.concatenate([b.coeff for b in flat.blocks]))
        assert np.array_equal(term, flat.blocks[0].term)
        # copy slices tile the copy range in order, without gaps
        offsets = [b.copy_lo for b in partition.blocks]
        ends = [b.copy_lo + b.num_copies for b in partition.blocks]
        assert offsets[0] == 0 and ends[-1] == partition.num_copies
        assert offsets[1:] == ends[:-1]


def test_partition_degree_counts_every_copy():
    mrf = _legacy_mrf()
    partition = build_partition(mrf)
    degree = np.maximum(
        np.bincount(partition.var, minlength=mrf.num_variables).astype(float), 1.0
    )
    assert np.array_equal(partition.degree, degree)


def test_collective_grounding_blocks_survive_into_partition():
    ex = paper_example(extra_projects=3)
    problem = build_selection_problem(ex.source, ex.target, ex.candidates)
    mrf, _, stats = ground_collective(
        problem, CollectiveSettings(), shard_size=4
    )
    partition = build_partition(mrf)
    assert stats.num_shards > 1
    assert partition.num_blocks > 1
    # No block exceeds what one grounding shard emitted.
    assert partition.max_block_terms <= stats.peak_shard_terms
    assert sum(b.num_terms for b in partition.blocks) == partition.num_terms


_BLOCK_FIELDS = ("kind", "offset", "weight", "normsq", "var", "term", "coeff")


def test_shared_blocks_mirror_partition_arrays_exactly():
    partition = build_partition(_block_built_mrf(), block_size=5)
    with SharedPartitionBuffers(partition) as shared:
        assert len(shared.blocks) == partition.num_blocks
        for block, mirror in zip(partition.blocks, shared.blocks):
            assert isinstance(mirror, SharedBlockArrays)
            assert mirror.term_lo == block.term_lo
            assert mirror.copy_lo == block.copy_lo
            assert mirror.copy_slice == block.copy_slice
            assert mirror.num_terms == block.num_terms
            assert mirror.num_copies == block.num_copies
            for field in _BLOCK_FIELDS:
                original = getattr(block, field)
                view = getattr(mirror, field)
                assert view.dtype == original.dtype
                assert np.array_equal(view, original)


def test_shared_blocks_pickle_as_small_attach_by_name_descriptors():
    mrf = _block_built_mrf(num_blocks=2, terms_per_block=600)
    partition = build_partition(mrf)
    rng = np.random.default_rng(11)
    with SharedPartitionBuffers(partition) as shared:
        for block, mirror in zip(partition.blocks, shared.blocks):
            payload = pickle.dumps(mirror)
            # The whole point of the shared segment: the per-iteration
            # payload no longer scales with the block.
            assert len(payload) < len(pickle.dumps(block)) / 4
            clone = pickle.loads(payload)
            assert clone.shm_name == shared.name
            for field in _BLOCK_FIELDS:
                assert np.array_equal(getattr(clone, field), getattr(block, field))
            v = rng.normal(size=block.num_copies)
            # ...and the local step over the attached views is the exact
            # same arithmetic: bit-identical results.
            assert np.array_equal(
                block_x_update(clone, v, rho=1.0), block_x_update(block, v, rho=1.0)
            )


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
def test_attach_cache_drops_unlinked_segments():
    import repro.psl.partition as partition_module

    partition = build_partition(_block_built_mrf())
    first = SharedPartitionBuffers(partition)
    name = first.name
    _attach_segment(name)
    first.release()  # driver unlinks; the cached mapping must not pin it
    second = SharedPartitionBuffers(partition)
    _attach_segment(second.name)  # cache miss -> sweep of dead segments
    assert name not in partition_module._ATTACHED_SEGMENTS
    second.release()


def test_shared_partition_buffers_unlink_lifecycle():
    partition = build_partition(_block_built_mrf())
    shared = SharedPartitionBuffers(partition)
    name = shared.name
    assert name is not None and not shared.released
    # Attachable by name while the driver keeps it alive.
    assert _attach_segment(name).size >= 8
    shared.release()
    assert shared.released and shared.name is None
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)  # driver-owned unlink happened
    shared.release()  # idempotent


def test_block_x_update_matches_whole_problem_update():
    mrf = _block_built_mrf()
    fine = build_partition(mrf, block_size=3)
    flat = build_partition(mrf, block_size=10**9)
    rng = np.random.default_rng(5)
    v = rng.normal(size=flat.num_copies)
    whole = block_x_update(flat.blocks[0], v, rho=1.0)
    pieces = np.concatenate(
        [
            block_x_update(b, v[b.copy_lo : b.copy_lo + b.num_copies], rho=1.0)
            for b in fine.blocks
        ]
    )
    assert np.array_equal(whole, pieces)


def test_kind_index_precompiles_the_kind_masks():
    mrf = _legacy_mrf()  # one block with all four kinds
    partition = build_partition(mrf)
    for block in partition.blocks:
        assert len(block.kind_index) == len(_KINDS)
        for kind, idx in zip(_KINDS, block.kind_index):
            assert np.array_equal(idx, np.flatnonzero(block.kind == kind))
        # Together the index sets cover every term exactly once.
        assert sorted(np.concatenate(block.kind_index)) == list(
            range(block.num_terms)
        )


def test_shared_blocks_mirror_kind_index():
    partition = build_partition(_legacy_mrf())
    with SharedPartitionBuffers(partition) as shared:
        for block, mirror in zip(partition.blocks, shared.blocks):
            mirrored = mirror.kind_index
            assert len(mirrored) == len(block.kind_index)
            for idx, idx_view in zip(block.kind_index, mirrored):
                assert idx_view.dtype == np.int64
                assert np.array_equal(idx_view, idx)
            clone = pickle.loads(pickle.dumps(mirror))
            for idx, idx_view in zip(block.kind_index, clone.kind_index):
                assert np.array_equal(idx_view, idx)


def _staged(partition):
    buffers = SharedPartitionBuffers(partition)
    state = SharedSolveState(partition, buffers.blocks)
    return buffers, state


def test_shared_solve_state_worker_update_matches_in_driver_math():
    partition = build_partition(_block_built_mrf(), block_size=5)
    buffers, state = _staged(partition)
    try:
        rng = np.random.default_rng(7)
        state.z[:] = rng.uniform(size=partition.num_variables)
        state.u[:] = rng.normal(scale=0.1, size=partition.num_copies)
        for generation in (1, 2):  # both parity buffers
            for index, block in enumerate(partition.blocks):
                ack = apply_shared_solve_update(
                    (state.name, index, 1.5, generation)
                )
                assert ack == index
                v = state.z[block.var] - state.u[block.copy_slice]
                assert np.array_equal(
                    state.x_buffer(generation)[block.copy_slice],
                    block_x_update(block, v, 1.5),
                )
    finally:
        state.release()
        buffers.release()


def test_shared_solve_state_unlink_lifecycle():
    partition = build_partition(_block_built_mrf())
    buffers, state = _staged(partition)
    name = state.name
    assert name is not None and not state.released
    assert _attach_segment(name).size >= 8
    state.release()
    assert state.released and state.name is None
    assert state.z is None and state.u is None
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)  # driver-owned unlink happened
    state.release()  # idempotent
    buffers.release()


def test_concurrent_solve_states_are_independent():
    partition = build_partition(_block_built_mrf())
    buffers_a, state_a = _staged(partition)
    buffers_b, state_b = _staged(partition)
    try:
        assert state_a.name != state_b.name
        state_a.z[:] = 0.25
        state_b.z[:] = 0.75
        state_a.release()
        buffers_a.release()
        # Releasing one solve's segments leaves the other fully usable.
        assert np.all(state_b.z == 0.75)
        assert apply_shared_solve_update((state_b.name, 0, 1.0, 1)) == 0
    finally:
        state_b.release()
        buffers_b.release()


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
def test_solve_view_cache_drops_with_dead_segments():
    import repro.psl.partition as partition_module

    partition = build_partition(_block_built_mrf())
    buffers, state = _staged(partition)
    name = state.name
    apply_shared_solve_update((name, 0, 1.0, 1))  # populates the view cache
    assert name in partition_module._SOLVE_VIEWS
    state.release()
    buffers.release()
    # Next attach (a new solve arriving) sweeps the dead segment's
    # mapping and its parsed views together.
    buffers2, state2 = _staged(partition)
    apply_shared_solve_update((state2.name, 0, 1.0, 1))
    assert name not in partition_module._SOLVE_VIEWS
    assert name not in partition_module._ATTACHED_SEGMENTS
    state2.release()
    buffers2.release()
