"""Unit tests for threshold-sweep and local-search rounding."""

from repro.psl.rounding import local_search, round_solution, threshold_sweep


def _objective_from_table(table):
    def objective(selected: frozenset):
        return table[frozenset(selected)]

    return objective


def test_threshold_sweep_picks_best_prefix():
    fractional = {"a": 0.9, "b": 0.6, "c": 0.1}
    table = {
        frozenset(): 10,
        frozenset({"a"}): 5,
        frozenset({"a", "b"}): 3,
        frozenset({"a", "b", "c"}): 7,
    }
    assert threshold_sweep(fractional, _objective_from_table(table)) == {"a", "b"}


def test_threshold_sweep_can_return_empty():
    fractional = {"a": 0.4}
    table = {frozenset(): 1, frozenset({"a"}): 2}
    assert threshold_sweep(fractional, _objective_from_table(table)) == frozenset()


def test_local_search_escapes_prefix_structure():
    # Optimal set {c} is not a prefix of the fractional ranking.
    fractional = {"a": 0.9, "b": 0.8, "c": 0.1}
    values = {
        frozenset(): 10,
        frozenset({"a"}): 9,
        frozenset({"b"}): 9,
        frozenset({"c"}): 1,
        frozenset({"a", "b"}): 8,
        frozenset({"a", "c"}): 5,
        frozenset({"b", "c"}): 5,
        frozenset({"a", "b", "c"}): 6,
    }
    objective = _objective_from_table(values)
    start = threshold_sweep(fractional, objective)
    assert local_search(start, fractional, objective) == {"c"}


def test_round_solution_combines_both():
    fractional = {"a": 0.9, "b": 0.2}
    values = {
        frozenset(): 4,
        frozenset({"a"}): 3,
        frozenset({"b"}): 1,
        frozenset({"a", "b"}): 2,
    }
    assert round_solution(fractional, _objective_from_table(values)) == {"b"}


def test_round_solution_without_local_search_is_prefix_only():
    fractional = {"a": 0.9, "b": 0.2}
    values = {
        frozenset(): 4,
        frozenset({"a"}): 3,
        frozenset({"b"}): 1,
        frozenset({"a", "b"}): 2,
    }
    result = round_solution(
        fractional, _objective_from_table(values), with_local_search=False
    )
    assert result == {"a", "b"}  # best prefix; {b} unreachable by sweep


def test_local_search_terminates_at_local_optimum():
    fractional = {i: 0.5 for i in range(4)}
    objective = lambda s: len(s)  # noqa: E731 - monotone, empty set optimal
    assert local_search(frozenset(range(4)), fractional, objective) == frozenset()


def test_empty_universe():
    assert round_solution({}, lambda s: 0) == frozenset()


def test_randomized_rounding_finds_non_prefix_optimum():
    from repro.psl.rounding import randomized_rounding

    fractional = {"a": 0.5, "b": 0.5, "c": 0.5}
    values = {
        frozenset(): 10,
        frozenset({"a"}): 9,
        frozenset({"b"}): 9,
        frozenset({"c"}): 9,
        frozenset({"a", "b"}): 8,
        frozenset({"a", "c"}): 1,  # optimum, not a fractional-order prefix
        frozenset({"b", "c"}): 8,
        frozenset({"a", "b", "c"}): 7,
    }
    result = randomized_rounding(
        fractional, _objective_from_table(values), trials=64, seed=3
    )
    assert result == {"a", "c"}


def test_randomized_rounding_includes_deterministic_extremes():
    from repro.psl.rounding import randomized_rounding

    fractional = {"a": 1.0, "b": 1.0}
    values = {
        frozenset(): 0,  # the all-excluded extreme is optimal
        frozenset({"a"}): 5,
        frozenset({"b"}): 5,
        frozenset({"a", "b"}): 5,
    }
    result = randomized_rounding(fractional, _objective_from_table(values), trials=4)
    assert result == frozenset()


def test_randomized_rounding_deterministic_under_seed():
    from repro.psl.rounding import randomized_rounding

    fractional = {i: 0.5 for i in range(6)}
    objective = lambda s: abs(len(s) - 3)  # noqa: E731
    a = randomized_rounding(fractional, objective, trials=16, seed=9)
    b = randomized_rounding(fractional, objective, trials=16, seed=9)
    assert a == b
    assert len(a) == 3


def test_threshold_sweep_tie_breaking_is_repr_order():
    # Equal fractional values: the sweep ranks by repr, so "a" enters the
    # prefix before "b" and the {a} prefix is evaluated, {b} never is.
    fractional = {"b": 0.5, "a": 0.5}
    table = {
        frozenset(): 10,
        frozenset({"a"}): 1,
        frozenset({"b"}): 0,  # better, but not reachable as a prefix
        frozenset({"a", "b"}): 5,
    }
    assert threshold_sweep(fractional, _objective_from_table(table)) == {"a"}


def test_threshold_sweep_prefers_smaller_prefix_on_value_tie():
    # A larger prefix must strictly improve to replace the incumbent.
    fractional = {"a": 0.9, "b": 0.2}
    table = {
        frozenset(): 5,
        frozenset({"a"}): 3,
        frozenset({"a", "b"}): 3,
    }
    assert threshold_sweep(fractional, _objective_from_table(table)) == {"a"}


def test_local_search_keeps_start_items_outside_universe():
    # Items in `start` that the universe does not know are never flipped:
    # the search only proposes flips of universe members.
    universe = {"a": 0.9}

    def objective(selected: frozenset):
        return -len(selected)  # bigger sets are better

    result = local_search(frozenset({"ghost"}), universe, objective)
    assert "ghost" in result
    assert result == {"ghost", "a"}


def test_local_search_respects_max_rounds():
    universe = {i: 0.5 for i in range(5)}
    calls = []

    def objective(selected: frozenset):
        calls.append(selected)
        return -len(selected)

    result = local_search(frozenset(), universe, objective, max_rounds=1)
    # One round of first-improvement flips adds every item exactly once.
    assert result == frozenset(range(5))


def test_randomized_rounding_deterministic_per_seed():
    from repro.psl.rounding import randomized_rounding

    fractional = {f"item{i}": 0.3 + 0.05 * i for i in range(8)}

    def objective(selected: frozenset):
        # Arbitrary but deterministic: prefer even-sized sets, then lexicographic.
        return (len(selected) % 2, len(selected), tuple(sorted(selected)))

    a = randomized_rounding(fractional, objective, trials=16, seed=42)
    b = randomized_rounding(fractional, objective, trials=16, seed=42)
    c = randomized_rounding(fractional, objective, trials=16, seed=43)
    assert a == b
    # Different seeds may land elsewhere, but the result is still a valid subset.
    assert c <= set(fractional)


def test_randomized_rounding_considers_extremes():
    from repro.psl.rounding import randomized_rounding

    fractional = {"a": 0.99, "b": 0.99}

    def objective(selected: frozenset):
        return 0 if not selected else 1  # empty set is optimal

    assert randomized_rounding(fractional, objective, trials=4, seed=0) == frozenset()
