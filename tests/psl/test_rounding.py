"""Unit tests for threshold-sweep and local-search rounding."""

from repro.psl.rounding import local_search, round_solution, threshold_sweep


def _objective_from_table(table):
    def objective(selected: frozenset):
        return table[frozenset(selected)]

    return objective


def test_threshold_sweep_picks_best_prefix():
    fractional = {"a": 0.9, "b": 0.6, "c": 0.1}
    table = {
        frozenset(): 10,
        frozenset({"a"}): 5,
        frozenset({"a", "b"}): 3,
        frozenset({"a", "b", "c"}): 7,
    }
    assert threshold_sweep(fractional, _objective_from_table(table)) == {"a", "b"}


def test_threshold_sweep_can_return_empty():
    fractional = {"a": 0.4}
    table = {frozenset(): 1, frozenset({"a"}): 2}
    assert threshold_sweep(fractional, _objective_from_table(table)) == frozenset()


def test_local_search_escapes_prefix_structure():
    # Optimal set {c} is not a prefix of the fractional ranking.
    fractional = {"a": 0.9, "b": 0.8, "c": 0.1}
    values = {
        frozenset(): 10,
        frozenset({"a"}): 9,
        frozenset({"b"}): 9,
        frozenset({"c"}): 1,
        frozenset({"a", "b"}): 8,
        frozenset({"a", "c"}): 5,
        frozenset({"b", "c"}): 5,
        frozenset({"a", "b", "c"}): 6,
    }
    objective = _objective_from_table(values)
    start = threshold_sweep(fractional, objective)
    assert local_search(start, fractional, objective) == {"c"}


def test_round_solution_combines_both():
    fractional = {"a": 0.9, "b": 0.2}
    values = {
        frozenset(): 4,
        frozenset({"a"}): 3,
        frozenset({"b"}): 1,
        frozenset({"a", "b"}): 2,
    }
    assert round_solution(fractional, _objective_from_table(values)) == {"b"}


def test_round_solution_without_local_search_is_prefix_only():
    fractional = {"a": 0.9, "b": 0.2}
    values = {
        frozenset(): 4,
        frozenset({"a"}): 3,
        frozenset({"b"}): 1,
        frozenset({"a", "b"}): 2,
    }
    result = round_solution(
        fractional, _objective_from_table(values), with_local_search=False
    )
    assert result == {"a", "b"}  # best prefix; {b} unreachable by sweep


def test_local_search_terminates_at_local_optimum():
    fractional = {i: 0.5 for i in range(4)}
    objective = lambda s: len(s)  # noqa: E731 - monotone, empty set optimal
    assert local_search(frozenset(range(4)), fractional, objective) == frozenset()


def test_empty_universe():
    assert round_solution({}, lambda s: 0) == frozenset()


def test_randomized_rounding_finds_non_prefix_optimum():
    from repro.psl.rounding import randomized_rounding

    fractional = {"a": 0.5, "b": 0.5, "c": 0.5}
    values = {
        frozenset(): 10,
        frozenset({"a"}): 9,
        frozenset({"b"}): 9,
        frozenset({"c"}): 9,
        frozenset({"a", "b"}): 8,
        frozenset({"a", "c"}): 1,  # optimum, not a fractional-order prefix
        frozenset({"b", "c"}): 8,
        frozenset({"a", "b", "c"}): 7,
    }
    result = randomized_rounding(
        fractional, _objective_from_table(values), trials=64, seed=3
    )
    assert result == {"a", "c"}


def test_randomized_rounding_includes_deterministic_extremes():
    from repro.psl.rounding import randomized_rounding

    fractional = {"a": 1.0, "b": 1.0}
    values = {
        frozenset(): 0,  # the all-excluded extreme is optimal
        frozenset({"a"}): 5,
        frozenset({"b"}): 5,
        frozenset({"a", "b"}): 5,
    }
    result = randomized_rounding(fractional, _objective_from_table(values), trials=4)
    assert result == frozenset()


def test_randomized_rounding_deterministic_under_seed():
    from repro.psl.rounding import randomized_rounding

    fractional = {i: 0.5 for i in range(6)}
    objective = lambda s: abs(len(s) - 3)  # noqa: E731
    a = randomized_rounding(fractional, objective, trials=16, seed=9)
    b = randomized_rounding(fractional, objective, trials=16, seed=9)
    assert a == b
    assert len(a) == 3
