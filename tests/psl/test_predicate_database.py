"""Unit tests for PSL predicates, atoms, and the observation database."""

import pytest

from repro.errors import GroundingError
from repro.psl.database import Database
from repro.psl.predicate import GroundAtom, Predicate


def test_predicate_call_builds_atom():
    friend = Predicate("friend", 2)
    a = friend("alice", "bob")
    assert a == GroundAtom(friend, ("alice", "bob"))


def test_predicate_arity_enforced():
    friend = Predicate("friend", 2)
    with pytest.raises(ValueError):
        friend("alice")


def test_observe_and_truth():
    p = Predicate("p", 1)
    db = Database()
    db.observe(p("a"), 0.7)
    assert db.truth(p("a")) == 0.7


def test_closed_world_default_is_zero():
    p = Predicate("p", 1, closed=True)
    db = Database()
    assert db.truth(p("never-seen")) == 0.0


def test_truth_outside_unit_interval_rejected():
    p = Predicate("p", 1)
    db = Database()
    with pytest.raises(GroundingError):
        db.observe(p("a"), 1.5)


def test_targets_have_no_observed_truth():
    q = Predicate("q", 1, closed=False)
    db = Database()
    db.add_target(q("a"))
    assert db.truth(q("a")) is None
    assert db.is_target(q("a"))


def test_target_of_closed_predicate_rejected():
    p = Predicate("p", 1, closed=True)
    db = Database()
    with pytest.raises(GroundingError):
        db.add_target(p("a"))


def test_atom_cannot_be_both_observed_and_target():
    q = Predicate("q", 1, closed=False)
    db = Database()
    db.add_target(q("a"))
    with pytest.raises(GroundingError):
        db.observe(q("a"), 1.0)
    db.observe(q("b"), 1.0)
    with pytest.raises(GroundingError):
        db.add_target(q("b"))


def test_unobserved_open_atom_defaults_to_zero():
    q = Predicate("q", 1, closed=False)
    db = Database()
    assert db.truth(q("unseen")) == 0.0


def test_atoms_of_collects_observed_and_targets():
    q = Predicate("q", 1, closed=False)
    db = Database()
    db.observe(q("a"), 1.0)
    db.add_target(q("b"))
    assert db.atoms_of(q) == {q("a"), q("b")}


def test_observe_all():
    p = Predicate("p", 1)
    db = Database()
    db.observe_all([p("a"), p("b")])
    assert db.truth(p("a")) == 1.0
    assert db.truth(p("b")) == 1.0
