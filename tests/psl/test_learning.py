"""Tests for PSL rule-weight learning."""

import pytest

from repro.errors import InferenceError
from repro.psl.learning import learn_rule_weights, rule_features
from repro.psl.program import PslProgram
from repro.psl.rule import lit


def _program():
    """Evidence rule vs abstain prior; truth decides their balance."""
    program = PslProgram()
    evidence = program.predicate("evidence", 1)
    label = program.predicate("label", 1, closed=False)
    support = program.rule([lit(evidence, "X")], [lit(label, "X")], weight=0.1, name="support")
    prior = program.rule([lit(label, "X")], [], weight=2.0, name="prior")
    for item in ("a", "b"):
        program.observe(evidence(item))
        program.target(label(item))
    return program, label, support, prior


def test_rule_features_at_extremes():
    program, label, support, prior = _program()
    all_true = {label("a"): 1.0, label("b"): 1.0}
    all_false = {label("a"): 0.0, label("b"): 0.0}
    phi_true = rule_features(program, all_true)
    phi_false = rule_features(program, all_false)
    # With labels true: support satisfied, prior violated (one per atom).
    assert phi_true.get(support, 0.0) == pytest.approx(0.0)
    assert phi_true[prior] == pytest.approx(2.0)
    # With labels false: support violated, prior satisfied.
    assert phi_false[support] == pytest.approx(2.0)
    assert phi_false.get(prior, 0.0) == pytest.approx(0.0)


def test_features_require_full_assignment():
    program, label, *_ = _program()
    with pytest.raises(InferenceError):
        rule_features(program, {label("a"): 1.0})  # label(b) missing


def test_learning_flips_the_balance_toward_truth():
    program, label, support, prior = _program()
    truth = {label("a"): 1.0, label("b"): 1.0}
    # Initially the strong prior wins: inference predicts ~0.
    before = program.infer()
    assert before.truth(label("a")) < 0.2

    result = learn_rule_weights(program, truth, epochs=30, learning_rate=0.5)
    assert result.converged
    assert result.weights[support] > result.weights[prior]

    after = program.infer(weight_overrides=result.weights)
    assert after.truth(label("a")) > 0.8


def test_no_update_when_truth_already_optimal():
    program, label, support, prior = _program()
    truth = {label("a"): 0.0, label("b"): 0.0}  # the prior's preference
    result = learn_rule_weights(program, truth, epochs=5)
    assert result.converged
    assert len(result.energy_gaps) == 1
    assert result.weights[support] == pytest.approx(0.1)


def test_weights_respect_floor():
    program, label, support, prior = _program()
    truth = {label("a"): 1.0, label("b"): 1.0}
    result = learn_rule_weights(
        program, truth, epochs=30, learning_rate=10.0, floor=0.05
    )
    assert all(w >= 0.05 for w in result.weights.values())


def test_learning_grounds_exactly_once_per_call():
    # The ground-once/reweight-many regression guard: the historical
    # implementation re-ground ~3x per epoch (solve + two rule_features
    # calls); the grounded-artifact loop grounds once per *call*.
    program, label, *_ = _program()
    truth = {label("a"): 1.0, label("b"): 1.0}
    assert program.grounding_count == 0
    result = learn_rule_weights(program, truth, epochs=10, learning_rate=0.5)
    assert len(result.energy_gaps) > 1  # multiple epochs actually ran
    assert program.grounding_count == 1
    learn_rule_weights(program, truth, epochs=5)
    assert program.grounding_count == 2


def test_standalone_rule_features_grounds_once_per_call():
    program, label, *_ = _program()
    assignment = {label("a"): 1.0, label("b"): 0.0}
    rule_features(program, assignment)
    assert program.grounding_count == 1
    grounded = program.ground_program()
    assert program.grounding_count == 2
    rule_features(program, assignment, grounded=grounded)
    rule_features(program, assignment, grounded=grounded)
    assert program.grounding_count == 2  # the artifact is reused


def test_learning_rejects_nonpositive_floor():
    program, label, *_ = _program()
    truth = {label("a"): 1.0, label("b"): 1.0}
    with pytest.raises(InferenceError):
        learn_rule_weights(program, truth, floor=0.0)


def test_hard_rules_excluded_from_learning():
    program = PslProgram()
    person = program.predicate("person", 1)
    a = program.predicate("a", 1, closed=False)
    soft = program.rule([lit(person, "X")], [lit(a, "X")], weight=1.0)
    hard = program.rule([lit(person, "X"), lit(a, "X")], [], weight=None)
    program.observe(person("p"))
    program.target(a("p"))
    result = learn_rule_weights(program, {a("p"): 0.0}, epochs=3)
    assert hard not in result.weights
    assert soft in result.weights
