"""Unit tests for the chase engine."""

import pytest

from repro.chase.engine import chase, chase_single, exchanged_instance, match_body
from repro.datamodel.instance import Instance, fact
from repro.datamodel.values import LabeledNull, NullFactory
from repro.mappings.parser import parse_tgd, parse_tgds
from repro.mappings.terms import Variable


@pytest.fixture
def source():
    return Instance(
        [
            fact("proj", "BigData", "Bob", "IBM"),
            fact("proj", "ML", "Alice", "SAP"),
        ]
    )


def test_full_tgd_copies_tuples(source):
    t = parse_tgd("proj(P, E, C) -> copy(P, E, C)")
    result = chase_single(source, t)
    assert set(result) == {
        fact("copy", "BigData", "Bob", "IBM"),
        fact("copy", "ML", "Alice", "SAP"),
    }


def test_existential_creates_fresh_null_per_firing(source):
    t = parse_tgd("proj(P, E, C) -> task(P, E, O)")
    result = chase_single(source, t)
    assert len(result) == 2
    nulls = result.nulls
    assert len(nulls) == 2  # distinct null per firing


def test_shared_existential_within_head(source):
    t = parse_tgd("proj(P, E, C) -> task(P, E, O) & org(O, C)")
    result = chase_single(source, t)
    assert len(result) == 4
    # nulls are shared between the task and org fact of the same firing
    for task in result.facts_of("task"):
        null = task.values[2]
        assert any(org.values[0] == null for org in result.facts_of("org"))


def test_distinct_tgds_use_distinct_nulls(source):
    t1 = parse_tgd("proj(P, E, C) -> task(P, E, O)")
    t2 = parse_tgd("proj(P, E, C) -> task(P, E, O)")
    result = chase(source, [t1, t2])
    assert len(result.instance) == 4  # isomorphic but distinct facts
    assert len(result.by_tgd[t1]) == 2
    assert len(result.by_tgd[t2]) == 2


def test_join_body(source):
    source.add(fact("emp", "Alice", "Toronto"))
    t = parse_tgd("proj(P, E, C) & emp(E, L) -> loc(P, L)")
    result = chase_single(source, t)
    assert set(result) == {fact("loc", "ML", "Toronto")}


def test_constant_in_body_filters(source):
    t = parse_tgd('proj(P, E, "SAP") -> sap(P)')
    result = chase_single(source, t)
    assert set(result) == {fact("sap", "ML")}


def test_constant_in_head_is_materialized(source):
    t = parse_tgd('proj(P, E, C) -> tagged(P, "x")')
    result = chase_single(source, t)
    assert fact("tagged", "ML", "x") in result


def test_repeated_variable_in_body_enforces_equality():
    inst = Instance([fact("r", 1, 1), fact("r", 1, 2)])
    t = parse_tgd("r(X, X) -> diag(X)")
    assert set(chase_single(inst, t)) == {fact("diag", 1)}


def test_empty_source_produces_empty_chase():
    t = parse_tgd("r(X) -> s(X)")
    assert len(chase_single(Instance(), t)) == 0


def test_provenance_records_firings(source):
    t = parse_tgd("proj(P, E, C) -> task(P, E, O)")
    result = chase(source, [t])
    for f in result.instance:
        firings = result.provenance[f]
        assert len(firings) == 1
        assert firings[0].tgd is t
        assignment = firings[0].as_dict()
        assert assignment[Variable("P")].value in {"BigData", "ML"}


def test_shared_null_factory_prevents_collisions(source):
    factory = NullFactory()
    t = parse_tgd("proj(P, E, C) -> task(P, E, O)")
    first = chase_single(source, t, factory)
    second = chase_single(source, t, factory)
    assert first.nulls.isdisjoint(second.nulls)


def test_exchanged_instance_unions_all_tgds(source):
    tgds = parse_tgds("proj(P, E, C) -> t1(P); proj(P, E, C) -> t2(E)")
    result = exchanged_instance(source, tgds)
    assert result.facts_of("t1") and result.facts_of("t2")


def test_match_body_enumerates_each_assignment_once(source):
    t = parse_tgd("proj(P, E, C) -> x(P)")
    assignments = list(match_body(t.body, source))
    assert len(assignments) == 2


def test_match_body_cross_product_when_unjoined():
    inst = Instance([fact("a", 1), fact("a", 2), fact("b", 3), fact("b", 4)])
    t = parse_tgd("a(X) & b(Y) -> c(X, Y)")
    assert len(chase_single(inst, t)) == 4


def test_deduplication_of_identical_ground_facts():
    inst = Instance([fact("r", 1, "x"), fact("r", 1, "y")])
    t = parse_tgd("r(X, Y) -> s(X)")
    assert len(chase_single(inst, t)) == 1  # s(1) produced twice, stored once
