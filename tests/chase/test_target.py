"""Tests for the target-dependency chase (key egds + FK tgds)."""

import pytest

from repro.chase.target import chase_target, violates_keys
from repro.datamodel.instance import Instance, fact
from repro.datamodel.schema import ForeignKey, Schema, relation
from repro.datamodel.values import LabeledNull, NullFactory

N1, N2, N3 = LabeledNull(1), LabeledNull(2), LabeledNull(3)


def _schema_with_key():
    schema = Schema("T")
    schema.add(relation("org", "oid", "company", key=("oid",)))
    return schema


def test_egd_unifies_null_with_constant():
    schema = _schema_with_key()
    inst = Instance([fact("org", 1, "SAP"), fact("org", 1, N1)])
    result = chase_target(inst, schema)
    assert not result.failed
    assert set(result.instance) == {fact("org", 1, "SAP")}
    assert result.unifications == 1


def test_egd_unifies_null_with_null():
    schema = _schema_with_key()
    inst = Instance([fact("org", 1, N1), fact("org", 1, N2)])
    result = chase_target(inst, schema)
    assert not result.failed
    assert len(result.instance) == 1


def test_egd_constant_conflict_fails():
    schema = _schema_with_key()
    inst = Instance([fact("org", 1, "SAP"), fact("org", 1, "IBM")])
    result = chase_target(inst, schema)
    assert result.failed
    assert result.conflict is not None


def test_null_keys_do_not_trigger_egd():
    schema = _schema_with_key()
    inst = Instance([fact("org", N1, "SAP"), fact("org", N2, "IBM")])
    result = chase_target(inst, schema)
    assert not result.failed
    assert len(result.instance) == 2


def test_unification_propagates_across_facts():
    # Unifying N1 with a constant in org must rewrite task facts using N1.
    schema = Schema("T")
    schema.add(relation("org", "oid", "company", key=("oid",)))
    schema.add(relation("task", "pname", "oid"))
    inst = Instance(
        [
            fact("org", 1, "SAP"),
            fact("org", 1, N1),
            fact("task", "ML", N1),
        ]
    )
    result = chase_target(inst, schema)
    assert not result.failed
    # N1 unified with "SAP"; the task fact now references the constant.
    assert fact("task", "ML", "SAP") in result.instance


def test_fk_invents_missing_parent():
    schema = Schema("T")
    schema.add(relation("task", "pname", "oid"))
    schema.add(relation("org", "oid", "company", key=("oid",)))
    schema.add_foreign_key(ForeignKey("task", ("oid",), "org", ("oid",)))
    inst = Instance([fact("task", "ML", 111)])
    result = chase_target(inst, schema, NullFactory(100))
    assert not result.failed
    assert len(result.invented) == 1
    parent = result.invented[0]
    assert parent.relation == "org"
    assert parent.values[0].value == 111
    assert parent.values[1] == LabeledNull(100)


def test_fk_satisfied_parent_not_duplicated():
    schema = Schema("T")
    schema.add(relation("task", "pname", "oid"))
    schema.add(relation("org", "oid", "company", key=("oid",)))
    schema.add_foreign_key(ForeignKey("task", ("oid",), "org", ("oid",)))
    inst = Instance([fact("task", "ML", 111), fact("org", 111, "SAP")])
    result = chase_target(inst, schema)
    assert result.invented == []
    assert len(result.instance) == 2


def test_fk_then_egd_interaction():
    # Inventing a parent for key 1, then a real parent with key 1 appears
    # in the instance: the egd must merge them.
    schema = Schema("T")
    schema.add(relation("task", "pname", "oid"))
    schema.add(relation("org", "oid", "company", key=("oid",)))
    schema.add_foreign_key(ForeignKey("task", ("oid",), "org", ("oid",)))
    inst = Instance(
        [fact("task", "ML", 1), fact("org", 1, "SAP")]
    )
    result = chase_target(inst, schema)
    assert not result.failed
    assert len(result.instance.facts_of("org")) == 1


def test_chase_on_st_exchange_output():
    """End to end: st chase output repaired against target constraints."""
    from repro.chase.engine import chase
    from repro.mappings.parser import parse_tgds

    source = Instance(
        [fact("proj", "ML", "Alice", "SAP"), fact("proj", "Vision", "Bob", "SAP")]
    )
    tgds = parse_tgds("proj(P, E, C) -> task(P, O) & org(O, C)")
    exchanged = chase(source, tgds).instance

    schema = Schema("T")
    schema.add(relation("task", "pname", "oid"))
    schema.add(relation("org", "oid", "company", key=("oid",)))
    schema.add_foreign_key(ForeignKey("task", ("oid",), "org", ("oid",)))
    result = chase_target(exchanged, schema)
    assert not result.failed
    # Two distinct org nulls remain (null keys don't merge), FKs satisfied.
    assert len(result.instance.facts_of("org")) == 2
    assert not violates_keys(result.instance, schema)


def test_violates_keys():
    schema = _schema_with_key()
    assert violates_keys(
        Instance([fact("org", 1, "a"), fact("org", 1, "b")]), schema
    )
    assert not violates_keys(
        Instance([fact("org", 1, "a"), fact("org", 2, "b")]), schema
    )
    # facts not in schema are ignored
    assert not violates_keys(Instance([fact("zzz", 1)]), schema)


def test_generated_scenario_reference_respects_constraints():
    """The grounded gold exchange of generated scenarios is key-consistent."""
    from repro.ibench.config import ScenarioConfig
    from repro.ibench.generator import generate_scenario

    for seed in (1, 2):
        scenario = generate_scenario(ScenarioConfig(num_primitives=4, seed=seed))
        result = chase_target(scenario.reference_target, scenario.target_schema)
        assert not result.failed
