"""Unit tests for homomorphism search."""

from repro.datamodel.instance import Instance, fact
from repro.datamodel.values import Constant, LabeledNull
from repro.homomorphism.search import (
    fact_homomorphisms,
    fact_matches,
    find_homomorphism,
    has_fact_homomorphism,
    is_homomorphic,
)

N0, N1, N2 = LabeledNull(0), LabeledNull(1), LabeledNull(2)


def test_fact_matches_constants_must_agree():
    assert fact_matches(fact("r", 1, 2), fact("r", 1, 2)) == {}
    assert fact_matches(fact("r", 1, 2), fact("r", 1, 3)) is None


def test_fact_matches_different_relation_or_arity():
    assert fact_matches(fact("r", 1), fact("s", 1)) is None
    assert fact_matches(fact("r", 1), fact("r", 1, 2)) is None


def test_fact_matches_binds_nulls():
    binding = fact_matches(fact("r", N0, 2), fact("r", 7, 2))
    assert binding == {N0: Constant(7)}


def test_fact_matches_repeated_null_must_be_consistent():
    assert fact_matches(fact("r", N0, N0), fact("r", 1, 1)) == {N0: Constant(1)}
    assert fact_matches(fact("r", N0, N0), fact("r", 1, 2)) is None


def test_fact_matches_respects_fixed_bindings():
    assert fact_matches(fact("r", N0), fact("r", 5), fixed={N0: Constant(5)}) == {}
    assert fact_matches(fact("r", N0), fact("r", 5), fixed={N0: Constant(6)}) is None


def test_null_can_map_to_null():
    binding = fact_matches(fact("r", N0), fact("r", N1))
    assert binding == {N0: N1}


def test_fact_homomorphisms_enumerates_all_images():
    target = Instance([fact("r", 1), fact("r", 2)])
    images = list(fact_homomorphisms(fact("r", N0), target))
    assert {b[N0] for b in images} == {Constant(1), Constant(2)}


def test_has_fact_homomorphism():
    target = Instance([fact("r", 1, 2)])
    assert has_fact_homomorphism(fact("r", N0, 2), target)
    assert not has_fact_homomorphism(fact("r", N0, 3), target)


def test_find_homomorphism_requires_global_consistency():
    # N0 must map to the same value in both facts.
    source = Instance([fact("a", N0, 1), fact("b", N0, 2)])
    target_good = Instance([fact("a", 9, 1), fact("b", 9, 2)])
    target_bad = Instance([fact("a", 9, 1), fact("b", 8, 2)])
    assert find_homomorphism(source, target_good) == {N0: Constant(9)}
    assert find_homomorphism(source, target_bad) is None


def test_find_homomorphism_backtracks():
    # First image choice for the "a" fact fails on the "b" fact.
    source = Instance([fact("a", N0), fact("b", N0)])
    target = Instance([fact("a", 1), fact("a", 2), fact("b", 2)])
    assert find_homomorphism(source, target) == {N0: Constant(2)}


def test_empty_source_is_trivially_homomorphic():
    assert is_homomorphic(Instance(), Instance([fact("r", 1)]))


def test_ground_source_needs_subset():
    source = Instance([fact("r", 1)])
    assert is_homomorphic(source, Instance([fact("r", 1), fact("r", 2)]))
    assert not is_homomorphic(source, Instance([fact("r", 2)]))


def test_chase_result_maps_into_grounded_solution():
    # The canonical solution must map into any grounded solution —
    # the defining property of universal solutions.
    from repro.chase.engine import chase_single
    from repro.mappings.parser import parse_tgd

    source = Instance([fact("proj", "ML", "Alice")])
    canonical = chase_single(source, parse_tgd("proj(P, E) -> task(P, E, O) & org(O)"))
    grounded = Instance(
        [fact("task", "ML", "Alice", 111), fact("org", 111), fact("extra", 1)]
    )
    assert is_homomorphic(canonical, grounded)
