"""Unit tests for the graded covers / creates semantics of Eq. (9)."""

from fractions import Fraction

from repro.chase.engine import chase_single
from repro.datamodel.instance import Instance, fact
from repro.datamodel.values import LabeledNull
from repro.examples_data import paper_example
from repro.homomorphism.covers import CoverComputer, covers, creates, error_facts
from repro.mappings.parser import parse_tgd

N0, N1 = LabeledNull(0), LabeledNull(1)


def _appendix_setup():
    ex = paper_example()
    k1 = chase_single(ex.source, ex.theta1)
    k3 = chase_single(ex.source, ex.theta3)
    return ex, k1, k3


def test_lone_null_gets_partial_credit():
    # theta1's Null is uncorroborated: degree 2/3 per the appendix.
    ex, k1, _ = _appendix_setup()
    assert covers(k1, fact("task", "ML", "Alice", 111), ex.target) == Fraction(2, 3)


def test_corroborated_null_gets_full_credit():
    # theta3's null also appears in org(Null, SAP) -> org(111, SAP) in J.
    ex, _, k3 = _appendix_setup()
    assert covers(k3, fact("task", "ML", "Alice", 111), ex.target) == Fraction(1)
    assert covers(k3, fact("org", 111, "SAP"), ex.target) == Fraction(1)


def test_mismatched_constants_give_zero():
    ex, k1, _ = _appendix_setup()
    assert covers(k1, fact("task", "Search", "Carol", 222), ex.target) == Fraction(0)


def test_unrelated_relation_gives_zero():
    ex, k1, _ = _appendix_setup()
    assert covers(k1, fact("org", 111, "SAP"), ex.target) == Fraction(0)


def test_creates_flags_unjustified_facts():
    ex, k1, k3 = _appendix_setup()
    assert error_facts(k1, ex.target) == [
        f for f in k1 if "BigData" in repr(f)
    ]
    errors3 = {repr(f) for f in error_facts(k3, ex.target)}
    assert len(errors3) == 2
    assert any("BigData" in e for e in errors3)
    assert any("IBM" in e for e in errors3)


def test_creates_is_false_for_mappable_facts():
    target = Instance([fact("r", 1, 2)])
    assert not creates(fact("r", N0, 2), target)
    assert creates(fact("r", N0, 3), target)


def test_degree_via_specific_chase_fact():
    chase_instance = Instance([fact("t", "a", N0)])
    target = Instance([fact("t", "a", 5)])
    computer = CoverComputer(chase_instance, target)
    assert computer.degree_via(fact("t", "a", N0), fact("t", "a", 5)) == Fraction(1, 2)


def test_degree_takes_best_over_chase_facts():
    # One chase fact matches partially, another (ground) matches exactly.
    chase_instance = Instance([fact("t", "a", N0), fact("t", "a", 5)])
    target = Instance([fact("t", "a", 5)])
    assert covers(chase_instance, fact("t", "a", 5), target) == Fraction(1)


def test_corroboration_requires_consistent_binding():
    # N0 occurs in a second fact, but that fact can only map into J with
    # N0 -> 99, conflicting with the binding N0 -> 5 under test.
    chase_instance = Instance([fact("t", "a", N0), fact("u", N0, "x")])
    target = Instance([fact("t", "a", 5), fact("u", 99, "x")])
    assert covers(chase_instance, fact("t", "a", 5), target) == Fraction(1, 2)


def test_corroboration_with_consistent_binding():
    chase_instance = Instance([fact("t", "a", N0), fact("u", N0, "x")])
    target = Instance([fact("t", "a", 5), fact("u", 5, "x")])
    assert covers(chase_instance, fact("t", "a", 5), target) == Fraction(1)


def test_corroborating_fact_must_be_distinct():
    # A null appearing twice in the *same* fact does not corroborate itself.
    chase_instance = Instance([fact("t", N0, N0)])
    target = Instance([fact("t", 5, 5)])
    assert covers(chase_instance, fact("t", 5, 5), target) == Fraction(0)


def test_all_constant_chase_fact_covers_fully():
    chase_instance = Instance([fact("t", 1, 2)])
    target = Instance([fact("t", 1, 2)])
    assert covers(chase_instance, fact("t", 1, 2), target) == Fraction(1)


def test_cover_computer_caches_are_transparent():
    ex, _, k3 = _appendix_setup()
    computer = CoverComputer(k3, ex.target)
    t = fact("task", "ML", "Alice", 111)
    assert computer.degree(t) == computer.degree(t) == Fraction(1)
