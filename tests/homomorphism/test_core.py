"""Tests for core computation."""

from repro.datamodel.instance import Instance, fact
from repro.datamodel.values import LabeledNull
from repro.homomorphism.core import core_of, fold_count, is_core

N0, N1, N2, N3 = (LabeledNull(i) for i in range(4))


def test_ground_instance_is_its_own_core():
    inst = Instance([fact("r", 1), fact("r", 2)])
    assert core_of(inst) == inst
    assert is_core(inst)


def test_redundant_null_fact_folds_onto_ground_fact():
    inst = Instance([fact("r", "a", 1), fact("r", "a", N0)])
    core = core_of(inst)
    assert core == Instance([fact("r", "a", 1)])
    assert fold_count(inst) == 1


def test_isomorphic_null_facts_fold_together():
    # Two candidates copied the same tuple with different fresh nulls.
    inst = Instance([fact("t", "ml", N0), fact("t", "ml", N1)])
    core = core_of(inst)
    assert len(core) == 1
    assert is_core(core)


def test_joined_null_groups_fold_as_units():
    # {t(a,N0), o(N0)} and {t(a,N1), o(N1)} are redundant copies.
    inst = Instance(
        [fact("t", "a", N0), fact("o", N0), fact("t", "a", N1), fact("o", N1)]
    )
    core = core_of(inst)
    assert len(core) == 2
    assert is_core(core)


def test_linked_nulls_do_not_fold_when_distinguished():
    # o(N0, x) vs o(N1, y): different constants anchor the nulls apart.
    inst = Instance(
        [fact("t", N0), fact("o", N0, "x"), fact("t", N1), fact("o", N1, "y")]
    )
    assert core_of(inst) == inst
    assert is_core(inst)


def test_paper_example_chase_has_redundancy_across_candidates():
    from repro.chase.engine import chase
    from repro.examples_data import paper_example

    ex = paper_example()
    combined = chase(ex.source, [ex.theta1, ex.theta3]).instance
    # theta1's task facts fold onto theta3's (whose nulls are corroborated
    # by org facts), shrinking 2+4 facts to theta3's 4.
    core = core_of(combined)
    assert len(combined) == 6
    assert len(core) == 4
    assert is_core(core)


def test_max_folds_caps_work():
    inst = Instance(
        [fact("t", "a", N0), fact("t", "a", N1), fact("t", "a", N2), fact("t", "a", 9)]
    )
    partial = core_of(inst, max_folds=1)
    assert len(partial) == len(inst) - 1 or len(partial) < len(inst)
    full = core_of(inst)
    assert full == Instance([fact("t", "a", 9)])


def test_core_is_homomorphically_equivalent():
    from repro.homomorphism.search import is_homomorphic

    inst = Instance(
        [fact("t", "a", N0), fact("o", N0), fact("t", "a", N1), fact("o", N1)]
    )
    core = core_of(inst)
    assert is_homomorphic(inst, core)
    assert is_homomorphic(core, inst)
